"""Routing-result analysis and reporting.

:func:`analyze` digests a finished :class:`~repro.router.SadpRouter` into
a :class:`RoutingReport`: wirelength/via statistics, scenario census per
layer, and the side-overlay breakdown by scenario type — the view that
tells a user *where* their overlay budget goes (the paper's Table II made
operational).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs
from ..obs.export import phase_totals
from ..color import Color
from ..core.scenarios import HARD, ScenarioType
from ..router.result import RoutingResult
from ..router.sadp_router import SadpRouter


@dataclass
class OverlayBreakdown:
    """Side-overlay units attributed to each scenario type."""

    units_by_scenario: Dict[str, float] = field(default_factory=dict)
    edge_count_by_scenario: Dict[str, int] = field(default_factory=dict)

    @property
    def total_units(self) -> float:
        return sum(self.units_by_scenario.values())

    def dominant(self) -> str:
        """The scenario type carrying the most overlay ('-' when clean)."""
        if not self.units_by_scenario:
            return "-"
        return max(self.units_by_scenario, key=self.units_by_scenario.get)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "units_by_scenario": dict(self.units_by_scenario),
            "edge_count_by_scenario": dict(self.edge_count_by_scenario),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OverlayBreakdown":
        return cls(
            units_by_scenario={
                str(k): float(v)
                for k, v in data.get("units_by_scenario", {}).items()
            },
            edge_count_by_scenario={
                str(k): int(v)
                for k, v in data.get("edge_count_by_scenario", {}).items()
            },
        )


@dataclass
class RoutingReport:
    """Aggregate digest of one routing run."""

    num_nets: int
    routed: int
    routability: float
    total_wirelength: int
    total_vias: int
    mean_wirelength: float
    max_ripups: int
    overlay: OverlayBreakdown
    scenario_census: Dict[str, int]
    colors_per_layer: Dict[int, Dict[str, int]]
    #: Live-registry digest (phase seconds + key counters); None when
    #: observability was off during the run.
    instrumentation: Optional[Dict[str, Any]] = None

    def to_text(self) -> str:
        lines = [
            "Routing report",
            "=" * 50,
            f"nets            : {self.routed}/{self.num_nets} "
            f"({self.routability * 100:.1f}%)",
            f"wirelength      : {self.total_wirelength} tracks "
            f"(mean {self.mean_wirelength:.1f}/net)",
            f"vias            : {self.total_vias}",
            f"max rip-ups/net : {self.max_ripups}",
            "",
            "scenario census (detected instances):",
        ]
        for name, count in sorted(self.scenario_census.items()):
            lines.append(f"  {name:5s} {count:6d}")
        lines.append("")
        lines.append("side overlay by scenario (units):")
        if not self.overlay.units_by_scenario:
            lines.append("  none — overlay-free result")
        for name, units in sorted(
            self.overlay.units_by_scenario.items(), key=lambda kv: -kv[1]
        ):
            count = self.overlay.edge_count_by_scenario.get(name, 0)
            lines.append(f"  {name:5s} {units:8.1f}  (over {count} instances)")
        lines.append("")
        lines.append("mask color census per layer:")
        for layer, census in sorted(self.colors_per_layer.items()):
            core = census.get("C", 0)
            second = census.get("S", 0)
            lines.append(f"  M{layer + 1}: {core} core / {second} second")
        if self.instrumentation:
            lines.append("")
            lines.append("instrumentation:")
            phases = self.instrumentation.get("phase_seconds", {})
            for phase, seconds in sorted(phases.items()):
                lines.append(f"  {phase + '_s':24s} {seconds:10.4f}")
            for name, value in sorted(
                self.instrumentation.get("counters", {}).items()
            ):
                lines.append(f"  {name:24s} {value:10.0f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (instrumentation is run-local and not
        included; re-attach a live digest after :meth:`from_dict` if
        needed)."""
        return {
            "num_nets": self.num_nets,
            "routed": self.routed,
            "routability": self.routability,
            "total_wirelength": self.total_wirelength,
            "total_vias": self.total_vias,
            "mean_wirelength": self.mean_wirelength,
            "max_ripups": self.max_ripups,
            "overlay": self.overlay.to_dict(),
            "scenario_census": dict(self.scenario_census),
            "colors_per_layer": {
                str(layer): dict(census)
                for layer, census in self.colors_per_layer.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoutingReport":
        """Rebuild a report from :meth:`to_dict` data (e.g. a pipeline
        ``ReportArtifact``) — renders byte-identical text."""
        return cls(
            num_nets=int(data["num_nets"]),
            routed=int(data["routed"]),
            routability=float(data["routability"]),
            total_wirelength=int(data["total_wirelength"]),
            total_vias=int(data["total_vias"]),
            mean_wirelength=float(data["mean_wirelength"]),
            max_ripups=int(data["max_ripups"]),
            overlay=OverlayBreakdown.from_dict(data.get("overlay", {})),
            scenario_census={
                str(k): int(v) for k, v in data.get("scenario_census", {}).items()
            },
            colors_per_layer={
                int(layer): {str(c): int(n) for c, n in census.items()}
                for layer, census in data.get("colors_per_layer", {}).items()
            },
            instrumentation=None,
        )


def breakdown_by_scenario(router: SadpRouter) -> OverlayBreakdown:
    """Attribute the committed side overlay to scenario types."""
    breakdown = OverlayBreakdown()
    for layer, graph in enumerate(getattr(router, "graphs", ())):
        coloring = router.colorings[layer]
        for edge in graph.edges:
            cost = edge.pair_cost(
                coloring.get(edge.u, Color.CORE), coloring.get(edge.v, Color.CORE)
            )
            if cost and cost != HARD:
                key = edge.scenario.value
                breakdown.units_by_scenario[key] = (
                    breakdown.units_by_scenario.get(key, 0.0) + cost
                )
                breakdown.edge_count_by_scenario[key] = (
                    breakdown.edge_count_by_scenario.get(key, 0) + 1
                )
    return breakdown


def scenario_census(router: SadpRouter) -> Dict[str, int]:
    """Detected scenario instances per type, over all layers."""
    census: Counter = Counter()
    for graph in getattr(router, "graphs", ()):
        for edge in graph.edges:
            census[edge.scenario.value] += 1
    return dict(census)


def instrumentation_digest() -> Optional[Dict[str, Any]]:
    """Phase timings and headline counters from the live registry."""
    ob = obs.get_active()
    if ob is None:
        return None
    counters = {
        name: ob.registry.total(name)
        for name in (
            "astar_nodes_expanded_total",
            "astar_searches_total",
            "ripups_total",
            "color_flips_total",
            "ocg_edges_added_total",
            "ocg_odd_cycle_hits_total",
            "uf_find_ops_total",
            "uf_union_ops_total",
        )
        if ob.registry.total(name)
    }
    return {
        "phase_seconds": {k: v for k, v in phase_totals(ob).items() if v},
        "counters": counters,
    }


def build_report(
    result: RoutingResult,
    census: Dict[str, int],
    overlay: OverlayBreakdown,
    instrumentation: Optional[Dict[str, Any]] = None,
) -> RoutingReport:
    """Assemble a :class:`RoutingReport` from a result plus the graph-side
    digests (scenario census and overlay breakdown).

    This is the single report constructor shared by :func:`analyze` (live
    router) and the pipeline's report stage (serialized artifacts) — both
    paths render identical text.
    """
    routed = [r for r in result.routes.values() if r.success]
    colors_per_layer: Dict[int, Dict[str, int]] = {}
    for layer, coloring in result.colorings.items():
        layer_census: Counter = Counter(color.value for color in coloring.values())
        colors_per_layer[layer] = dict(layer_census)

    return RoutingReport(
        num_nets=len(result.routes),
        routed=len(routed),
        routability=result.routability,
        total_wirelength=result.total_wirelength,
        total_vias=result.total_vias,
        mean_wirelength=(
            result.total_wirelength / len(routed) if routed else 0.0
        ),
        max_ripups=max((r.ripups for r in result.routes.values()), default=0),
        overlay=overlay,
        scenario_census=dict(census),
        colors_per_layer=colors_per_layer,
        instrumentation=instrumentation,
    )


def analyze(router: SadpRouter, result: RoutingResult) -> RoutingReport:
    """Build the full report for a finished run.

    When observability is enabled, the report additionally carries an
    instrumentation digest (per-phase seconds and headline counters).
    """
    return build_report(
        result,
        scenario_census(router),
        breakdown_by_scenario(router),
        instrumentation=instrumentation_digest(),
    )

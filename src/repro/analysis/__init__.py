"""Post-routing analysis: overlay breakdowns, statistics, text reports."""

from .report import OverlayBreakdown, RoutingReport, analyze, breakdown_by_scenario

__all__ = [
    "OverlayBreakdown",
    "RoutingReport",
    "analyze",
    "breakdown_by_scenario",
]

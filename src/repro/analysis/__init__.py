"""Post-routing analysis: overlay breakdowns, statistics, text reports."""

from .report import (
    OverlayBreakdown,
    RoutingReport,
    analyze,
    breakdown_by_scenario,
    build_report,
    instrumentation_digest,
    scenario_census,
)

__all__ = [
    "OverlayBreakdown",
    "RoutingReport",
    "analyze",
    "breakdown_by_scenario",
    "build_report",
    "instrumentation_digest",
    "scenario_census",
]

"""SADP cut-process mask synthesis (Figs. 1-2 of the paper, made physical).

Pipeline, all in nm bitmaps:

1. **Core mask** — union of CORE-colored targets plus *assist cores*:
   sacrificial strips placed ``w_spacer`` away from each SECOND pattern's
   side boundaries so the spacer deposited on the assist protects that
   side. Assist material that would come closer than ``w_spacer`` to a
   SECOND target is clipped away (the spacer would eat into the feature).
   Core shapes closer than ``d_core`` are *merged* (morphological closing
   at ``d_core / 2``) — the paper's merge technique; the bridge material
   later gets cut away, which is exactly where overlays appear.
2. **Spacer** — isotropic ``w_spacer`` sidewall around the core mask.
3. **Cut mask** — everything that would print (not spacer) but is not a
   target, grown ``d_overlap`` into surrounding spacer for process margin
   but never onto a target.
4. **Wafer image** — not spacer and not cut.

The resulting :class:`MaskSet` is what overlay metrology, cut-conflict
detection, and the decomposition verifier consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .. import obs
from ..color import Color
from ..errors import DecompositionError
from ..geometry import Rect
from ..rules import DesignRules
from ..units import DEFAULT_BITMAP_RESOLUTION_NM
from .bitmap import Bitmap
from .target import TargetPattern


@dataclass
class MaskSet:
    """All layers of one decomposed window."""

    window: Rect
    resolution: int
    rules: DesignRules
    targets: List[TargetPattern]
    target_bmp: Bitmap  # union of all target features
    core_targets: Bitmap  # CORE-colored target features only
    assist: Bitmap  # assist core material (sacrificial)
    core_mask: Bitmap  # full core mask after merging
    spacer: Bitmap
    cut_mask: Bitmap
    printed: Bitmap  # final wafer image

    def merged_bridges(self) -> Bitmap:
        """Core material added by merging (neither drawn core nor assist)."""
        return self.core_mask - (self.core_targets | self.assist)


def default_window(
    targets: Sequence[TargetPattern], rules: DesignRules, margin: Optional[int] = None
) -> Rect:
    """A window comfortably containing the targets plus process halo."""
    if not targets:
        raise DecompositionError("cannot decompose an empty target set")
    box = targets[0].bbox
    for t in targets[1:]:
        box = box.hull(t.bbox)
    if margin is None:
        margin = 2 * (rules.w_line + 2 * rules.w_spacer + rules.w_core)
    box = box.inflated(margin)
    # Snap to the raster grid.
    res = DEFAULT_BITMAP_RESOLUTION_NM
    return Rect(
        box.xlo - box.xlo % res,
        box.ylo - box.ylo % res,
        box.xhi + (-box.xhi) % res,
        box.yhi + (-box.yhi) % res,
    )


def _assist_strips(pattern: TargetPattern, rules: DesignRules) -> List[Rect]:
    """Assist-core candidate strips flanking a SECOND pattern's sides.

    Strips run along both side boundaries at distance ``w_spacer``, are
    ``w_core`` wide, and extend ``w_spacer`` beyond the tips so the corner
    spacer wraps properly (visible in the paper's Fig. 4).
    """
    ws, wc = rules.w_spacer, rules.w_core
    strips = []
    for rect, horizontal in zip(pattern.rects, pattern.horizontal):
        if horizontal:
            strips.append(
                Rect(rect.xlo - ws, rect.ylo - ws - wc, rect.xhi + ws, rect.ylo - ws)
            )
            strips.append(
                Rect(rect.xlo - ws, rect.yhi + ws, rect.xhi + ws, rect.yhi + ws + wc)
            )
        else:
            strips.append(
                Rect(rect.xlo - ws - wc, rect.ylo - ws, rect.xlo - ws, rect.yhi + ws)
            )
            strips.append(
                Rect(rect.xhi + ws, rect.ylo - ws, rect.xhi + ws + wc, rect.yhi + ws)
            )
    return strips


def _merge_close_cores(
    core_raw: Bitmap,
    rules: DesignRules,
    resolution: int,
    keepout: Optional[Bitmap] = None,
) -> Bitmap:
    """Apply the merge technique: fuse core shapes closer than ``d_core``.

    Core-mask shapes below the ``d_core`` spacing rule cannot be drawn
    separately; the cut process merges them into one polygon and later
    separates the printed features with a cut (Fig. 2). Implemented by
    bridging every component pair whose boundary distance is below
    ``d_core`` with the lens between them, iterated to a fixpoint (merges
    can cascade through assist chains).
    """
    import numpy as np
    from scipy import ndimage

    d_core_px = rules.d_core / resolution
    data = core_raw.data.copy()
    eight = np.ones((3, 3), dtype=bool)
    for _ in range(8):  # fixpoint loop; real layouts converge in 1-2 passes
        labels, n = ndimage.label(data, structure=eight)
        if n <= 1:
            break
        # Boundary pixels of each component; pixel boxes give exact
        # boundary-to-boundary gaps (a pixel is a res x res nm square).
        eroded = ndimage.binary_erosion(data, structure=eight)
        boundary = data & ~eroded
        coords = [
            np.argwhere(boundary & (labels == i)) for i in range(1, n + 1)
        ]
        dts = None
        merged_any = False
        for i in range(n):
            if coords[i].size == 0:
                continue
            for j in range(i + 1, n):
                if coords[j].size == 0:
                    continue
                p = coords[i][:, None, :].astype(np.float64)
                q = coords[j][None, :, :].astype(np.float64)
                gap_axes = np.maximum(np.abs(p - q) - 1.0, 0.0)
                gaps = np.sqrt((gap_axes ** 2).sum(axis=2))
                gap_px = float(gaps.min())
                if gap_px >= d_core_px:
                    continue
                # Lens between the two components: pixels close to both
                # (centre-distance transforms, reach covering the gap).
                if dts is None:
                    dts = {}
                for k in (i, j):
                    if k not in dts:
                        dts[k] = ndimage.distance_transform_edt(labels != k + 1)
                reach = gap_px + 1.0
                bridge = (dts[i] <= reach) & (dts[j] <= reach)
                if keepout is not None:
                    # Merged material keeps spacer clearance from second
                    # targets, like any other core material.
                    bridge &= ~keepout.data
                if bridge.any():
                    data |= bridge
                    merged_any = True
        if not merged_any:
            break
    out = Bitmap(core_raw.window, core_raw.resolution)
    out.data = data
    return out


def synthesize_masks(
    targets: Sequence[TargetPattern],
    rules: DesignRules,
    window: Optional[Rect] = None,
    resolution: int = DEFAULT_BITMAP_RESOLUTION_NM,
) -> MaskSet:
    """Run the full cut-process decomposition for a colored layout window."""
    targets = list(targets)
    with obs.span("synthesize_masks", targets=len(targets)):
        obs.counter_inc("mask_syntheses_total")
        return _synthesize_masks(targets, rules, window, resolution)


def _synthesize_masks(
    targets: List[TargetPattern],
    rules: DesignRules,
    window: Optional[Rect],
    resolution: int,
) -> MaskSet:
    if window is None:
        window = default_window(targets, rules)

    target_bmp = Bitmap(window, resolution)
    core_targets = Bitmap(window, resolution)
    second_targets = Bitmap(window, resolution)
    for pattern in targets:
        for rect in pattern.rects:
            target_bmp.fill(rect)
            if pattern.color is Color.CORE:
                core_targets.fill(rect)
            else:
                second_targets.fill(rect)

    # --- assist cores -------------------------------------------------- #
    assist = Bitmap(window, resolution)
    for pattern in targets:
        if pattern.color is not Color.SECOND:
            continue
        for strip in _assist_strips(pattern, rules):
            assist.fill(strip)
    # Assist material may coincide with CORE targets (then it *is* core),
    # but must keep w_spacer clearance from SECOND targets: spacer grown
    # from it would otherwise eat into the feature. With pixel-centre
    # dilation semantics a radius of exactly w_spacer removes material
    # whose *boundary* gap is below w_spacer and keeps exactly-w_spacer
    # placements (the intended abutting-spacer geometry).
    forbidden = second_targets.dilate(rules.w_spacer)
    assist = assist - forbidden

    # --- core mask with merging ---------------------------------------- #
    core_raw = core_targets | assist
    core_mask = _merge_close_cores(core_raw, rules, resolution, keepout=forbidden)
    # Merging may not create material over SECOND targets (that would be a
    # decomposition failure; the verifier reports it).
    bridge_over_second = (core_mask - core_raw) & second_targets
    core_mask = core_mask - bridge_over_second

    # --- spacer --------------------------------------------------------- #
    spacer = core_mask.dilate(rules.w_spacer) - core_mask

    # --- cut mask -------------------------------------------------------- #
    printable = ~spacer
    unwanted = printable - target_bmp
    cut_mask = (unwanted.dilate(rules.d_overlap) & (unwanted | spacer))

    printed = (~spacer) - cut_mask

    return MaskSet(
        window=window,
        resolution=resolution,
        rules=rules,
        targets=targets,
        target_bmp=target_bmp,
        core_targets=core_targets,
        assist=assist,
        core_mask=core_mask,
        spacer=spacer,
        cut_mask=cut_mask,
        printed=printed,
    )

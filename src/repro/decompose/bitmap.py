"""Boolean raster canvas with morphology, in nm coordinates.

The decomposition engine rasterises mask layers at a fixed resolution
(default 5 nm/px, which divides every 10 nm-node rule exactly). A
:class:`Bitmap` wraps a numpy boolean array plus the affine transform
between nm coordinates and pixels, and provides the Euclidean-disc
morphology (dilate / erode / close) that models isotropic spacer
deposition and core-merge rules.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from ..errors import GeometryError
from ..geometry import Rect
from ..units import DEFAULT_BITMAP_RESOLUTION_NM


def disc(radius_px: int) -> np.ndarray:
    """Euclidean disc structuring element of the given pixel radius."""
    if radius_px < 0:
        raise GeometryError(f"disc radius must be >= 0, got {radius_px}")
    if radius_px == 0:
        return np.ones((1, 1), dtype=bool)
    span = np.arange(-radius_px, radius_px + 1)
    xx, yy = np.meshgrid(span, span)
    return (xx * xx + yy * yy) <= radius_px * radius_px


class Bitmap:
    """A boolean image over a window of the nm plane.

    ``origin`` is the nm coordinate of pixel (0, 0); indexing is
    ``mask[ix, iy]`` with x = column-like first axis for symmetry with the
    rest of the library. All bitmaps participating in one decomposition
    share the same window and resolution.
    """

    def __init__(
        self,
        window: Rect,
        resolution: int = DEFAULT_BITMAP_RESOLUTION_NM,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if resolution <= 0:
            raise GeometryError(f"resolution must be positive, got {resolution}")
        if (window.width % resolution) or (window.height % resolution):
            raise GeometryError(
                f"window {window} is not a multiple of resolution {resolution}"
            )
        self.window = window
        self.resolution = resolution
        shape = (window.width // resolution, window.height // resolution)
        if data is None:
            self.data = np.zeros(shape, dtype=bool)
        else:
            if data.shape != shape:
                raise GeometryError(f"data shape {data.shape} != window shape {shape}")
            self.data = data.astype(bool)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def _to_px(self, rect: Rect) -> Tuple[int, int, int, int]:
        res = self.resolution
        xlo = (rect.xlo - self.window.xlo) // res
        ylo = (rect.ylo - self.window.ylo) // res
        xhi = -(-(rect.xhi - self.window.xlo) // res)  # ceil division
        yhi = -(-(rect.yhi - self.window.ylo) // res)
        return xlo, ylo, xhi, yhi

    def px_radius(self, nm: int) -> int:
        """nm length -> pixel count (must divide exactly to avoid bias)."""
        if nm % self.resolution:
            raise GeometryError(
                f"{nm} nm is not a multiple of the {self.resolution} nm/px grid"
            )
        return nm // self.resolution

    # ------------------------------------------------------------------ #
    # Drawing
    # ------------------------------------------------------------------ #

    def fill(self, rect: Rect, value: bool = True) -> None:
        """Set all pixels of the nm rectangle (clipped to the window)."""
        xlo, ylo, xhi, yhi = self._to_px(rect)
        xlo, ylo = max(xlo, 0), max(ylo, 0)
        xhi = min(xhi, self.data.shape[0])
        yhi = min(yhi, self.data.shape[1])
        if xlo < xhi and ylo < yhi:
            self.data[xlo:xhi, ylo:yhi] = value

    @classmethod
    def from_rects(
        cls,
        window: Rect,
        rects: Iterable[Rect],
        resolution: int = DEFAULT_BITMAP_RESOLUTION_NM,
    ) -> "Bitmap":
        bmp = cls(window, resolution)
        for rect in rects:
            bmp.fill(rect)
        return bmp

    def _like(self, data: np.ndarray) -> "Bitmap":
        return Bitmap(self.window, self.resolution, data)

    # ------------------------------------------------------------------ #
    # Boolean algebra
    # ------------------------------------------------------------------ #

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._compatible(other)
        return self._like(self.data | other.data)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._compatible(other)
        return self._like(self.data & other.data)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        self._compatible(other)
        return self._like(self.data & ~other.data)

    def __invert__(self) -> "Bitmap":
        return self._like(~self.data)

    def _compatible(self, other: "Bitmap") -> None:
        if self.window != other.window or self.resolution != other.resolution:
            raise GeometryError("bitmaps live on different windows/resolutions")

    def copy(self) -> "Bitmap":
        return self._like(self.data.copy())

    # ------------------------------------------------------------------ #
    # Morphology (Euclidean disc)
    # ------------------------------------------------------------------ #

    def dilate(self, nm: int) -> "Bitmap":
        r = self.px_radius(nm)
        if r == 0 or not self.data.any():
            return self.copy()
        return self._like(ndimage.binary_dilation(self.data, structure=disc(r)))

    def erode(self, nm: int) -> "Bitmap":
        r = self.px_radius(nm)
        if r == 0 or not self.data.any():
            return self.copy()
        return self._like(ndimage.binary_erosion(self.data, structure=disc(r)))

    def close(self, nm: int) -> "Bitmap":
        """Morphological closing: fuses gaps strictly smaller than 2*nm."""
        r = self.px_radius(nm)
        if r == 0 or not self.data.any():
            return self.copy()
        structure = disc(r)
        # Pad so closing behaves correctly near the window border.
        padded = np.pad(self.data, r, mode="constant")
        closed = ndimage.binary_erosion(
            ndimage.binary_dilation(padded, structure=structure), structure=structure
        )
        return self._like(closed[r:-r, r:-r])

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #

    @property
    def any(self) -> bool:
        return bool(self.data.any())

    def area_nm2(self) -> int:
        return int(self.data.sum()) * self.resolution * self.resolution

    def count(self) -> int:
        return int(self.data.sum())

    def overlaps(self, other: "Bitmap") -> bool:
        self._compatible(other)
        return bool((self.data & other.data).any())

    def components(self) -> List[np.ndarray]:
        """Connected components (8-connectivity) as boolean arrays."""
        labels, n = ndimage.label(self.data, structure=np.ones((3, 3), dtype=bool))
        return [labels == i for i in range(1, n + 1)]

    def component_count(self) -> int:
        _, n = ndimage.label(self.data, structure=np.ones((3, 3), dtype=bool))
        return int(n)

    def sample(self, x_nm: int, y_nm: int) -> bool:
        """Value of the pixel containing the nm point (False outside)."""
        ix = (x_nm - self.window.xlo) // self.resolution
        iy = (y_nm - self.window.ylo) // self.resolution
        if 0 <= ix < self.data.shape[0] and 0 <= iy < self.data.shape[1]:
            return bool(self.data[ix, iy])
        return False

    def to_ascii(self, glyph: str = "#", empty: str = ".") -> str:
        """Debug rendering, y increasing upward."""
        rows = []
        for iy in range(self.data.shape[1] - 1, -1, -1):
            rows.append("".join(glyph if v else empty for v in self.data[:, iy]))
        return "\n".join(rows)

"""SADP *trim*-process decomposition (the baselines' process, Fig. 1(c)).

In the trim process the final layout is what the trim mask keeps among the
non-spacer regions. Compared with the cut process:

* core patterns closer than ``d_core`` **cannot** be merged-and-cut — they
  are simply undecomposable (a *core spacing conflict*; this is why odd
  cycles break the trim baselines);
* second patterns get no assist cores in the published trim routers
  [10], [11], so every second-pattern boundary not facing a core spacer is
  trim-defined and overlays;
* *trim conflicts* arise at parallel line ends whose trim edges are closer
  than the mask rule (we use ``d_cut`` for the trim mask as well).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..color import Color
from ..geometry import Rect
from ..rules import DesignRules
from ..units import DEFAULT_BITMAP_RESOLUTION_NM
from .bitmap import Bitmap
from .masks import default_window
from .overlay import OverlayReport, measure_overlays
from .target import TargetPattern


@dataclass
class TrimMaskSet:
    """Masks of one trim-process window plus its conflicts."""

    window: Rect
    resolution: int
    rules: DesignRules
    targets: List[TargetPattern]
    target_bmp: Bitmap
    core_mask: Bitmap
    spacer: Bitmap
    trim_mask: Bitmap
    printed: Bitmap
    core_spacing_conflicts: List[Tuple[int, int]] = field(default_factory=list)
    trim_conflicts: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def conflict_count(self) -> int:
        return len(self.core_spacing_conflicts) + len(self.trim_conflicts)


def _pattern_gap(a: TargetPattern, b: TargetPattern) -> float:
    best = None
    for ra in a.rects:
        for rb in b.rects:
            g = ra.euclidean_gap_sq(rb) ** 0.5
            best = g if best is None else min(best, g)
    return best if best is not None else float("inf")


def _tips(pattern: TargetPattern) -> List[Rect]:
    """Thin strips at the two line ends of each rectangle."""
    tips = []
    for rect, horizontal in zip(pattern.rects, pattern.horizontal):
        if horizontal:
            tips.append(Rect(rect.xlo, rect.ylo, rect.xlo + 1, rect.yhi))
            tips.append(Rect(rect.xhi - 1, rect.ylo, rect.xhi, rect.yhi))
        else:
            tips.append(Rect(rect.xlo, rect.ylo, rect.xhi, rect.ylo + 1))
            tips.append(Rect(rect.xlo, rect.yhi - 1, rect.xhi, rect.yhi))
    return tips


def synthesize_trim_masks(
    targets,
    rules: DesignRules,
    window: Rect = None,
    resolution: int = DEFAULT_BITMAP_RESOLUTION_NM,
) -> TrimMaskSet:
    """Decompose a colored window with the trim process (no assists)."""
    targets = list(targets)
    if window is None:
        window = default_window(targets, rules)

    target_bmp = Bitmap(window, resolution)
    core_mask = Bitmap(window, resolution)
    for pattern in targets:
        for rect in pattern.rects:
            target_bmp.fill(rect)
            if pattern.color is Color.CORE:
                core_mask.fill(rect)

    spacer = core_mask.dilate(rules.w_spacer) - core_mask
    # Trim keeps the targets; it may ride over spacer for margin.
    trim_mask = target_bmp.dilate(rules.d_overlap) - (target_bmp.dilate(rules.d_overlap) - (target_bmp | spacer))
    printed = (~spacer) & trim_mask

    mask_set = TrimMaskSet(
        window=window,
        resolution=resolution,
        rules=rules,
        targets=targets,
        target_bmp=target_bmp,
        core_mask=core_mask,
        spacer=spacer,
        trim_mask=trim_mask,
        printed=printed,
    )

    # Core spacing conflicts: same-color (core) patterns below d_core.
    cores = [t for t in targets if t.color is Color.CORE]
    for i, a in enumerate(cores):
        for b in cores[i + 1 :]:
            if _pattern_gap(a, b) < rules.d_core:
                mask_set.core_spacing_conflicts.append((a.net_id, b.net_id))

    # Trim conflicts: unprotected line ends of different nets too close.
    spacer_data = spacer.data
    ends: List[Tuple[int, Rect]] = []
    for pattern in targets:
        if pattern.color is Color.CORE:
            continue  # core tips are core-mask defined
        for tip in _tips(pattern):
            ends.append((pattern.net_id, tip))
    for i, (net_a, tip_a) in enumerate(ends):
        for net_b, tip_b in ends[i + 1 :]:
            if net_a == net_b:
                continue
            gap = tip_a.euclidean_gap_sq(tip_b) ** 0.5
            if gap < rules.d_cut:
                mask_set.trim_conflicts.append((net_a, net_b))
    return mask_set


def measure_trim_overlays(mask_set: TrimMaskSet) -> OverlayReport:
    """Overlay of SECOND patterns only (core boundaries are self-defined)."""
    seconds = [t for t in mask_set.targets if t.color is Color.SECOND]
    proxy = _TrimOverlayProxy(mask_set, seconds)
    return measure_overlays(proxy)


class _TrimOverlayProxy:
    """Adapter letting :func:`measure_overlays` run on trim masks."""

    def __init__(self, mask_set: TrimMaskSet, patterns: List[TargetPattern]) -> None:
        self.rules = mask_set.rules
        self.resolution = mask_set.resolution
        self.window = mask_set.window
        self.spacer = mask_set.spacer
        self.target_bmp = mask_set.target_bmp
        self.targets = patterns

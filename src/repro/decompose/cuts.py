"""Bitmap-level cut-conflict detection (Section II-B, Fig. 5).

MRC violations of the cut mask only matter **over a target pattern**:

* **min width** — a cut region narrower than ``w_cut`` hugging a target
  boundary: the printed cut distorts the adjacent feature;
* **min distance** — two cut regions closer than ``d_cut`` with target
  material between them (the type B signature: both flanks of a
  ``w_line`` wire cut-defined — the wire, at 20 nm, is thinner than the
  30 nm cut spacing rule).

Violations whose evidence lies over spacer are ignored, per Ma et al.
[12]: the irregular printed cut merges over sacrificial material and the
features stay intact.

Implementation notes. Width is measured with directional line openings
(a feature at least ``w_cut`` long in some direction survives); distance
is measured with a morphological closing at ``d_cut/2`` — material the
closing *adds* is exactly the region between cuts closer than ``d_cut``,
and any of it landing on a target is a violation. Small pixel-wedge
artefacts at rounded spacer corners are filtered by an evidence-area
threshold of about one ``w_cut`` square.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage

from .masks import MaskSet


@dataclass(frozen=True)
class BitmapCutConflict:
    """One physical cut conflict found in a decomposed window."""

    kind: str  # 'min_width' or 'min_distance'
    evidence_px: int  # size of the violating region, in pixels
    location_nm: Tuple[int, int]  # centroid of the violating region


def _centroid_nm(mask: np.ndarray, masks: MaskSet) -> Tuple[int, int]:
    xs, ys = np.nonzero(mask)
    res = masks.resolution
    return (
        masks.window.xlo + int(xs.mean()) * res,
        masks.window.ylo + int(ys.mean()) * res,
    )


def _line(length_px: int, horizontal: bool) -> np.ndarray:
    if horizontal:
        return np.ones((length_px, 1), dtype=bool)
    return np.ones((1, length_px), dtype=bool)


def find_cut_conflicts(
    masks: MaskSet, min_evidence_px: int = None
) -> List[BitmapCutConflict]:
    """All cut conflicts over target patterns in one decomposed window."""
    res = masks.resolution
    rules = masks.rules
    if min_evidence_px is None:
        # Half a w_cut x w_cut square of evidence, to reject the single
        # pixel wedges that rounded spacer corners produce.
        min_evidence_px = max((rules.w_cut // res) ** 2 // 2, 2)

    cut = masks.cut_mask.data
    target = masks.target_bmp.data
    conflicts: List[BitmapCutConflict] = []
    if not cut.any():
        return conflicts

    # --- minimum width ---------------------------------------------------
    # A cut pixel is wide enough if a w_cut-long line fits through it in
    # either axis direction; everything else is narrow. Narrow material
    # directly against a target boundary is a violation.
    w_px = max(rules.w_cut // res, 1)
    wide = ndimage.binary_opening(cut, structure=_line(w_px, True)) | (
        ndimage.binary_opening(cut, structure=_line(w_px, False))
    )
    target_halo = ndimage.binary_dilation(
        target, structure=np.ones((3, 3), dtype=bool)
    )
    narrow = cut & ~wide & target_halo
    labels, n = ndimage.label(narrow, structure=np.ones((3, 3), dtype=bool))
    for i in range(1, n + 1):
        region = labels == i
        evidence = int(region.sum())
        if evidence >= min_evidence_px:
            conflicts.append(
                BitmapCutConflict(
                    kind="min_width",
                    evidence_px=evidence,
                    location_nm=_centroid_nm(region, masks),
                )
            )

    # --- minimum distance --------------------------------------------------
    # Closing at d_cut/2 fills any gap between cut material narrower than
    # d_cut; filled material over a target is the violation region.
    r_px = max(rules.d_cut // (2 * res), 1)
    span = np.arange(-r_px, r_px + 1)
    xx, yy = np.meshgrid(span, span)
    structure = (xx * xx + yy * yy) <= r_px * r_px
    padded = np.pad(cut, r_px, mode="constant")
    closed = ndimage.binary_erosion(
        ndimage.binary_dilation(padded, structure=structure), structure=structure
    )[r_px:-r_px, r_px:-r_px]
    bridges = closed & ~cut & target
    labels, n = ndimage.label(bridges, structure=np.ones((3, 3), dtype=bool))
    for i in range(1, n + 1):
        region = labels == i
        evidence = int(region.sum())
        if evidence >= min_evidence_px:
            conflicts.append(
                BitmapCutConflict(
                    kind="min_distance",
                    evidence_px=evidence,
                    location_nm=_centroid_nm(region, masks),
                )
            )
    return conflicts

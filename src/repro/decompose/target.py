"""Colored target patterns: the decomposition engine's input."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..color import Color
from ..errors import DecompositionError
from ..geometry import Rect


@dataclass(frozen=True)
class TargetPattern:
    """One printed feature: its nm rectangles, its mask color, its owner.

    ``horizontal`` records the wire direction of each rectangle so that
    overlay metrology can tell side boundaries (critical) from tips
    (non-critical). Rectangles of one pattern must belong to one net and
    carry one color — per-layer color freedom is modelled by passing each
    layer's patterns separately.
    """

    net_id: int
    rects: Tuple[Rect, ...]
    color: Color
    horizontal: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.rects:
            raise DecompositionError("target pattern needs at least one rect")
        if len(self.rects) != len(self.horizontal):
            raise DecompositionError("rects and horizontal flags must align")

    @classmethod
    def wire(cls, net_id: int, rect: Rect, color: Color) -> "TargetPattern":
        """A single-rectangle wire; direction inferred from the long axis."""
        return cls(
            net_id=net_id,
            rects=(rect,),
            color=color,
            horizontal=(rect.is_horizontal,),
        )

    @property
    def bbox(self) -> Rect:
        box = self.rects[0]
        for r in self.rects[1:]:
            box = box.hull(r)
        return box

"""Canonical two-pattern clips for every overlay scenario.

One minimal layout per scenario type (Fig. 9 of the paper), parameterised
by the color pair — the geometry the appendix figures (Figs. 24–34)
enumerate. Used by the Table II regeneration bench, the scenario atlas
example, and anyone wanting a physical look at a single scenario.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..color import Color, ColorPair
from ..core.scenarios import ScenarioType
from ..errors import DecompositionError
from ..geometry import Rect
from ..rules import DesignRules
from .target import TargetPattern

#: Length (in tracks) of the long wires in flank-coupled clips.
FLANK_LENGTH = 10


def _hwire(rules: DesignRules, net: int, x0t: int, x1t: int, yt: int, color: Color) -> TargetPattern:
    pitch, half = rules.pitch, rules.w_line // 2
    return TargetPattern.wire(
        net,
        Rect(x0t * pitch - half, yt * pitch - half, x1t * pitch + half, yt * pitch + half),
        color,
    )


def _vwire(rules: DesignRules, net: int, y0t: int, y1t: int, xt: int, color: Color) -> TargetPattern:
    pitch, half = rules.pitch, rules.w_line // 2
    return TargetPattern.wire(
        net,
        Rect(xt * pitch - half, y0t * pitch - half, xt * pitch + half, y1t * pitch + half),
        color,
    )


def scenario_clip(
    scenario: ScenarioType, pair: ColorPair, rules: DesignRules = None
) -> List[TargetPattern]:
    """The canonical two-pattern clip of a scenario under a color pair.

    Pattern A is net 0 (colored ``pair.a``), pattern B net 1 (``pair.b``);
    geometry is in nm, ready for :func:`~repro.decompose.synthesize_masks`.
    """
    rules = rules or DesignRules()
    builders: Dict[ScenarioType, Callable[[Color, Color], Tuple[TargetPattern, TargetPattern]]] = {
        ScenarioType.T1A: lambda ca, cb: (
            _hwire(rules, 0, 0, FLANK_LENGTH, 0, ca),
            _hwire(rules, 1, 0, FLANK_LENGTH, 1, cb),
        ),
        ScenarioType.T1B: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _hwire(rules, 1, 6, 12, 0, cb),
        ),
        ScenarioType.T2A: lambda ca, cb: (
            _hwire(rules, 0, 0, FLANK_LENGTH, 0, ca),
            _hwire(rules, 1, 0, FLANK_LENGTH, 2, cb),
        ),
        ScenarioType.T2B: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _hwire(rules, 1, 7, 13, 0, cb),
        ),
        ScenarioType.T2C: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _vwire(rules, 1, -3, 3, 6, cb),
        ),
        ScenarioType.T2D: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _vwire(rules, 1, -3, 3, 7, cb),
        ),
        ScenarioType.T3A: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _hwire(rules, 1, 6, 12, 1, cb),
        ),
        ScenarioType.T3B: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _vwire(rules, 1, 1, 6, 6, cb),
        ),
        ScenarioType.T3C: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _vwire(rules, 1, 2, 7, 6, cb),
        ),
        ScenarioType.T3D: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _hwire(rules, 1, 6, 12, 2, cb),
        ),
        ScenarioType.T3E: lambda ca, cb: (
            _hwire(rules, 0, 0, 5, 0, ca),
            _hwire(rules, 1, 7, 13, 1, cb),
        ),
    }
    try:
        builder = builders[scenario]
    except KeyError:  # pragma: no cover - exhaustive enum
        raise DecompositionError(f"no clip for scenario {scenario}") from None
    a, b = builder(pair.a, pair.b)
    return [a, b]

"""Bitmap SADP decomposition engine.

Given a colored target layout (every pattern CORE or SECOND, in nm), this
package synthesises the physical masks of the SADP cut process — core mask
(with assist cores), spacers, cut mask — prints the wafer image, and
measures what the paper's metrics mean physically: side/tip overlays
(hard and non-hard) and cut conflicts.

It is the library's ground truth: the router's graph-based overlay
accounting is validated against it, and ``benchmarks/bench_table2.py``
regenerates Table II from it.
"""

from .bitmap import Bitmap
from .target import TargetPattern
from .masks import MaskSet, synthesize_masks
from .overlay import OverlayReport, measure_overlays
from .cuts import BitmapCutConflict, find_cut_conflicts
from .verify import DecompositionReport, verify_decomposition
from .trim import TrimMaskSet, synthesize_trim_masks
from .from_routing import routing_to_targets
from .gdsii import GdsWriter, export_masks_gds
from .clips import scenario_clip

__all__ = [
    "routing_to_targets",
    "GdsWriter",
    "export_masks_gds",
    "scenario_clip",
    "Bitmap",
    "TargetPattern",
    "MaskSet",
    "synthesize_masks",
    "OverlayReport",
    "measure_overlays",
    "BitmapCutConflict",
    "find_cut_conflicts",
    "DecompositionReport",
    "verify_decomposition",
    "TrimMaskSet",
    "synthesize_trim_masks",
]

"""Minimal GDSII stream writer for mask export (no dependencies).

Foundries consume mask data as GDSII streams; this module writes the
subset needed to ship a decomposed window — one structure with one layer
per mask (target / core / assist / spacer / cut), rectangles as BOUNDARY
records. The output is a valid GDSII v6 stream readable by KLayout,
gdstk, etc.

Only writing is supported (reading GDSII is out of scope for this
library); the unit setup is 1 db-unit = 1 nm.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import DecompositionError
from ..geometry import Rect

# GDSII record types (type byte, data-type byte).
_HEADER = (0x00, 0x02)
_BGNLIB = (0x01, 0x02)
_LIBNAME = (0x02, 0x06)
_UNITS = (0x03, 0x05)
_ENDLIB = (0x04, 0x00)
_BGNSTR = (0x05, 0x02)
_STRNAME = (0x06, 0x06)
_ENDSTR = (0x07, 0x00)
_BOUNDARY = (0x08, 0x00)
_LAYER = (0x0D, 0x02)
_DATATYPE = (0x0E, 0x02)
_XY = (0x10, 0x03)
_ENDEL = (0x11, 0x00)

#: Default layer numbering of the exported masks.
DEFAULT_LAYER_MAP: Dict[str, int] = {
    "target": 1,
    "core": 10,
    "assist": 11,
    "spacer": 20,
    "cut": 30,
    "second": 2,
}

#: A dummy timestamp (year, month, day, hour, minute, second) twice —
#: deterministic output beats real modification times for testing and
#: reproducible builds.
_TIMESTAMP = (2016, 8, 18, 0, 0, 0) * 2


def _record(rec: Tuple[int, int], payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        raise DecompositionError("GDSII records must have even length")
    return struct.pack(">HBB", length, rec[0], rec[1]) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\0"
    return data


def _gds_real8(value: float) -> bytes:
    """Encode a float as GDSII 8-byte excess-64 real."""
    if value == 0:
        return b"\0" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 0
    while value >= 1:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B7s", sign | (exponent + 64), mantissa.to_bytes(7, "big"))


@dataclass
class GdsWriter:
    """Accumulates rectangles per layer and writes one GDSII structure."""

    library: str = "REPRO"
    structure: str = "TOP"
    layer_map: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYER_MAP))
    _shapes: List[Tuple[int, Rect]] = field(default_factory=list)

    def add_rect(self, layer: Union[str, int], rect: Rect) -> None:
        """Queue one rectangle; ``layer`` is a mask name or a raw number."""
        if isinstance(layer, str):
            try:
                layer_no = self.layer_map[layer]
            except KeyError:
                raise DecompositionError(f"unknown mask layer {layer!r}") from None
        else:
            layer_no = int(layer)
        self._shapes.append((layer_no, rect))

    def add_rects(self, layer: Union[str, int], rects: Iterable[Rect]) -> None:
        for rect in rects:
            self.add_rect(layer, rect)

    @property
    def shape_count(self) -> int:
        return len(self._shapes)

    def to_bytes(self) -> bytes:
        out = [
            _record(_HEADER, struct.pack(">h", 600)),
            _record(_BGNLIB, struct.pack(">12h", *_TIMESTAMP)),
            _record(_LIBNAME, _ascii(self.library)),
            # 1 user unit = 1e-3 um, 1 db unit = 1e-9 m (1 nm).
            _record(_UNITS, _gds_real8(1e-3) + _gds_real8(1e-9)),
            _record(_BGNSTR, struct.pack(">12h", *_TIMESTAMP)),
            _record(_STRNAME, _ascii(self.structure)),
        ]
        for layer_no, rect in self._shapes:
            xy = struct.pack(
                ">10i",
                rect.xlo, rect.ylo,
                rect.xhi, rect.ylo,
                rect.xhi, rect.yhi,
                rect.xlo, rect.yhi,
                rect.xlo, rect.ylo,  # closed ring
            )
            out.append(_record(_BOUNDARY))
            out.append(_record(_LAYER, struct.pack(">h", layer_no)))
            out.append(_record(_DATATYPE, struct.pack(">h", 0)))
            out.append(_record(_XY, xy))
            out.append(_record(_ENDEL))
        out.append(_record(_ENDSTR))
        out.append(_record(_ENDLIB))
        return b"".join(out)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_bytes(self.to_bytes())
        return path


def export_masks_gds(masks, path: Union[str, Path], include_spacer: bool = True) -> Path:
    """Export a decomposed :class:`~repro.decompose.MaskSet` as GDSII.

    Layers follow :data:`DEFAULT_LAYER_MAP`; bitmap layers are converted
    to row-run rectangles (exact, reasonably compact).
    """
    from ..viz.svg import _bitmap_rects

    writer = GdsWriter()
    for pattern in masks.targets:
        for rect in pattern.rects:
            writer.add_rect("target", rect)
    writer.add_rects("core", _bitmap_rects(masks.core_targets))
    writer.add_rects("assist", _bitmap_rects(masks.assist))
    writer.add_rects("cut", _bitmap_rects(masks.cut_mask))
    if include_spacer:
        writer.add_rects("spacer", _bitmap_rects(masks.spacer))
    return writer.write(path)


def parse_gds_layers(data: bytes) -> Dict[int, int]:
    """Tiny sanity parser: {layer number: boundary count} of a stream.

    Exists so tests (and users without a GDS viewer) can check exports;
    it only walks record headers and LAYER payloads.
    """
    counts: Dict[int, int] = {}
    offset = 0
    current_layer = None
    while offset + 4 <= len(data):
        length, rtype, _ = struct.unpack(">HBB", data[offset : offset + 4])
        if length < 4:
            raise DecompositionError(f"corrupt GDSII record at offset {offset}")
        payload = data[offset + 4 : offset + length]
        if rtype == _LAYER[0]:
            current_layer = struct.unpack(">h", payload)[0]
        elif rtype == _ENDEL[0] and current_layer is not None:
            counts[current_layer] = counts.get(current_layer, 0) + 1
            current_layer = None
        elif rtype == _ENDLIB[0]:
            break
        offset += length
    return counts

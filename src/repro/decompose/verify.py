"""Decomposition correctness verifier.

Checks that a synthesised mask set actually manufactures the target
layout: every target pixel prints, no spacer or core-merge material
invades a feature, and the cut mask is conflict-free over patterns. The
router's "routing results are guaranteed to be conflict-free and thus
decomposable" claim (contribution 5) is validated through this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .cuts import BitmapCutConflict, find_cut_conflicts
from .masks import MaskSet
from .overlay import OverlayReport, measure_overlays


@dataclass
class DecompositionReport:
    """Outcome of verifying one decomposed window."""

    prints_correctly: bool
    missing_target_px: int
    spacer_over_target_px: int
    overlay: OverlayReport
    cut_conflicts: List[BitmapCutConflict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Manufacturable with no hard overlay and no cut conflict."""
        return (
            self.prints_correctly
            and not self.cut_conflicts
            and self.overlay.hard_overlay_count == 0
        )


def verify_decomposition(masks: MaskSet, noise_px: int = 2) -> DecompositionReport:
    """Full physical check of one decomposition.

    ``noise_px`` tolerates single-pixel rasterisation artefacts at rounded
    spacer corners when judging printability.
    """
    target = masks.target_bmp
    missing = (target - masks.printed).count()
    spacer_clash = (masks.spacer & target).count()
    overlay = measure_overlays(masks)
    conflicts = find_cut_conflicts(masks)
    return DecompositionReport(
        prints_correctly=(missing <= noise_px and spacer_clash <= noise_px),
        missing_target_px=missing,
        spacer_over_target_px=spacer_clash,
        overlay=overlay,
        cut_conflicts=conflicts,
    )

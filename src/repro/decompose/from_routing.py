"""Bridge from routing results to decomposition targets.

Lowers a routed layer into colored :class:`TargetPattern` objects so the
bitmap engine can verify what the router promised: the committed layout
decomposes with no hard overlay and no cut conflict.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..color import Color
from ..geometry import Rect
from ..grid import RoutingGrid
from ..router.result import RoutingResult
from .target import TargetPattern


def routing_to_targets(
    grid: RoutingGrid,
    result: RoutingResult,
    layer: int,
    coloring: Optional[Dict[int, Color]] = None,
    clip: Optional[Rect] = None,
) -> List[TargetPattern]:
    """Colored nm patterns of one routed layer.

    ``coloring`` defaults to the result's own per-layer assignment; nets
    without a color default to CORE (matching the router's convention).
    ``clip`` (track coordinates) restricts to a window — used to verify
    manageable clips of large results.
    """
    if coloring is None:
        coloring = result.colorings.get(layer, {})
    half = grid.rules.w_line // 2
    pitch = grid.rules.pitch
    patterns: List[TargetPattern] = []
    for net_id, route in sorted(result.routes.items()):
        if not route.success:
            continue
        rects = []
        horizontals = []
        for seg in route.segments:
            if seg.layer != layer:
                continue
            if clip is not None and not seg.to_rect().overlaps(clip):
                continue
            cell = seg.to_rect()
            rects.append(
                Rect(
                    cell.xlo * pitch - half,
                    cell.ylo * pitch - half,
                    (cell.xhi - 1) * pitch + half,
                    (cell.yhi - 1) * pitch + half,
                )
            )
            horizontals.append(seg.horizontal)
        if rects:
            patterns.append(
                TargetPattern(
                    net_id=net_id,
                    rects=tuple(rects),
                    color=coloring.get(net_id, Color.CORE),
                    horizontal=tuple(horizontals),
                )
            )
    return patterns

"""Overlay metrology on decomposed bitmaps (Section II-A, made physical).

A boundary section of a printed feature is **protected** when the pixel
just outside it is spacer (or more target material — interior edges of a
polygon). Anything else — cut mask or unwanted region — means that section
is defined directly by the cut mask and suffers overlay on mask shift:

* **side overlay** — unprotected run on a *side* boundary (the long edges
  of a wire). Runs longer than ``w_line`` are **hard overlays**, which the
  router must never produce.
* **tip overlay** — unprotected run on a wire end; non-critical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..geometry import Rect
from .masks import MaskSet
from .target import TargetPattern


@dataclass(frozen=True)
class EdgeOverlay:
    """Unprotected runs on one edge of one target rectangle."""

    net_id: int
    rect: Rect
    edge: str  # 'N', 'S', 'E', 'W'
    is_side: bool
    runs_nm: Tuple[Tuple[int, int], ...]  # (start, length) in nm along the edge

    @property
    def total_nm(self) -> int:
        return sum(length for _, length in self.runs_nm)

    @property
    def max_run_nm(self) -> int:
        return max((length for _, length in self.runs_nm), default=0)


@dataclass
class OverlayReport:
    """Aggregate overlay metrology of one decomposed window."""

    side_overlay_nm: int = 0
    tip_overlay_nm: int = 0
    hard_overlay_count: int = 0
    edges: List[EdgeOverlay] = field(default_factory=list)

    @property
    def side_overlay_units(self) -> float:
        """Side overlay in paper units; filled in by the caller via w_line."""
        return self._units

    _units: float = 0.0

    def finalize(self, w_line: int) -> "OverlayReport":
        self._units = self.side_overlay_nm / w_line
        return self

    def per_net_side_overlay(self) -> dict:
        """nm of side overlay attributed to each net (victims' view).

        The physical counterpart of the constraint graph's edge costs:
        which nets' boundaries actually end up cut-defined.
        """
        totals: dict = {}
        for edge in self.edges:
            if edge.is_side:
                totals[edge.net_id] = totals.get(edge.net_id, 0) + edge.total_nm
        return totals

    def worst_net(self):
        """(net_id, nm) of the most-exposed net, or None when clean."""
        totals = self.per_net_side_overlay()
        if not totals:
            return None
        net_id = max(totals, key=totals.get)
        return net_id, totals[net_id]


def _runs_from_mask(mask: np.ndarray, origin_nm: int, resolution: int) -> Tuple[Tuple[int, int], ...]:
    """(start_nm, length_nm) of every True run in a 1-D boolean array."""
    if not mask.any():
        return ()
    padded = np.concatenate(([False], mask, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    ends = np.flatnonzero(diff == -1)
    return tuple(
        (origin_nm + int(s) * resolution, int(e - s) * resolution)
        for s, e in zip(starts, ends)
    )


def measure_overlays(masks: MaskSet, hard_threshold_nm: int = None) -> OverlayReport:
    """Measure side/tip overlays of every target fragment in the window.

    ``hard_threshold_nm`` defaults to ``w_line``: a side run strictly longer
    than it counts as a hard overlay.
    """
    rules = masks.rules
    if hard_threshold_nm is None:
        hard_threshold_nm = rules.w_line
    res = masks.resolution
    window = masks.window
    spacer = masks.spacer.data
    target = masks.target_bmp.data
    protected = spacer | target
    nx, ny = protected.shape

    report = OverlayReport()
    for pattern in masks.targets:
        for rect, horizontal in zip(pattern.rects, pattern.horizontal):
            for edge_name, is_side, sl in _edges(rect, horizontal, window, res, nx, ny):
                if sl is None:
                    continue
                axis_slice, origin = sl
                outside = protected[axis_slice]
                uncovered = ~outside
                runs = _runs_from_mask(uncovered, origin, res)
                if not runs:
                    continue
                edge = EdgeOverlay(
                    net_id=pattern.net_id,
                    rect=rect,
                    edge=edge_name,
                    is_side=is_side,
                    runs_nm=runs,
                )
                report.edges.append(edge)
                if is_side:
                    report.side_overlay_nm += edge.total_nm
                    if edge.max_run_nm > hard_threshold_nm:
                        report.hard_overlay_count += 1
                else:
                    report.tip_overlay_nm += edge.total_nm
    return report.finalize(rules.w_line)


def _edges(rect: Rect, horizontal: bool, window: Rect, res: int, nx: int, ny: int):
    """Yield (name, is_side, (array slice of outside pixels, origin_nm))."""
    x0 = (rect.xlo - window.xlo) // res
    x1 = (rect.xhi - window.xlo) // res
    y0 = (rect.ylo - window.ylo) // res
    y1 = (rect.yhi - window.ylo) // res

    def row(iy: int, lo: int, hi: int, origin: int):
        clo, chi = max(lo, 0), min(hi, nx)
        if 0 <= iy < ny and clo < chi:
            return (np.s_[clo:chi, iy], origin + (clo - lo) * res)
        return None

    def col(ix: int, lo: int, hi: int, origin: int):
        clo, chi = max(lo, 0), min(hi, ny)
        if 0 <= ix < nx and clo < chi:
            return (np.s_[ix, clo:chi], origin + (clo - lo) * res)
        return None

    horizontal_edges = [
        ("S", row(y0 - 1, x0, x1, rect.xlo)),
        ("N", row(y1, x0, x1, rect.xlo)),
    ]
    vertical_edges = [
        ("W", col(x0 - 1, y0, y1, rect.ylo)),
        ("E", col(x1, y0, y1, rect.ylo)),
    ]
    # Side edges run along the wire direction; the others are tips.
    if horizontal:
        for name, sl in horizontal_edges:
            yield name, True, sl
        for name, sl in vertical_edges:
            yield name, False, sl
    else:
        for name, sl in vertical_edges:
            yield name, True, sl
        for name, sl in horizontal_edges:
            yield name, False, sl

"""Exception hierarchy for the SADP routing library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish geometry problems from rule problems from
routing problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Raised for malformed or degenerate geometric objects."""


class DesignRuleError(ReproError):
    """Raised when a design-rule set is internally inconsistent.

    The SADP cut-process rules must satisfy Eqs. (1)-(3) of the paper;
    a :class:`~repro.rules.DesignRules` object that violates them raises
    this error at construction time rather than producing silently bogus
    decompositions later.
    """


class GridError(ReproError):
    """Raised for invalid routing-grid operations (out of bounds, bad layer)."""


class NetlistError(ReproError):
    """Raised for malformed netlists (duplicate names, missing pins, ...)."""


class RoutingError(ReproError):
    """Raised when routing cannot proceed (e.g. pin on a blocked grid)."""


class ColoringError(ReproError):
    """Raised when a color assignment request is infeasible.

    The main source is a hard-constraint odd cycle in the overlay constraint
    graph: no two-coloring exists that avoids hard overlays.
    """


class DecompositionError(ReproError):
    """Raised when SADP mask synthesis fails or verification detects that
    the printed wafer image does not match the target layout."""


class PipelineError(ReproError):
    """Raised when a staged pipeline run fails.

    Carries the failing stage's name so a caller (or the CLI) can tell the
    user exactly where to resume; artifacts of stages that completed
    before the failure stay in the cache, so re-running the same pipeline
    restarts at the first invalid stage.
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage


class PipelineCancelled(PipelineError):
    """Raised when a pipeline run observes its cancellation check between
    stages.

    Artifacts of stages that completed before the cancellation stay in
    the store, so resubmitting the same job resumes where it stopped —
    cancellation costs at most one in-flight stage of work.
    """

"""repro — Overlay-aware detailed routing for SADP lithography (cut process).

A from-scratch reproduction of Liu, Fang and Chang, "Overlay-Aware Detailed
Routing for Self-Aligned Double Patterning Lithography Using the Cut
Process" (DAC 2014 / IEEE TCAD 2016).

Quickstart::

    from repro import RoutingGrid, Netlist, Net, Pin, SadpRouter

    grid = RoutingGrid(width=40, height=40)
    nets = Netlist([
        Net(0, "n0", Pin.at(2, 5), Pin.at(30, 9)),
        Net(1, "n1", Pin.at(4, 8), Pin.at(28, 20)),
    ])
    result = SadpRouter(grid, nets).route_all()
    print(result.summary())

The top-level namespace re-exports the pieces a user typically needs; the
subpackages (``repro.core``, ``repro.decompose``, ``repro.baselines``,
``repro.bench``, ``repro.viz``) hold the full machinery.
"""

from .color import Color, ColorPair
from .errors import (
    ColoringError,
    DecompositionError,
    DesignRuleError,
    GeometryError,
    GridError,
    NetlistError,
    ReproError,
    RoutingError,
)
from .geometry import Point, Rect, Segment
from .grid import Direction, RoutingGrid, Via
from .netlist import Net, Netlist, Pin, read_netlist, write_netlist
from .router import CostParams, NetRoute, RoutingResult, SadpRouter
from .rules import DesignRules

__version__ = "1.0.0"

__all__ = [
    "Color",
    "ColorPair",
    "Point",
    "Rect",
    "Segment",
    "Direction",
    "RoutingGrid",
    "Via",
    "Net",
    "Netlist",
    "Pin",
    "read_netlist",
    "write_netlist",
    "CostParams",
    "NetRoute",
    "RoutingResult",
    "SadpRouter",
    "DesignRules",
    "ReproError",
    "GeometryError",
    "DesignRuleError",
    "GridError",
    "NetlistError",
    "RoutingError",
    "ColoringError",
    "DecompositionError",
    "__version__",
]

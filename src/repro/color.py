"""Mask colors for SADP decomposition.

In the cut process every printed pattern is either a **core pattern**
(drawn on the core mask, printed directly) or a **second pattern** (printed
in the trench between spacers). Assigning each routed net a color per layer
is the layout-decomposition half of the routing problem.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Color(enum.Enum):
    """CORE = drawn on the core mask; SECOND = printed between spacers."""

    CORE = "C"
    SECOND = "S"

    @property
    def flipped(self) -> "Color":
        return Color.SECOND if self is Color.CORE else Color.CORE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ColorPair(enum.Enum):
    """Ordered color assignment of a pattern pair (A, B).

    The paper's notation: ``CC`` means both core, ``CS`` means A core and
    B second, etc. Order matters for the asymmetric scenarios (3-b, 3-c).
    """

    CC = ("C", "C")
    CS = ("C", "S")
    SC = ("S", "C")
    SS = ("S", "S")

    @property
    def a(self) -> Color:
        return Color.CORE if self.value[0] == "C" else Color.SECOND

    @property
    def b(self) -> Color:
        return Color.CORE if self.value[1] == "C" else Color.SECOND

    @property
    def same(self) -> bool:
        return self.value[0] == self.value[1]

    @property
    def swapped(self) -> "ColorPair":
        return _SWAP[self]

    @classmethod
    def of(cls, a: Color, b: Color) -> "ColorPair":
        return _FROM_COLORS[(a, b)]


_SWAP = {
    ColorPair.CC: ColorPair.CC,
    ColorPair.CS: ColorPair.SC,
    ColorPair.SC: ColorPair.CS,
    ColorPair.SS: ColorPair.SS,
}

_FROM_COLORS = {
    (Color.CORE, Color.CORE): ColorPair.CC,
    (Color.CORE, Color.SECOND): ColorPair.CS,
    (Color.SECOND, Color.CORE): ColorPair.SC,
    (Color.SECOND, Color.SECOND): ColorPair.SS,
}

#: Deterministic iteration order used throughout tables and tests.
ALL_PAIRS: Tuple[ColorPair, ...] = (
    ColorPair.CC,
    ColorPair.CS,
    ColorPair.SC,
    ColorPair.SS,
)

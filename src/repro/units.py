"""Physical units and coordinate conversions.

Two coordinate systems coexist in this library:

* **Track coordinates** — integers. The detailed router works on a grid
  whose pitch is ``w_line + w_spacer`` (one wire plus one spacer), the
  natural pitch of an SADP metal layer. A wire of width ``w_line`` is
  centred on its track.

* **Nanometre coordinates** — integers (we never need sub-nm precision).
  The bitmap decomposition engine, DRC, and overlay metrology work in nm.

This module holds the conversion helpers plus the database-unit (DBU)
convention used by the bitmap engine: bitmaps are rasterised at
``DEFAULT_BITMAP_RESOLUTION_NM`` nm per pixel, which divides every design
rule of the 10 nm-node rule set used in the paper (all rules are multiples
of 5 nm).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import GeometryError

#: Default rasterisation grid of the bitmap decomposition engine (nm/pixel).
#: 5 nm divides w_line = w_spacer = w_cut = w_core = 20 nm and
#: d_cut = d_core = 30 nm exactly.
DEFAULT_BITMAP_RESOLUTION_NM = 5

#: One micron in nanometres.
NM_PER_UM = 1000


@dataclass(frozen=True)
class TrackGrid:
    """Mapping between integer track coordinates and nm coordinates.

    Parameters
    ----------
    pitch_nm:
        Centre-to-centre distance of adjacent tracks in nm
        (``w_line + w_spacer``).
    wire_width_nm:
        Drawn width of a wire centred on a track (``w_line``).
    origin_nm:
        nm coordinate of the centre of track 0 (both axes).
    """

    pitch_nm: int
    wire_width_nm: int
    origin_nm: int = 0

    def __post_init__(self) -> None:
        if self.pitch_nm <= 0:
            raise GeometryError(f"track pitch must be positive, got {self.pitch_nm}")
        if not 0 < self.wire_width_nm <= self.pitch_nm:
            raise GeometryError(
                f"wire width {self.wire_width_nm} must be in (0, pitch={self.pitch_nm}]"
            )

    def track_center_nm(self, track: int) -> int:
        """nm coordinate of the centre line of ``track``."""
        return self.origin_nm + track * self.pitch_nm

    def wire_span_nm(self, track: int) -> tuple[int, int]:
        """(low, high) nm extents of a wire centred on ``track``."""
        center = self.track_center_nm(track)
        half = self.wire_width_nm // 2
        return center - half, center - half + self.wire_width_nm

    def nearest_track(self, coord_nm: int) -> int:
        """Track index whose centre is nearest to ``coord_nm`` (ties round down)."""
        return round((coord_nm - self.origin_nm) / self.pitch_nm)

    def span_tracks(self, lo_nm: int, hi_nm: int) -> range:
        """Tracks whose wire spans intersect the half-open nm interval [lo, hi)."""
        if hi_nm <= lo_nm:
            return range(0)
        first = self.nearest_track(lo_nm)
        while self.wire_span_nm(first)[1] > lo_nm:
            first -= 1
        first += 1
        last = first
        while self.wire_span_nm(last)[0] < hi_nm:
            last += 1
        return range(first, last)


def nm_to_um(nm: float) -> float:
    """Convert nanometres to microns."""
    return nm / NM_PER_UM


def um_to_nm(um: float) -> int:
    """Convert microns to (integer) nanometres."""
    return round(um * NM_PER_UM)

"""Workload generation and evaluation harness for the paper's experiments."""

from .workloads import (
    BenchmarkSpec,
    FIXED_PIN_BENCHMARKS,
    MULTI_PIN_BENCHMARKS,
    generate_benchmark,
)
from .runner import (
    BenchRow,
    append_rows_json,
    rows_to_json,
    rows_to_table,
    run_baseline,
    run_cell,
    run_matrix,
    run_proposed,
)
from .scaling import fit_power_law
from .sweeps import SweepPoint, sweep_parameter, sweep_to_table

__all__ = [
    "BenchmarkSpec",
    "FIXED_PIN_BENCHMARKS",
    "MULTI_PIN_BENCHMARKS",
    "generate_benchmark",
    "BenchRow",
    "run_cell",
    "run_matrix",
    "run_proposed",
    "run_baseline",
    "rows_to_table",
    "rows_to_json",
    "append_rows_json",
    "fit_power_law",
    "SweepPoint",
    "sweep_parameter",
    "sweep_to_table",
]

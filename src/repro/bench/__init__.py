"""Workload generation and evaluation harness for the paper's experiments."""

from .workloads import (
    BenchmarkSpec,
    FIXED_PIN_BENCHMARKS,
    MULTI_PIN_BENCHMARKS,
    generate_benchmark,
)
from .runner import BenchRow, run_proposed, run_baseline, rows_to_table
from .scaling import fit_power_law
from .sweeps import SweepPoint, sweep_parameter, sweep_to_table

__all__ = [
    "BenchmarkSpec",
    "FIXED_PIN_BENCHMARKS",
    "MULTI_PIN_BENCHMARKS",
    "generate_benchmark",
    "BenchRow",
    "run_proposed",
    "run_baseline",
    "rows_to_table",
    "fit_power_law",
    "SweepPoint",
    "sweep_parameter",
    "sweep_to_table",
]

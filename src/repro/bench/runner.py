"""Run routers on benchmarks and collect the tables' columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..router import SadpRouter
from ..router.result import RoutingResult
from .workloads import BenchmarkSpec, generate_benchmark


@dataclass
class BenchRow:
    """One (circuit, router) cell group of Table III/IV."""

    circuit: str
    router: str
    num_nets: int
    routability_pct: float
    overlay_nm: float
    overlay_units: float
    conflicts: int
    cpu_s: float
    wirelength: int = 0
    vias: int = 0

    @classmethod
    def from_result(
        cls, circuit: str, router: str, result: RoutingResult
    ) -> "BenchRow":
        return cls(
            circuit=circuit,
            router=router,
            num_nets=len(result.routes),
            routability_pct=result.routability * 100.0,
            overlay_nm=result.overlay_nm,
            overlay_units=result.overlay_units,
            conflicts=result.cut_conflicts,
            cpu_s=result.cpu_seconds,
            wirelength=result.total_wirelength,
            vias=result.total_vias,
        )


def run_proposed(
    spec: BenchmarkSpec, scale: float = 1.0, seed: int = 2014, **router_kwargs
) -> BenchRow:
    """Route a benchmark with the proposed overlay-aware router."""
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    result = SadpRouter(grid, nets, **router_kwargs).route_all()
    return BenchRow.from_result(spec.name, "ours", result)


def run_baseline(
    router_factory: Callable,
    label: str,
    spec: BenchmarkSpec,
    scale: float = 1.0,
    seed: int = 2014,
    **kwargs,
) -> BenchRow:
    """Route a benchmark with one of the baseline routers.

    ``router_factory(grid, netlist, **kwargs)`` must build the router;
    the same seed reproduces the identical instance the proposed router
    saw, so rows are directly comparable.
    """
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    result = router_factory(grid, nets, **kwargs).route_all()
    return BenchRow.from_result(spec.name, label, result)


def rows_to_table(rows: List[BenchRow], caption: str = "") -> str:
    """Format rows like the paper's tables (grouped by circuit)."""
    header = (
        f"{'Circuit':8s} {'Router':10s} {'#Net':>6s} {'Rout.%':>7s} "
        f"{'Overlay(nm)':>12s} {'Units':>8s} {'#C':>5s} {'CPU(s)':>8s}"
    )
    lines = []
    if caption:
        lines.append(caption)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.circuit:8s} {row.router:10s} {row.num_nets:6d} "
            f"{row.routability_pct:7.1f} {row.overlay_nm:12.0f} "
            f"{row.overlay_units:8.0f} {row.conflicts:5d} {row.cpu_s:8.2f}"
        )
    return "\n".join(lines)


def comparison_summary(ours: List[BenchRow], theirs: List[BenchRow]) -> str:
    """The paper's 'Comp.' row: ratios of baseline over ours."""
    pairs = list(zip(ours, theirs))
    if not pairs:
        return "no data"
    rout = _safe_mean([b.routability_pct / a.routability_pct for a, b in pairs])
    ovl = _safe_mean(
        [b.overlay_nm / a.overlay_nm for a, b in pairs if a.overlay_nm > 0]
    )
    cpu = _safe_mean([b.cpu_s / a.cpu_s for a, b in pairs if a.cpu_s > 0])
    return (
        f"baseline/ours ratios: routability {rout:.3f}x, "
        f"overlay {ovl:.2f}x, cpu {cpu:.2f}x"
    )


def _safe_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")

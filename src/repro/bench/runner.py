"""Run routers on benchmarks and collect the tables' columns.

Cells go through the staged pipeline (:func:`run_cell`): a benchmark
instance is one ``PipelineConfig``, so every router variant routed on the
same circuit/scale/seed shares the cached design and grid artifacts, and
repeated sweeps of the same cell are pure cache hits when a persistent
store is passed.

With observability enabled (``repro.obs.enable()`` or the CLI's
``--metrics`` / ``--trace``), each row also carries the per-phase runtime
split (A* search vs. constraint-graph maintenance vs. color flipping)
measured by the span tracer, and the table grows the matching columns —
the per-stage breakdown the TRIAD/TPL papers report.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..obs.export import phase_totals
from ..router.result import RoutingResult
from .workloads import BenchmarkSpec, generate_benchmark


@dataclass
class BenchRow:
    """One (circuit, router) cell group of Table III/IV."""

    circuit: str
    router: str
    num_nets: int
    routability_pct: float
    overlay_nm: float
    overlay_units: float
    conflicts: int
    cpu_s: float
    wirelength: int = 0
    vias: int = 0
    #: Per-phase runtime split (zero when observability is off).
    search_s: float = 0.0
    graph_s: float = 0.0
    flip_s: float = 0.0
    commit_s: float = 0.0

    @classmethod
    def from_result(
        cls, circuit: str, router: str, result: RoutingResult
    ) -> "BenchRow":
        return cls(
            circuit=circuit,
            router=router,
            num_nets=len(result.routes),
            routability_pct=result.routability * 100.0,
            overlay_nm=result.overlay_nm,
            overlay_units=result.overlay_units,
            conflicts=result.cut_conflicts,
            cpu_s=result.cpu_seconds,
            wirelength=result.total_wirelength,
            vias=result.total_vias,
        )

    @property
    def has_phases(self) -> bool:
        return (self.search_s + self.graph_s + self.flip_s + self.commit_s) > 0.0

    def to_dict(self, **meta) -> Dict:
        """The row as a flat JSON-ready dict; ``meta`` (e.g. scale/seed)
        is merged in, so trajectory tooling sees the full context."""
        out = asdict(self)
        out.update(meta)
        return out


def _fill_phases(row: BenchRow, before: Dict[str, float]) -> BenchRow:
    """Attach the tracer's phase deltas accumulated during one run."""
    after = phase_totals()
    if after:
        row.search_s = after.get("search", 0.0) - before.get("search", 0.0)
        row.graph_s = after.get("graph", 0.0) - before.get("graph", 0.0)
        row.flip_s = after.get("flip", 0.0) - before.get("flip", 0.0)
        row.commit_s = after.get("commit", 0.0) - before.get("commit", 0.0)
    return row


def run_cell(
    spec: BenchmarkSpec,
    router: str = "ours",
    label: Optional[str] = None,
    scale: float = 1.0,
    seed: int = 2014,
    store: Optional[Any] = None,
    workers: int = 1,
    shard: str = "auto",
    kernel: str = "auto",
    router_options: Optional[Dict[str, Any]] = None,
) -> BenchRow:
    """Route one (circuit, router) table cell through the staged pipeline.

    ``store`` defaults to a fresh in-memory store (a live run, like the
    legacy behavior); pass a shared ``MemoryStore``/``ArtifactStore`` to
    reuse the design/grid artifacts across router variants of the same
    instance, or to make repeated sweeps cache-hit entirely.
    """
    from ..pipeline import MemoryStore, Pipeline, PipelineConfig

    config = PipelineConfig(
        circuit=spec.name,
        scale=scale,
        seed=seed,
        router=router,
        workers=workers,
        shard=shard,
        kernel=kernel,
        router_options=dict(router_options) if router_options else None,
    )
    before = phase_totals()
    run = Pipeline(config, store=store if store is not None else MemoryStore()).run(
        targets=("route",)
    )
    # A live run leaves the exact RoutingResult in the context; a cache
    # hit deserializes it (identical content, zero routing work).
    result = run.context.get("result") or run.artifact("routing").result()
    row = BenchRow.from_result(spec.name, label or router, result)
    return _fill_phases(row, before)


def run_proposed(
    spec: BenchmarkSpec, scale: float = 1.0, seed: int = 2014, **router_kwargs
) -> BenchRow:
    """Route a benchmark with the proposed overlay-aware router."""
    workers = router_kwargs.pop("workers", 1)
    shard = router_kwargs.pop("shard", "auto")
    kernel = router_kwargs.pop("kernel", "auto")
    return run_cell(
        spec,
        router="ours",
        scale=scale,
        seed=seed,
        workers=workers,
        shard=shard,
        kernel=kernel,
        router_options=router_kwargs or None,
    )


#: Baseline router classes the pipeline's route stage knows by name.
def _router_name_for(factory: Callable) -> Optional[str]:
    from ..baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
    from ..router import SadpRouter

    return {
        SadpRouter: "ours",
        GaoPanTrimRouter: "gao-pan",
        CutNoMergeRouter: "cut16",
        DuTrimRouter: "du",
    }.get(factory)


def run_baseline(
    router_factory: Callable,
    label: str,
    spec: BenchmarkSpec,
    scale: float = 1.0,
    seed: int = 2014,
    **kwargs,
) -> BenchRow:
    """Route a benchmark with one of the baseline routers.

    ``router_factory(grid, netlist, **kwargs)`` must build the router;
    the same seed reproduces the identical instance the proposed router
    saw, so rows are directly comparable. Known router classes go through
    the pipeline (sharing cached upstream artifacts); unrecognized
    factories fall back to direct routing.
    """
    name = _router_name_for(router_factory)
    if name is not None:
        return run_cell(
            spec,
            router=name,
            label=label,
            scale=scale,
            seed=seed,
            router_options=kwargs or None,
        )
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    before = phase_totals()
    result = router_factory(grid, nets, **kwargs).route_all()
    return _fill_phases(BenchRow.from_result(spec.name, label, result), before)


def run_matrix(
    specs: List[BenchmarkSpec],
    routers: List[str],
    scale: float = 1.0,
    seed: int = 2014,
    store: Optional[Any] = None,
    workers: int = 1,
) -> List[BenchRow]:
    """Every (circuit, router) cell, sharing one artifact store so each
    circuit's design/grid artifacts are generated once."""
    from ..pipeline import MemoryStore

    shared = store if store is not None else MemoryStore()
    return [
        run_cell(spec, router=router, scale=scale, seed=seed, store=shared, workers=workers)
        for spec in specs
        for router in routers
    ]


def rows_to_table(rows: List[BenchRow], caption: str = "") -> str:
    """Format rows like the paper's tables (grouped by circuit).

    Rows carrying per-phase timings grow search/graph/flip columns; the
    base layout is unchanged otherwise, so untimed tables print exactly
    as before.
    """
    with_phases = any(row.has_phases for row in rows)
    header = (
        f"{'Circuit':8s} {'Router':10s} {'#Net':>6s} {'Rout.%':>7s} "
        f"{'Overlay(nm)':>12s} {'Units':>8s} {'#C':>5s} {'CPU(s)':>8s}"
    )
    if with_phases:
        header += (
            f" {'search(s)':>10s} {'graph(s)':>9s} {'flip(s)':>8s}"
            f" {'commit(s)':>10s}"
        )
    lines = []
    if caption:
        lines.append(caption)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        line = (
            f"{row.circuit:8s} {row.router:10s} {row.num_nets:6d} "
            f"{row.routability_pct:7.1f} {row.overlay_nm:12.0f} "
            f"{row.overlay_units:8.0f} {row.conflicts:5d} {row.cpu_s:8.2f}"
        )
        if with_phases:
            line += (
                f" {row.search_s:10.4f} {row.graph_s:9.4f} {row.flip_s:8.4f}"
                f" {row.commit_s:10.4f}"
            )
        lines.append(line)
    return "\n".join(lines)


ROWS_SCHEMA = "repro-bench-rows/1"


def rows_to_json(rows: List[BenchRow], caption: str = "", **meta) -> str:
    """The rows as a JSON document (machine-readable table twin)."""
    payload = {
        "schema": ROWS_SCHEMA,
        "caption": caption,
        "rows": [row.to_dict(**meta) for row in rows],
    }
    return json.dumps(payload, indent=2)


def append_rows_json(path: Union[str, Path], rows: List[BenchRow], **meta) -> None:
    """Accumulate rows into a JSON artifact next to a text table.

    The benchmark scripts append one circuit at a time to their
    ``results/*.txt`` tables; this mirrors each append into a sibling
    ``*.json`` so perf-trajectory tooling gets structured data without
    parsing the fixed-width tables. The file is a single JSON document
    (``schema``/``rows``), re-read and rewritten per append — benchmark
    cadence, not hot-path cadence.
    """
    path = Path(path)
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {"schema": ROWS_SCHEMA, "rows": []}
    payload["rows"].extend(row.to_dict(**meta) for row in rows)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def comparison_summary(ours: List[BenchRow], theirs: List[BenchRow]) -> str:
    """The paper's 'Comp.' row: ratios of baseline over ours."""
    pairs = list(zip(ours, theirs))
    if not pairs:
        return "no data"
    rout = _safe_mean([b.routability_pct / a.routability_pct for a, b in pairs])
    ovl = _safe_mean(
        [b.overlay_nm / a.overlay_nm for a, b in pairs if a.overlay_nm > 0]
    )
    cpu = _safe_mean([b.cpu_s / a.cpu_s for a, b in pairs if a.cpu_s > 0])
    return (
        f"baseline/ours ratios: routability {rout:.3f}x, "
        f"overlay {ovl:.2f}x, cpu {cpu:.2f}x"
    )


def _safe_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")

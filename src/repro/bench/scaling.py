"""Runtime-scaling analysis (Fig. 20).

The paper plots router runtime against net count and reports an empirical
complexity of about n^1.42 from a least-squares fit. We reproduce the fit
in log-log space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class PowerLawFit:
    """y = coefficient * x^exponent, plus the fit quality."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit in log-log space."""
    if len(xs) != len(ys):
        raise ReproError("x and y series must have the same length")
    if len(xs) < 2:
        raise ReproError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ReproError("power-law fit requires positive data")
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(((ly - predicted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
    )

"""Parameter sweeps over the router's cost knobs.

The paper fixes alpha = beta = 1, gamma = 1.5 and f_threshold = 10
without an ablation; this module provides the sweep harness that
justifies (or challenges) those choices on the synthetic benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from ..router import CostParams, SadpRouter
from .workloads import BenchmarkSpec, generate_benchmark


@dataclass(frozen=True)
class SweepPoint:
    """Mean metrics of one parameter setting over the sweep's seeds."""

    label: str
    value: float
    overlay_nm: float
    routability_pct: float
    wirelength: float
    cpu_s: float


def sweep_parameter(
    spec: BenchmarkSpec,
    parameter: str,
    values: Sequence[float],
    scale: float = 0.15,
    seeds: Sequence[int] = (2014, 7, 99),
    base: CostParams = None,
) -> List[SweepPoint]:
    """Route the same instances under each value of one CostParams field.

    Returns one seed-averaged :class:`SweepPoint` per value. ``parameter``
    must be a field of :class:`~repro.router.CostParams` (e.g. ``gamma``,
    ``flip_threshold``, ``delta_tip``).
    """
    base = base or CostParams()
    points: List[SweepPoint] = []
    for value in values:
        params = replace(base, **{parameter: value})
        overlay = rout = wl = cpu = 0.0
        for seed in seeds:
            grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
            result = SadpRouter(grid, nets, params=params).route_all()
            overlay += result.overlay_nm
            rout += result.routability * 100
            wl += result.total_wirelength
            cpu += result.cpu_seconds
        n = len(seeds)
        points.append(
            SweepPoint(
                label=parameter,
                value=value,
                overlay_nm=overlay / n,
                routability_pct=rout / n,
                wirelength=wl / n,
                cpu_s=cpu / n,
            )
        )
    return points


def sweep_to_table(points: List[SweepPoint]) -> str:
    """Format a sweep as a text table."""
    if not points:
        return "empty sweep"
    header = (
        f"{points[0].label:>14s} {'overlay(nm)':>12s} {'rout.%':>8s} "
        f"{'wl':>8s} {'cpu(s)':>8s}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.value:14.2f} {p.overlay_nm:12.0f} {p.routability_pct:8.1f} "
            f"{p.wirelength:8.0f} {p.cpu_s:8.2f}"
        )
    return "\n".join(lines)

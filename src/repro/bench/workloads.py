"""Synthetic benchmarks reproducing the paper's Test1-Test10.

The paper evaluates on ten randomly generated two-pin-net benchmarks with
three routing layers at the 10 nm node (track pitch 40 nm):

=======  ======  ===========  =================
Circuit  #nets   die (um^2)   pin model
=======  ======  ===========  =================
Test1    1500    6.8 x 6.8    fixed
Test2    2700    9.6 x 9.6    fixed
Test3    5500    16 x 16      fixed
Test4    12000   24 x 24      fixed
Test5    28000   36 x 36      fixed
Test6    1500    6.8 x 6.8    multi-candidate
Test7    2700    9.6 x 9.6    multi-candidate
Test8    5500    16 x 16      multi-candidate
Test9    12000   24 x 24      multi-candidate
Test10   28000   36 x 36      multi-candidate
=======  ======  ===========  =================

The exact net distribution is unpublished; we use uniformly placed pins
with bounded net span, which lands the proposed router in the paper's
94-98 % routability band. ``scale`` shrinks an instance for laptop runs:
the die side scales by ``scale`` and the net count by ``scale**2`` so the
congestion profile is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..errors import ReproError
from ..geometry import Point
from ..grid import RoutingGrid, default_layer_stack
from ..netlist import Net, Netlist, Pin
from ..rules import DesignRules


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the paper's benchmark tables."""

    name: str
    num_nets: int
    die_um: float
    multi_candidate: bool

    @property
    def tracks(self) -> int:
        """Die side in tracks at the default 40 nm pitch."""
        return round(self.die_um * 1000 / DesignRules().pitch)


FIXED_PIN_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("Test1", 1500, 6.8, False),
    BenchmarkSpec("Test2", 2700, 9.6, False),
    BenchmarkSpec("Test3", 5500, 16.0, False),
    BenchmarkSpec("Test4", 12000, 24.0, False),
    BenchmarkSpec("Test5", 28000, 36.0, False),
]

MULTI_PIN_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("Test6", 1500, 6.8, True),
    BenchmarkSpec("Test7", 2700, 9.6, True),
    BenchmarkSpec("Test8", 5500, 16.0, True),
    BenchmarkSpec("Test9", 12000, 24.0, True),
    BenchmarkSpec("Test10", 28000, 36.0, True),
]

#: The bench ``--tier full`` preset: the sizes where active region
#: sharding has room to engage (die sides of 170-225 tracks, ~1500-1950
#: nets after scaling) across both pin models, Test5-Test10. Scales are
#: chosen per spec so every instance lands in that band — the raw specs
#: span 170-900 tracks and n^1.42 routing makes the big ones unusable
#: for a bench loop. Test6 is the known-small member (its spec maxes out
#: at 170 tracks): it documents where the auto decision *refuses* to
#: shard.
FULL_TIER_WORKLOADS: Tuple[str, ...] = (
    "Test5",
    "Test6",
    "Test7",
    "Test8",
    "Test9",
    "Test10",
)

FULL_TIER_SCALES = {
    "Test5": 0.25,
    "Test6": 1.00,
    "Test7": 0.85,
    "Test8": 0.55,
    "Test9": 0.36,
    "Test10": 0.24,
}


def generate_benchmark(
    spec: BenchmarkSpec,
    scale: float = 1.0,
    seed: int = 2014,
    num_layers: int = 3,
    max_span_tracks: int = 12,
    blockage_density: float = 0.0,
) -> Tuple[RoutingGrid, Netlist]:
    """Instantiate a benchmark as (grid, netlist).

    Pins sit on layer 0 at distinct grid points; net spans are uniform in
    [3, max_span_tracks] per axis — detailed-routing nets are local, and
    the default of 12 tracks keeps full-scale instances in the paper's
    routability band (~25-30 % wire utilisation on Test1). Multi-candidate
    specs give each pin 2-4 candidates on neighbouring tracks (the model
    of [10]).

    ``blockage_density`` > 0 sprinkles square macro blockages (blocked on
    every layer) covering roughly that fraction of the die — an extension
    for obstacle-aware experiments; pins avoid blocked cells.
    """
    if not 0.0 < scale <= 1.0:
        raise ReproError(f"scale must be in (0, 1], got {scale}")
    if not 0.0 <= blockage_density < 0.5:
        raise ReproError(
            f"blockage_density must be in [0, 0.5), got {blockage_density}"
        )
    # zlib.crc32 keeps the instance identical across processes (str hash()
    # is randomised per interpreter run).
    import zlib

    rng = random.Random(seed + zlib.crc32(spec.name.encode()) % 10_000)
    side = max(int(spec.tracks * scale), 24)
    num_nets = max(int(spec.num_nets * scale * scale), 8)
    max_span_tracks = min(max_span_tracks, max(side // 3, 6))

    grid = RoutingGrid(
        width=side, height=side, layers=default_layer_stack(num_layers)
    )
    used: Set[Point] = set()

    if blockage_density > 0.0:
        # Square macros of ~side/10, placed until the density is reached;
        # their cells are blocked on every layer and excluded from pins.
        from ..geometry import Rect

        macro = max(side // 10, 2)
        target_cells = int(blockage_density * side * side)
        covered = 0
        attempts = 0
        while covered < target_cells and attempts < 1000:
            attempts += 1
            x0 = rng.randrange(0, side - macro)
            y0 = rng.randrange(0, side - macro)
            rect = Rect(x0, y0, x0 + macro, y0 + macro)
            cells = [Point(x, y) for x in range(rect.xlo, rect.xhi)
                     for y in range(rect.ylo, rect.yhi)]
            if any(p in used for p in cells):
                continue
            for layer in range(num_layers):
                grid.block(layer, rect)
            used.update(cells)
            covered += rect.area

    def free_point(near: Optional[Point] = None) -> Point:
        for _ in range(10_000):
            if near is None:
                p = Point(rng.randrange(side), rng.randrange(side))
            else:
                dx = rng.randint(-max_span_tracks, max_span_tracks)
                dy = rng.randint(-max_span_tracks, max_span_tracks)
                if abs(dx) + abs(dy) < 3:
                    continue
                p = Point(
                    min(max(near.x + dx, 0), side - 1),
                    min(max(near.y + dy, 0), side - 1),
                )
            if p not in used:
                return p
        raise ReproError("could not place pins: benchmark too dense")

    def make_pin(base: Point, multi: bool) -> Pin:
        used.add(base)
        if not multi:
            return Pin(candidates=(base,), layer=0)
        candidates = [base]
        for _ in range(rng.randint(1, 3)):
            for _ in range(50):
                q = Point(
                    min(max(base.x + rng.randint(-2, 2), 0), side - 1),
                    min(max(base.y + rng.randint(-2, 2), 0), side - 1),
                )
                if q not in used:
                    candidates.append(q)
                    used.add(q)
                    break
        return Pin(candidates=tuple(candidates), layer=0)

    nets = Netlist()
    for i in range(num_nets):
        src_base = free_point()
        src = make_pin(src_base, spec.multi_candidate)
        dst_base = free_point(near=src_base)
        dst = make_pin(dst_base, spec.multi_candidate)
        nets.add(Net(net_id=i, name=f"n{i}", source=src, target=dst))
    return grid, nets


def spec_by_name(name: str) -> BenchmarkSpec:
    """Look a benchmark up by its paper name (Test1..Test10)."""
    for spec in FIXED_PIN_BENCHMARKS + MULTI_PIN_BENCHMARKS:
        if spec.name.lower() == name.lower():
            return spec
    raise ReproError(f"unknown benchmark {name!r}")

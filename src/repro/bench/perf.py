"""Perf regression bench: interleaved fast-vs-reference route_all timing.

Measures the router's end-to-end wall time on scaled paper workloads with
observability **off** (the production configuration), comparing the
flat-index fast A* path against the dict-based reference implementation.
Rounds are interleaved — reference, fast, reference, fast, … — so thermal
drift and background noise hit both modes equally, and the per-mode
minimum over rounds is reported (the least-noise estimate of true cost).

Results land in ``BENCH_perf.json``::

    python -m repro.bench.perf --out BENCH_perf.json

and a committed baseline gates regressions in CI::

    python -m repro.bench.perf --workloads Test1 --rounds 2 \\
        --check BENCH_perf.json --tolerance 0.30

The check compares *speedup ratios* (reference time / fast time), not
absolute wall times, so a baseline recorded on one machine is meaningful
on any runner: the ratio cancels machine speed, and the tolerance
absorbs runner noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.export import phase_totals
from ..router import SadpRouter
from .workloads import generate_benchmark, spec_by_name

SCHEMA = "repro-bench-perf/1"

#: Workload scales: chosen so a full default run finishes in a couple of
#: minutes while Test5 is large enough for a stable speedup estimate.
DEFAULT_SCALES: Dict[str, float] = {
    "Test1": 0.20,
    "Test5": 0.12,
    "Test6": 0.20,
}

DEFAULT_WORKLOADS = ("Test1", "Test5", "Test6")


@dataclass
class ModeSample:
    """One mode's (reference or fast) best-of-rounds measurement."""

    route_all_s: float
    rounds_s: List[float]
    expansions: int
    searches: int
    routability_pct: float
    overlay_units: float

    @property
    def expansions_per_s(self) -> float:
        return self.expansions / self.route_all_s if self.route_all_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "route_all_s": round(self.route_all_s, 6),
            "rounds_s": [round(r, 6) for r in self.rounds_s],
            "expansions": self.expansions,
            "searches": self.searches,
            "expansions_per_s": round(self.expansions_per_s, 1),
            "routability_pct": round(self.routability_pct, 2),
            "overlay_units": self.overlay_units,
        }


@dataclass
class WorkloadResult:
    circuit: str
    scale: float
    seed: int
    fast: ModeSample
    reference: Optional[ModeSample] = None
    parallel: Optional[ModeSample] = None
    parallel_stats: Optional[dict] = None
    phases: Dict[str, float] = field(default_factory=dict)
    #: route_all wall time of the instrumented phase-split run. The phase
    #: buckets are disjoint self-time slices of this run, so
    #: ``sum(phases_s.values()) <= phases_route_all_s`` holds exactly.
    phases_route_all_s: float = 0.0

    @property
    def speedup(self) -> Optional[float]:
        if self.reference is None or self.fast.route_all_s <= 0:
            return None
        return self.reference.route_all_s / self.fast.route_all_s

    @property
    def parallel_speedup(self) -> Optional[float]:
        if self.parallel is None or self.parallel.route_all_s <= 0:
            return None
        return self.fast.route_all_s / self.parallel.route_all_s

    def to_dict(self) -> dict:
        out = {
            "circuit": self.circuit,
            "scale": self.scale,
            "seed": self.seed,
            "fast": self.fast.to_dict(),
        }
        if self.reference is not None:
            out["reference"] = self.reference.to_dict()
            out["speedup"] = round(self.speedup, 4)
            out["walltime_reduction_pct"] = round(
                (1.0 - self.fast.route_all_s / self.reference.route_all_s) * 100.0, 2
            )
        if self.parallel is not None:
            out["parallel"] = self.parallel.to_dict()
            out["parallel_speedup"] = round(self.parallel_speedup, 4)
            if self.parallel_stats is not None:
                out["parallel_stats"] = self.parallel_stats
        if self.phases:
            out["phases_s"] = {k: round(v, 6) for k, v in self.phases.items()}
            out["phases_route_all_s"] = round(self.phases_route_all_s, 6)
        return out


def _run_once(
    circuit: str,
    scale: float,
    seed: int,
    use_reference: bool,
    workers: int = 1,
    executor: str = "process",
) -> Tuple[float, int, int, float, float, Optional[dict]]:
    """One fresh instance + route_all; returns (wall_s, expansions,
    searches, routability_pct, overlay_units, parallel_stats)."""
    spec = spec_by_name(circuit)
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    router = SadpRouter(grid, nets, workers=workers, executor=executor)
    router.engine.use_reference = use_reference
    t0 = time.perf_counter()
    result = router.route_all()
    wall = time.perf_counter() - t0
    stats = (
        router.parallel_stats.to_dict()
        if router.parallel_stats is not None
        else None
    )
    return (
        wall,
        router.engine.total_expansions,
        router.engine.total_searches,
        result.routability * 100.0,
        result.overlay_units,
        stats,
    )


def _phase_split(circuit: str, scale: float, seed: int) -> Tuple[Dict[str, float], float]:
    """One instrumented (untimed-for-comparison) run for the phase split.

    Returns (phase seconds, route_all seconds of that same run). The
    buckets are disjoint — ``commit`` is measured as the commit span's
    *self* time — so their sum never exceeds the route_all total.
    """
    spec = spec_by_name(circuit)
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    with obs.session():
        before = dict(phase_totals())
        SadpRouter(grid, nets).route_all()
        after = phase_totals()
        ob = obs.get_active()
        route_all_s = (
            ob.tracer.totals_by_name().get("route_all", 0.0)
            if ob is not None
            else 0.0
        )
    phases = {
        phase: after.get(phase, 0.0) - before.get(phase, 0.0)
        for phase in ("search", "graph", "flip", "commit")
    }
    return phases, route_all_s


def run_perf(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scales: Optional[Dict[str, float]] = None,
    seed: int = 2014,
    rounds: int = 3,
    include_reference: bool = True,
    include_phases: bool = True,
    workers: int = 1,
    executor: str = "process",
    verbose: bool = True,
) -> dict:
    """Run the perf bench; returns the ``BENCH_perf.json`` payload.

    With ``workers > 1`` each workload also runs through the parallel
    batch-routing engine (same instance, same seed) and the payload
    grows ``parallel`` / ``parallel_speedup`` / ``parallel_stats``
    fields; :func:`check_parallel_equivalence` gates that the parallel
    run produced identical routability and overlay.
    """
    if obs.is_enabled():
        raise RuntimeError(
            "perf bench must run with observability off (it measures the "
            "production configuration); call obs.disable() first"
        )
    scales = {**DEFAULT_SCALES, **(scales or {})}
    results: List[WorkloadResult] = []
    for circuit in workloads:
        scale = scales.get(circuit, 0.15)
        modes = ["reference", "fast"] if include_reference else ["fast"]
        if workers > 1:
            modes.append("parallel")
        samples: Dict[str, List[Tuple[float, int, int, float, float, Optional[dict]]]] = {
            m: [] for m in modes
        }
        for _ in range(rounds):
            for mode in modes:  # interleaved: all modes see the same drift
                samples[mode].append(
                    _run_once(
                        circuit,
                        scale,
                        seed,
                        use_reference=(mode == "reference"),
                        workers=workers if mode == "parallel" else 1,
                        executor=executor,
                    )
                )
        def best(mode: str) -> ModeSample:
            runs = samples[mode]
            idx = min(range(len(runs)), key=lambda i: runs[i][0])
            wall, exp, searches, rout, ovl, _ = runs[idx]
            return ModeSample(
                route_all_s=wall,
                rounds_s=[r[0] for r in runs],
                expansions=exp,
                searches=searches,
                routability_pct=rout,
                overlay_units=ovl,
            )
        wl = WorkloadResult(
            circuit=circuit,
            scale=scale,
            seed=seed,
            fast=best("fast"),
            reference=best("reference") if include_reference else None,
        )
        if workers > 1:
            wl.parallel = best("parallel")
            runs = samples["parallel"]
            idx = min(range(len(runs)), key=lambda i: runs[i][0])
            wl.parallel_stats = runs[idx][5]
        if include_phases:
            wl.phases, wl.phases_route_all_s = _phase_split(circuit, scale, seed)
        results.append(wl)
        if verbose:
            line = (
                f"{circuit:7s} scale {scale:.2f}: fast {wl.fast.route_all_s:.3f}s"
                f" ({wl.fast.expansions_per_s:,.0f} exp/s)"
            )
            if wl.reference is not None:
                line += (
                    f", reference {wl.reference.route_all_s:.3f}s"
                    f" -> speedup {wl.speedup:.2f}x"
                )
            if wl.parallel is not None:
                line += (
                    f", parallel({workers}w) {wl.parallel.route_all_s:.3f}s"
                    f" -> {wl.parallel_speedup:.2f}x"
                )
            print(line)
    payload = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "config": {
            "rounds": rounds,
            "seed": seed,
            "workloads": list(workloads),
            "scales": {c: scales.get(c, 0.15) for c in workloads},
            "observability": "off",
            "timing": "interleaved, best-of-rounds",
            "workers": workers,
        },
        "workloads": [wl.to_dict() for wl in results],
    }
    speedups = [wl.speedup for wl in results if wl.speedup is not None]
    if speedups:
        geo = 1.0
        for s in speedups:
            geo *= s
        payload["summary"] = {
            "geomean_speedup": round(geo ** (1.0 / len(speedups)), 4),
            "min_speedup": round(min(speedups), 4),
        }
    return payload


def check_parallel_equivalence(payload: dict) -> List[str]:
    """Determinism gate: parallel runs must match sequential exactly.

    The batch scheduler guarantees bit-identical results for any worker
    count; this check enforces the observable half of that guarantee —
    identical routability and overlay units between the ``fast``
    (sequential) and ``parallel`` samples of every workload. Returns a
    list of problems (empty = pass).
    """
    problems: List[str] = []
    for wl in payload.get("workloads", []):
        par = wl.get("parallel")
        if par is None:
            continue
        fast = wl["fast"]
        if par["routability_pct"] != fast["routability_pct"]:
            problems.append(
                f"{wl['circuit']}: parallel routability "
                f"{par['routability_pct']} != sequential {fast['routability_pct']}"
            )
        if par["overlay_units"] != fast["overlay_units"]:
            problems.append(
                f"{wl['circuit']}: parallel overlay {par['overlay_units']} "
                f"!= sequential {fast['overlay_units']}"
            )
    return problems


def check_against_baseline(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> List[str]:
    """Regression gate: compare speedup ratios per workload.

    A workload regresses when its measured reference/fast speedup falls
    more than ``tolerance`` (fractional) below the baseline's. Ratios
    are machine-portable; the tolerance absorbs runner noise. Returns a
    list of problems (empty = pass). Workloads missing from either side
    are skipped — the gate checks what both runs measured.
    """
    problems: List[str] = []
    base_by_circuit = {
        wl["circuit"]: wl for wl in baseline.get("workloads", [])
    }
    checked = 0
    for wl in current.get("workloads", []):
        base = base_by_circuit.get(wl["circuit"])
        if base is None or "speedup" not in wl or "speedup" not in base:
            continue
        checked += 1
        floor = base["speedup"] * (1.0 - tolerance)
        if wl["speedup"] < floor:
            problems.append(
                f"{wl['circuit']}: speedup {wl['speedup']:.2f}x is below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x minus "
                f"{tolerance:.0%} tolerance)"
            )
    if checked == 0:
        problems.append("no overlapping workloads between run and baseline")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated TestN names",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--scale-mult",
        type=float,
        default=1.0,
        help="multiplier on the per-workload default scales",
    )
    parser.add_argument("--out", default=None, help="write BENCH_perf.json here")
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the reference-path runs (fast-only timing)",
    )
    parser.add_argument(
        "--no-phases", action="store_true", help="skip the instrumented phase split"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also time the parallel batch router with N workers and gate "
        "its results against the sequential run",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="worker pool kind for the parallel runs",
    )
    parser.add_argument(
        "--check",
        default=None,
        help="baseline BENCH_perf.json to gate speedup regressions against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup drop vs the baseline (runner noise)",
    )
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    scales = {
        c: min(s * args.scale_mult, 1.0) for c, s in DEFAULT_SCALES.items()
    }
    payload = run_perf(
        workloads=workloads,
        scales=scales,
        seed=args.seed,
        rounds=args.rounds,
        include_reference=not args.no_reference,
        include_phases=not args.no_phases,
        workers=args.workers,
        executor=args.executor,
    )
    if args.workers > 1:
        eq_problems = check_parallel_equivalence(payload)
        if eq_problems:
            for problem in eq_problems:
                print(f"PARALLEL MISMATCH: {problem}", file=sys.stderr)
            return 1
        print(f"parallel equivalence at --workers {args.workers}: OK")
    if "summary" in payload:
        print(
            f"geomean speedup {payload['summary']['geomean_speedup']:.2f}x "
            f"(min {payload['summary']['min_speedup']:.2f}x)"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        problems = check_against_baseline(payload, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"perf check vs {args.check}: OK (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

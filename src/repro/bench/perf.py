"""Perf regression bench: interleaved fast-vs-reference route_all timing.

Measures the router's end-to-end wall time on scaled paper workloads with
observability **off** (the production configuration), comparing the
flat-index fast A* path against the dict-based reference implementation,
and the guidance-pruned fast path against the unguided one. Rounds are
interleaved — reference, fast, guided, … — so thermal drift and
background noise hit all modes equally, and the per-mode minimum over
rounds is reported (the least-noise estimate of true cost).

Results land in ``BENCH_perf.json``::

    python -m repro.bench.perf --out BENCH_perf.json

and a committed baseline gates regressions in CI::

    python -m repro.bench.perf --workloads Test1 --rounds 2 \\
        --check BENCH_perf.json --tolerance 0.30

The check compares *speedup ratios* (reference time / fast time — end to
end and per core-engine phase), not absolute wall times, so a baseline
recorded on one machine is meaningful on any runner: the ratio cancels
machine speed, and the tolerance absorbs runner noise.

The ``reference`` mode pins both slow paths — the dict-based A* *and*
the object-per-edge constraint-graph/coloring/commit core — while every
other mode runs the vectorized SoA core, so the headline speedup is the
full old-vs-new A/B and ``core_phase_speedup`` isolates the core
engine's share (graph+flip+commit) of it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import os

from .. import obs
from ..obs.export import phase_totals
from ..obs.provenance import collect_provenance
from ..router import SadpRouter
from ..router.kernel import HAVE_NUMBA, kernel_backend_name
from .workloads import (
    FULL_TIER_SCALES,
    FULL_TIER_WORKLOADS,
    generate_benchmark,
    spec_by_name,
)

#: Schema of one tier's flat payload (what :func:`run_perf` returns).
SCHEMA = "repro-bench-perf/1"

#: Schema of the tiered ``BENCH_perf.json`` envelope: ``{"tiers":
#: {"quick": <flat payload>, "full": <flat payload>}}`` plus hoisted
#: host/provenance. :func:`iter_tier_payloads` normalises both shapes.
SCHEMA_TIERED = "repro-bench-perf/2"

#: Workload scales: chosen so a full default run finishes in a couple of
#: minutes while Test5 is large enough for a stable speedup estimate.
DEFAULT_SCALES: Dict[str, float] = {
    "Test1": 0.20,
    "Test2": 0.15,
    "Test3": 0.15,
    "Test5": 0.12,
    "Test6": 0.20,
}

#: The bench samples the paper's suite at both ends: the fixed-pin family
#: at three sizes (Test1-Test3 small/mid, Test5 large) plus the
#: multi-candidate variant Test6, whose many tiny searches exercise the
#: guidance size gate rather than the guided path.
DEFAULT_WORKLOADS = ("Test1", "Test2", "Test3", "Test5", "Test6")

#: Bench modes and the router configuration each one measures.
#: ``fast`` is the unguided flat-array path (the guidance-off side of the
#: A/B); ``guided`` enables the future-cost corridor maps; ``kernel``
#: runs the same guided configuration through the compiled search kernel
#: (interpreted fallback when numba is absent — still bit-identical, so
#: the equivalence gate holds either way). Every other mode pins
#: ``kernel="python"`` so a numba install never leaks into their timing.
#: ``core`` picks the constraint-graph/coloring/commit engine:
#: ``reference`` keeps the object-per-edge implementation so the A/B
#: measures the vectorized SoA engine (everything else) against it;
#: :func:`check_core_equivalence` gates their bit-identity.
_MODE_CONFIG = {
    "reference": dict(
        use_reference=True, guidance="off", kernel="python", core="object"
    ),
    "fast": dict(
        use_reference=False, guidance="off", kernel="python", core="vector"
    ),
    "guided": dict(
        use_reference=False, guidance="auto", kernel="python", core="vector"
    ),
    "parallel": dict(
        use_reference=False, guidance="auto", kernel="python", core="vector"
    ),
    "kernel": dict(
        use_reference=False, guidance="auto", kernel="numba", core="vector"
    ),
}

#: Phases owned by the core engine (the A* search phase is shared).
CORE_PHASES = ("graph", "flip", "commit")

#: Per-phase speedup ratios are only recorded when both sides spent at
#: least this long in the phase — below it the ratio is timer noise.
MIN_PHASE_S = 0.01


@dataclass
class _Run:
    """Raw counters of one fresh route_all."""

    wall_s: float
    expansions: int
    searches: int
    guided_searches: int
    guidance_builds: int
    routability_pct: float
    overlay_units: float
    parallel_stats: Optional[dict]


@dataclass
class ModeSample:
    """One mode's best-of-rounds measurement (plus its phase split)."""

    route_all_s: float
    rounds_s: List[float]
    expansions: int
    searches: int
    routability_pct: float
    overlay_units: float
    guided_searches: int = 0
    guidance_builds: int = 0
    #: Per-phase runtime split of this mode's own instrumented run —
    #: every sample carries its own phases (the split used to be
    #: emitted once per workload, which misattributed the reference
    #: and parallel profiles to the fast path).
    phases: Dict[str, float] = field(default_factory=dict)
    phases_route_all_s: float = 0.0
    #: Which backend actually executed a ``kernel``-mode sample:
    #: ``"numba"`` (compiled) or ``"interpreted"`` (numba absent, same
    #: code run by CPython). None for every other mode.
    kernel_backend: Optional[str] = None

    @property
    def expansions_per_s(self) -> float:
        return self.expansions / self.route_all_s if self.route_all_s > 0 else 0.0

    @property
    def expansions_per_search(self) -> float:
        return self.expansions / self.searches if self.searches else 0.0

    def to_dict(self) -> dict:
        out = {
            "route_all_s": round(self.route_all_s, 6),
            "rounds_s": [round(r, 6) for r in self.rounds_s],
            "expansions": self.expansions,
            "searches": self.searches,
            "expansions_per_s": round(self.expansions_per_s, 1),
            "expansions_per_search": round(self.expansions_per_search, 1),
            "routability_pct": round(self.routability_pct, 2),
            "overlay_units": self.overlay_units,
        }
        if self.guided_searches or self.guidance_builds:
            out["guided_searches"] = self.guided_searches
            out["guidance_builds"] = self.guidance_builds
        if self.phases:
            out["phases_s"] = {k: round(v, 6) for k, v in self.phases.items()}
            out["phases_route_all_s"] = round(self.phases_route_all_s, 6)
        if self.kernel_backend is not None:
            out["kernel_backend"] = self.kernel_backend
        return out


@dataclass
class WorkloadResult:
    circuit: str
    scale: float
    seed: int
    fast: ModeSample
    reference: Optional[ModeSample] = None
    guided: Optional[ModeSample] = None
    kernel: Optional[ModeSample] = None
    parallel: Optional[ModeSample] = None
    parallel_stats: Optional[dict] = None
    #: Dry-run ``workers="auto"`` rationale for this instance — answers
    #: "what would auto do here, and why" from the payload alone, even
    #: when the timed runs used explicit workers.
    auto_probe: Optional[dict] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.reference is None or self.fast.route_all_s <= 0:
            return None
        return self.reference.route_all_s / self.fast.route_all_s

    @property
    def guidance_speedup(self) -> Optional[float]:
        if self.guided is None or self.guided.route_all_s <= 0:
            return None
        return self.fast.route_all_s / self.guided.route_all_s

    @property
    def expansion_reduction(self) -> Optional[float]:
        """Unguided / guided expansion count (>= 1.0 by construction)."""
        if self.guided is None or self.guided.expansions <= 0:
            return None
        return self.fast.expansions / self.guided.expansions

    @property
    def kernel_speedup(self) -> Optional[float]:
        """Interpreted fast path over compiled kernel, same guidance
        config (the ``guided`` sample when present, ``fast`` otherwise).

        None on the interpreted fallback: that backend times CPython
        running kernel-shaped code, so its ratio says nothing about
        compilation and would pollute speedup trend lines recorded on
        numba-free hosts (the bit-identity gate still runs there).
        """
        if self.kernel is None or self.kernel.route_all_s <= 0:
            return None
        if self.kernel.kernel_backend == "interpreted":
            return None
        base = self.guided if self.guided is not None else self.fast
        return base.route_all_s / self.kernel.route_all_s

    @property
    def kernel_vs_reference(self) -> Optional[float]:
        if (
            self.kernel is None
            or self.reference is None
            or self.kernel.route_all_s <= 0
            or self.kernel.kernel_backend == "interpreted"
        ):
            return None
        return self.reference.route_all_s / self.kernel.route_all_s

    @property
    def core_phase_speedup(self) -> Optional[float]:
        """Combined graph+flip+commit time, object core over vector core.

        Both samples carry their own instrumented phase split; the ratio
        isolates the core-engine phases from the (shared) A* search, so
        it moves only when the constraint-graph/coloring/commit engine
        itself gets faster or slower.
        """
        if self.reference is None or not self.reference.phases:
            return None
        if not self.fast.phases:
            return None
        ref = sum(self.reference.phases.get(p, 0.0) for p in CORE_PHASES)
        fast = sum(self.fast.phases.get(p, 0.0) for p in CORE_PHASES)
        if fast <= 0:
            return None
        return ref / fast

    @property
    def phase_speedups(self) -> Optional[Dict[str, float]]:
        """Per-phase reference/fast ratios for the core-engine phases.

        Phases where either side spent under :data:`MIN_PHASE_S` are
        omitted — a 2 ms phase ratio is timer noise, and the baseline
        gate must not fail CI over it.
        """
        if self.reference is None or not self.reference.phases:
            return None
        if not self.fast.phases:
            return None
        out: Dict[str, float] = {}
        for phase in CORE_PHASES:
            ref = self.reference.phases.get(phase, 0.0)
            fast = self.fast.phases.get(phase, 0.0)
            if ref >= MIN_PHASE_S and fast >= MIN_PHASE_S:
                out[phase] = round(ref / fast, 4)
        return out or None

    @property
    def parallel_speedup(self) -> Optional[float]:
        if self.parallel is None or self.parallel.route_all_s <= 0:
            return None
        return self.fast.route_all_s / self.parallel.route_all_s

    def to_dict(self) -> dict:
        out = {
            "name": self.circuit,
            "circuit": self.circuit,
            "scale": self.scale,
            "seed": self.seed,
            "fast": self.fast.to_dict(),
        }
        if self.reference is not None:
            out["reference"] = self.reference.to_dict()
            out["speedup"] = round(self.speedup, 4)
            out["walltime_reduction_pct"] = round(
                (1.0 - self.fast.route_all_s / self.reference.route_all_s) * 100.0, 2
            )
            if self.core_phase_speedup is not None:
                out["core_phase_speedup"] = round(self.core_phase_speedup, 4)
            if self.phase_speedups:
                out["phase_speedups"] = self.phase_speedups
        if self.guided is not None:
            out["guided"] = self.guided.to_dict()
            out["guidance_speedup"] = round(self.guidance_speedup, 4)
            out["expansion_reduction"] = round(self.expansion_reduction, 4)
        if self.kernel is not None:
            out["kernel"] = self.kernel.to_dict()
            # Explicit null (not absent) on the interpreted fallback: a
            # consumer diffing payloads over time sees "not measurable
            # here" instead of a silently missing series.
            out["kernel_speedup"] = (
                round(self.kernel_speedup, 4)
                if self.kernel_speedup is not None
                else None
            )
            if self.kernel_vs_reference is not None:
                out["kernel_vs_reference"] = round(self.kernel_vs_reference, 4)
        if self.parallel is not None:
            out["parallel"] = self.parallel.to_dict()
            out["parallel_speedup"] = round(self.parallel_speedup, 4)
            if self.parallel_stats is not None:
                out["parallel_stats"] = self.parallel_stats
        if self.auto_probe is not None:
            out["auto_decision_probe"] = self.auto_probe
        return out


def _make_router(
    circuit: str,
    scale: float,
    seed: int,
    mode: str,
    workers: Union[int, str] = 1,
    executor: str = "process",
    shard: str = "auto",
) -> SadpRouter:
    """A fresh router instance configured for one bench mode."""
    spec = spec_by_name(circuit)
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    cfg = _MODE_CONFIG[mode]
    router = SadpRouter(
        grid,
        nets,
        workers=workers if mode == "parallel" else 1,
        executor=executor,
        guidance=cfg["guidance"],
        shard=shard if mode == "parallel" else "auto",
        kernel=cfg["kernel"],
        core=cfg["core"],
    )
    router.engine.use_reference = cfg["use_reference"]
    return router


def _run_once(
    circuit: str,
    scale: float,
    seed: int,
    mode: str,
    workers: Union[int, str] = 1,
    executor: str = "process",
    shard: str = "auto",
) -> _Run:
    """One fresh instance + route_all with the mode's configuration."""
    router = _make_router(circuit, scale, seed, mode, workers, executor, shard)
    t0 = time.perf_counter()
    result = router.route_all()
    wall = time.perf_counter() - t0
    stats = (
        router.parallel_stats.to_dict()
        if router.parallel_stats is not None
        else None
    )
    return _Run(
        wall_s=wall,
        expansions=router.engine.total_expansions,
        searches=router.engine.total_searches,
        guided_searches=router.engine.total_guided_searches,
        guidance_builds=router.engine.total_guidance_builds,
        routability_pct=result.routability * 100.0,
        overlay_units=result.overlay_units,
        parallel_stats=stats,
    )


def _phase_split(
    circuit: str,
    scale: float,
    seed: int,
    mode: str = "fast",
    workers: Union[int, str] = 1,
    executor: str = "process",
    shard: str = "auto",
) -> Tuple[Dict[str, float], float]:
    """One instrumented (untimed-for-comparison) run for the phase split.

    Returns (phase seconds, route_all seconds of that same run). The
    buckets are disjoint — ``commit`` is measured as the commit span's
    *self* time — so their sum never exceeds the route_all total. For
    the ``parallel`` mode the split covers main-process spans only
    (worker processes do not propagate tracer state).
    """
    router = _make_router(circuit, scale, seed, mode, workers, executor, shard)
    with obs.session():
        before = dict(phase_totals())
        router.route_all()
        after = phase_totals()
        ob = obs.get_active()
        route_all_s = (
            ob.tracer.totals_by_name().get("route_all", 0.0)
            if ob is not None
            else 0.0
        )
    phases = {
        phase: after.get(phase, 0.0) - before.get(phase, 0.0)
        for phase in ("search", "graph", "flip", "commit")
    }
    return phases, route_all_s


def _wants_parallel(workers: Union[int, str]) -> bool:
    return workers == "auto" or (isinstance(workers, int) and workers > 1)


def _probe_auto_decision(
    circuit: str, scale: float, seed: int, shard: str = "auto"
) -> Optional[dict]:
    """Dry-run the ``workers="auto"`` resolver on a fresh instance.

    Pure planning (shard geometry + batch-scheduler scan, no routing);
    the returned rationale dict is what ``_resolve_workers`` would log
    for this instance on *this host* — including the host's core count,
    so a ``"serial"`` probe on a one-core box is distinguishable from a
    genuinely unshardable workload.
    """
    spec = spec_by_name(circuit)
    grid, nets = generate_benchmark(spec, scale=scale, seed=seed)
    router = SadpRouter(grid, nets, workers="auto", shard=shard)
    ordered = list(router.netlist.ordered_for_routing(router.order))
    router._resolve_workers(ordered)
    return router._auto_rationale


def run_perf(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scales: Optional[Dict[str, float]] = None,
    seed: int = 2014,
    rounds: int = 3,
    include_reference: bool = True,
    include_guidance: bool = True,
    include_kernel: bool = False,
    include_phases: bool = True,
    workers: Union[int, str] = 1,
    executor: str = "process",
    shard: str = "auto",
    include_probe: bool = False,
    verbose: bool = True,
) -> dict:
    """Run the perf bench; returns one tier's flat payload.

    With ``include_guidance`` each workload runs a guidance-on/off A/B
    of the fast path (``guided`` sample, ``guidance_speedup``,
    ``expansion_reduction``); :func:`check_guidance_equivalence` gates
    that the guided run produced identical metrics from strictly fewer
    (or equal) expansions. With ``include_kernel`` each workload also
    times the compiled search kernel in the guided configuration
    (``kernel`` sample, tagged with the executing backend);
    :func:`check_kernel_equivalence` gates its bit-identity. With ``workers`` > 1 or ``"auto"`` each
    workload also runs through the parallel routing engine — ``shard``
    picks region sharding ("on"/"auto") vs the batch scheduler ("off")
    — and the payload grows ``parallel`` / ``parallel_speedup`` /
    ``parallel_stats``; :func:`check_parallel_equivalence` gates those.
    ``include_probe`` additionally records each workload's
    ``auto_decision_probe`` (the dry-run ``workers="auto"`` rationale).
    """
    if obs.is_enabled():
        raise RuntimeError(
            "perf bench must run with observability off (it measures the "
            "production configuration); call obs.disable() first"
        )
    scales = {**DEFAULT_SCALES, **(scales or {})}
    use_parallel = _wants_parallel(workers)
    results: List[WorkloadResult] = []
    for circuit in workloads:
        scale = scales.get(circuit, 0.15)
        modes = ["fast"]
        if include_reference:
            modes.insert(0, "reference")
        if include_guidance:
            modes.append("guided")
        if include_kernel:
            modes.append("kernel")
        if use_parallel:
            modes.append("parallel")
        samples: Dict[str, List[_Run]] = {m: [] for m in modes}
        for rnd in range(rounds):
            # Interleaved so all modes see the same machine drift, and
            # rotated so no mode always occupies the same slot of the
            # round — a speed trend within a round would otherwise bias
            # whichever mode consistently ran first (or last).
            for mode in modes[rnd % len(modes) :] + modes[: rnd % len(modes)]:
                samples[mode].append(
                    _run_once(
                        circuit, scale, seed, mode, workers, executor, shard
                    )
                )

        def best(mode: str) -> ModeSample:
            runs = samples[mode]
            idx = min(range(len(runs)), key=lambda i: runs[i].wall_s)
            run = runs[idx]
            sample = ModeSample(
                route_all_s=run.wall_s,
                rounds_s=[r.wall_s for r in runs],
                expansions=run.expansions,
                searches=run.searches,
                routability_pct=run.routability_pct,
                overlay_units=run.overlay_units,
                guided_searches=run.guided_searches,
                guidance_builds=run.guidance_builds,
            )
            if mode == "kernel":
                sample.kernel_backend = kernel_backend_name()
            if include_phases:
                sample.phases, sample.phases_route_all_s = _phase_split(
                    circuit, scale, seed, mode, workers, executor, shard
                )
            return sample

        wl = WorkloadResult(
            circuit=circuit,
            scale=scale,
            seed=seed,
            fast=best("fast"),
            reference=best("reference") if include_reference else None,
            guided=best("guided") if include_guidance else None,
            kernel=best("kernel") if include_kernel else None,
        )
        if use_parallel:
            wl.parallel = best("parallel")
            runs = samples["parallel"]
            idx = min(range(len(runs)), key=lambda i: runs[i].wall_s)
            wl.parallel_stats = runs[idx].parallel_stats
        if include_probe:
            wl.auto_probe = _probe_auto_decision(circuit, scale, seed, shard)
        results.append(wl)
        if verbose:
            line = (
                f"{circuit:7s} scale {scale:.2f}: fast {wl.fast.route_all_s:.3f}s"
                f" ({wl.fast.expansions_per_s:,.0f} exp/s)"
            )
            if wl.reference is not None:
                line += (
                    f", reference {wl.reference.route_all_s:.3f}s"
                    f" -> speedup {wl.speedup:.2f}x"
                )
            if wl.guided is not None:
                line += (
                    f", guided {wl.guided.route_all_s:.3f}s"
                    f" -> {wl.guidance_speedup:.2f}x"
                    f" ({wl.expansion_reduction:.1f}x fewer expansions)"
                )
            if wl.kernel is not None:
                kern_ratio = (
                    f"{wl.kernel_speedup:.2f}x"
                    if wl.kernel_speedup is not None
                    else "n/a (interpreted)"
                )
                line += (
                    f", kernel[{wl.kernel.kernel_backend}] "
                    f"{wl.kernel.route_all_s:.3f}s"
                    f" -> {kern_ratio}"
                )
            if wl.parallel is not None:
                line += (
                    f", parallel({workers}w) {wl.parallel.route_all_s:.3f}s"
                    f" -> {wl.parallel_speedup:.2f}x"
                )
            print(line)
    payload = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            # Parallel samples are meaningless without knowing how many
            # cores the box had — a 1.0x "speedup" on one core is the
            # expected result, not a regression.
            "cpus": os.cpu_count() or 1,
        },
        "provenance": collect_provenance(),
        "config": {
            "rounds": rounds,
            "seed": seed,
            "workloads": list(workloads),
            "scales": {c: scales.get(c, 0.15) for c in workloads},
            "observability": "off",
            "timing": "interleaved, best-of-rounds",
            "workers": workers,
            "executor": executor,
            "shard": shard,
            # Repeated per tier (the tiered envelope hoists ``host`` to
            # the top) so a quick-tier fragment read on its own still
            # says how many cores the box had — parallel numbers are
            # uninterpretable without it.
            "host_cpus": os.cpu_count() or 1,
        },
        "workloads": [wl.to_dict() for wl in results],
    }
    summary: Dict[str, object] = {}

    def _geo(values: List[float]) -> float:
        product = 1.0
        for v in values:
            product *= v
        return product ** (1.0 / len(values))

    speedups = [wl.speedup for wl in results if wl.speedup is not None]
    if speedups:
        summary["geomean_speedup"] = round(_geo(speedups), 4)
        summary["min_speedup"] = round(min(speedups), 4)
    cspeedups = [
        wl.core_phase_speedup
        for wl in results
        if wl.core_phase_speedup is not None
    ]
    if cspeedups:
        summary["geomean_core_phase_speedup"] = round(_geo(cspeedups), 4)
        summary["min_core_phase_speedup"] = round(min(cspeedups), 4)
    gspeedups = [
        wl.guidance_speedup for wl in results if wl.guidance_speedup is not None
    ]
    if gspeedups:
        summary["geomean_guidance_speedup"] = round(_geo(gspeedups), 4)
        summary["min_guidance_speedup"] = round(min(gspeedups), 4)
        reductions = [
            wl.expansion_reduction
            for wl in results
            if wl.expansion_reduction is not None
        ]
        summary["geomean_expansion_reduction"] = round(_geo(reductions), 4)
    if any(wl.kernel is not None for wl in results):
        # Always name the backend that ran; the speedup aggregates join
        # only when it was the compiled one (interpreted ratios are
        # nulled per workload and would poison a geomean).
        summary["kernel_backend"] = kernel_backend_name()
    kspeedups = [
        wl.kernel_speedup for wl in results if wl.kernel_speedup is not None
    ]
    if kspeedups:
        summary["geomean_kernel_speedup"] = round(_geo(kspeedups), 4)
        summary["min_kernel_speedup"] = round(min(kspeedups), 4)
        kvr = [
            wl.kernel_vs_reference
            for wl in results
            if wl.kernel_vs_reference is not None
        ]
        if kvr:
            summary["geomean_kernel_vs_reference"] = round(_geo(kvr), 4)
    pspeedups = [
        wl.parallel_speedup for wl in results if wl.parallel_speedup is not None
    ]
    if pspeedups:
        summary["geomean_parallel_speedup"] = round(_geo(pspeedups), 4)
        summary["min_parallel_speedup"] = round(min(pspeedups), 4)
        off_fracs = [
            (wl.parallel_stats or {}).get("off_process_fraction")
            for wl in results
        ]
        off_fracs = [f for f in off_fracs if f is not None]
        if off_fracs:
            summary["max_off_process_fraction"] = round(max(off_fracs), 4)
    if summary:
        payload["summary"] = summary
    return payload


def build_tiered_payload(tiers: Dict[str, dict]) -> dict:
    """Assemble the v2 ``BENCH_perf.json`` envelope from tier payloads.

    Host and provenance are identical across tiers of one invocation, so
    they are hoisted to the top level and dropped from the per-tier
    payloads (each tier keeps its own ``config``, ``workloads`` and
    ``summary``).
    """
    out: Dict[str, object] = {"schema": SCHEMA_TIERED, "tiers": {}}
    for name, tier in tiers.items():
        tier = dict(tier)
        out.setdefault("host", tier.pop("host", {}))
        out.setdefault("provenance", tier.pop("provenance", {}))
        tier.pop("host", None)
        tier.pop("provenance", None)
        tier.pop("schema", None)
        out["tiers"][name] = tier  # type: ignore[index]
    return out


def iter_tier_payloads(payload: dict):
    """Yield ``(tier_name, flat_payload)`` for either schema version.

    A v1 flat payload (or a bare ``{"workloads": [...]}`` fragment) is
    treated as a single ``"quick"`` tier, so every consumer — the
    equivalence gates, the phase table, the ledger recorder, the
    baseline check — reads old and new files alike.
    """
    if "tiers" in payload:
        yield from payload["tiers"].items()
    else:
        yield "quick", payload


def render_phase_table(payload: dict) -> str:
    """Text table of the per-variant phase splits of a bench payload.

    One row per (workload, variant): each sample now carries its own
    ``phases_s``, so the table shows where *that* configuration spends
    its time instead of reusing the sequential fast split for all of
    them.
    """
    phases = ("search", "graph", "flip", "commit")
    header = (
        f"{'tier':6s} {'circuit':9s} {'variant':9s} "
        + " ".join(f"{p + '_s':>9s}" for p in phases)
        + f" {'other_s':>9s} {'total_s':>9s}"
    )
    lines = [header, "-" * len(header)]
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            for variant in ("reference", "fast", "guided", "kernel", "parallel"):
                sample = wl.get(variant)
                if not sample or "phases_s" not in sample:
                    continue
                split = sample["phases_s"]
                total = sample.get("phases_route_all_s", 0.0)
                other = max(0.0, total - sum(split.values()))
                lines.append(
                    f"{tier:6s} {wl['circuit']:9s} {variant:9s} "
                    + " ".join(f"{split.get(p, 0.0):9.3f}" for p in phases)
                    + f" {other:9.3f} {total:9.3f}"
                )
    return "\n".join(lines)


def check_parallel_equivalence(payload: dict) -> List[str]:
    """Determinism gate: parallel runs must match sequential exactly.

    The batch scheduler guarantees bit-identical results for any worker
    count; this check enforces the observable half of that guarantee —
    identical routability and overlay units between the ``fast``
    (sequential) and ``parallel`` samples of every workload. Returns a
    list of problems (empty = pass).
    """
    problems: List[str] = []
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            par = wl.get("parallel")
            if par is None:
                continue
            fast = wl["fast"]
            if par["routability_pct"] != fast["routability_pct"]:
                problems.append(
                    f"{tier}/{wl['circuit']}: parallel routability "
                    f"{par['routability_pct']} != sequential "
                    f"{fast['routability_pct']}"
                )
            if par["overlay_units"] != fast["overlay_units"]:
                problems.append(
                    f"{tier}/{wl['circuit']}: parallel overlay "
                    f"{par['overlay_units']} != sequential "
                    f"{fast['overlay_units']}"
                )
    return problems


def check_guidance_equivalence(payload: dict) -> List[str]:
    """Correctness gate for the guidance A/B.

    Corridor pruning is designed to be invisible: the guided fast path
    must commit the same routes (identical routability and overlay
    units, same search count) while expanding no more nodes than the
    unguided one. Returns a list of problems (empty = pass).
    """
    problems: List[str] = []
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            guided = wl.get("guided")
            if guided is None:
                continue
            fast = wl["fast"]
            for metric in ("routability_pct", "overlay_units", "searches"):
                if guided[metric] != fast[metric]:
                    problems.append(
                        f"{tier}/{wl['circuit']}: guided {metric} "
                        f"{guided[metric]} != unguided {fast[metric]}"
                    )
            if guided["expansions"] > fast["expansions"]:
                problems.append(
                    f"{tier}/{wl['circuit']}: guided expansions "
                    f"{guided['expansions']} > unguided {fast['expansions']} "
                    "(pruning must never add work)"
                )
    return problems


def check_kernel_equivalence(payload: dict) -> List[str]:
    """Correctness gate for the compiled kernel.

    The kernel runs the same guided configuration as the ``guided``
    sample and must be bit-identical to it — same committed routes
    (routability, overlay units), same search/expansion counts, same
    guidance activity. When only the unguided ``fast`` sample is present
    the comparison drops to the metrics both configurations share.
    Returns a list of problems (empty = pass).
    """
    problems: List[str] = []
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            kern = wl.get("kernel")
            if kern is None:
                continue
            base = wl.get("guided")
            if base is not None:
                metrics = (
                    "routability_pct",
                    "overlay_units",
                    "searches",
                    "expansions",
                    "guided_searches",
                    "guidance_builds",
                )
                base_name = "guided"
            else:
                base = wl["fast"]
                metrics = ("routability_pct", "overlay_units", "searches")
                base_name = "fast"
            for metric in metrics:
                if kern.get(metric, 0) != base.get(metric, 0):
                    problems.append(
                        f"{tier}/{wl['circuit']}: kernel {metric} "
                        f"{kern.get(metric, 0)} != {base_name} "
                        f"{base.get(metric, 0)}"
                    )
    return problems


def check_core_equivalence(payload: dict) -> List[str]:
    """Bit-identity gate for the vectorized core engine.

    The ``reference`` sample runs the object-per-edge constraint
    graph/coloring/commit engine (``core="object"``); every other mode
    runs the SoA vector engine. The rewrite is a pure representation
    change, so the committed result must be exactly identical — any
    routability or overlay drift means the vector engine changed a
    decision, not just its speed. Returns problems (empty = pass).
    """
    problems: List[str] = []
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            ref = wl.get("reference")
            if ref is None:
                continue
            fast = wl["fast"]
            for metric in ("routability_pct", "overlay_units", "searches"):
                if ref.get(metric) != fast.get(metric):
                    problems.append(
                        f"{tier}/{wl['circuit']}: vector-core {metric} "
                        f"{fast.get(metric)} != object-core reference "
                        f"{ref.get(metric)}"
                    )
    return problems


def check_against_baseline(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> List[str]:
    """Regression gate: compare speedup ratios per workload.

    A workload regresses when its measured reference/fast speedup —
    end-to-end, or any per-phase core ratio both runs recorded in
    ``phase_speedups`` (graph, flip, commit) — falls more than
    ``tolerance`` (fractional) below the baseline's. Ratios are
    machine-portable; the tolerance absorbs runner noise. Returns a
    list of problems (empty = pass). Workloads and phases missing from
    either side are skipped — the gate checks what both runs measured.
    """
    problems: List[str] = []
    base_tiers = dict(iter_tier_payloads(baseline))
    checked = 0
    for tier, flat in iter_tier_payloads(current):
        base_flat = base_tiers.get(tier)
        if base_flat is None:
            continue
        base_by_circuit = {
            wl["circuit"]: wl for wl in base_flat.get("workloads", [])
        }
        for wl in flat.get("workloads", []):
            base = base_by_circuit.get(wl["circuit"])
            if base is None or "speedup" not in wl or "speedup" not in base:
                continue
            checked += 1
            floor = base["speedup"] * (1.0 - tolerance)
            if wl["speedup"] < floor:
                problems.append(
                    f"{tier}/{wl['circuit']}: speedup {wl['speedup']:.2f}x "
                    f"is below {floor:.2f}x (baseline {base['speedup']:.2f}x "
                    f"minus {tolerance:.0%} tolerance)"
                )
            base_phases = base.get("phase_speedups") or {}
            for phase, ratio in (wl.get("phase_speedups") or {}).items():
                base_ratio = base_phases.get(phase)
                if base_ratio is None:
                    continue
                phase_floor = base_ratio * (1.0 - tolerance)
                if ratio < phase_floor:
                    problems.append(
                        f"{tier}/{wl['circuit']}: {phase}-phase speedup "
                        f"{ratio:.2f}x is below {phase_floor:.2f}x "
                        f"(baseline {base_ratio:.2f}x minus "
                        f"{tolerance:.0%} tolerance)"
                    )
    if checked == 0:
        problems.append("no overlapping workloads between run and baseline")
    return problems


def record_to_ledger(
    payload: dict,
    ledger_dir: Optional[str] = None,
    gate: bool = False,
) -> List[str]:
    """Append each workload's fast sample to the run ledger.

    With ``gate=True``, every new record is first compared (via
    :func:`~repro.obs.ledger.diff_runs`) against the most recent prior
    ``bench-perf`` record with the same workload and config hash; a
    regression verdict becomes a problem string. Returns the list of
    problems (empty = pass, or nothing to compare against yet).
    """
    from ..obs.ledger import Ledger, diff_runs, make_record

    problems: List[str] = []
    with Ledger(ledger_dir) as ledger:
        for _tier, flat in iter_tier_payloads(payload):
            config_base = dict(flat.get("config", {}))
            config_base.pop("workloads", None)
            config_base.pop("scales", None)
            for wl in flat.get("workloads", []):
                fast = wl["fast"]
                workload = f"{wl['circuit']}@{wl['scale']}"
                record = make_record(
                    "bench-perf",
                    workload,
                    {**config_base, "scale": wl["scale"], "seed": wl["seed"]},
                    outcome="ok",
                    wall_s=fast["route_all_s"],
                    phases=dict(fast.get("phases_s", {})),
                    counters={
                        "astar_nodes_expanded_total": float(fast["expansions"]),
                        "astar_searches_total": float(fast["searches"]),
                    },
                    parallel_decision=(wl.get("parallel_stats") or {}).get(
                        "decision_trace"
                    ),
                    meta={
                        "speedup": wl.get("speedup"),
                        "guidance_speedup": wl.get("guidance_speedup"),
                        "parallel_speedup": wl.get("parallel_speedup"),
                    },
                )
                baseline = (
                    ledger.latest(
                        workload=workload,
                        config_hash=record.config_hash,
                        command="bench-perf",
                        outcome="ok",
                    )
                    if gate
                    else None
                )
                ledger.record(record)
                if baseline is not None:
                    diff = diff_runs(baseline, record)
                    if diff.verdict == "regression":
                        rows = ", ".join(
                            f"{row.section}:{row.name} "
                            f"{row.a:.4g} -> {row.b:.4g}"
                            for row in diff.regressions
                        )
                        problems.append(
                            f"{workload}: regression vs "
                            f"{baseline.run_id}: {rows}"
                        )
    return problems


def check_full_tier_engaged(payload: dict) -> List[str]:
    """Gate: the full tier must engage (or predict) a non-serial mode.

    A workload counts as engaged when its timed parallel run used the
    sharded mode or recorded a non-serial auto decision, *or* when its
    ``auto_decision_probe`` says ``workers="auto"`` would pick one. The
    probe matters on explicit-worker runs (auto fields stay empty) and
    keeps the gate meaningful: a full tier where every probe says
    "serial" means the sharding heuristics regressed. Returns problems
    (empty = at least one workload engaged).
    """
    tiers = dict(iter_tier_payloads(payload))
    flat = tiers.get("full")
    if flat is None:
        return ["no full tier in payload (run with --tier full or both)"]
    engaged = []
    for wl in flat.get("workloads", []):
        stats = wl.get("parallel_stats") or {}
        probe = wl.get("auto_decision_probe") or {}
        if (
            stats.get("mode") == "sharded"
            or stats.get("auto_decision") not in (None, "", "serial")
            or probe.get("decision") not in (None, "serial")
        ):
            engaged.append(wl["circuit"])
    if not engaged:
        return [
            "every full-tier workload resolved (and would resolve) to "
            "serial — sharding never engages"
        ]
    return []


def full_tier_skip_reason(payload: dict) -> Optional[str]:
    """Why the full tier's parallel gates should be *skipped*, if at all.

    On a one-core host every auto decision is "serial — single-core
    host" by construction: failing ``--require-engaged`` or a parallel
    speedup floor there reports the runner's hardware, not a sharding
    regression. When every full-tier workload's decision (timed trace
    or dry-run probe) gives that reason, the gates are skipped with an
    explicit marker instead. Any other reason returns None — the gates
    run and judge as usual.
    """
    tiers = dict(iter_tier_payloads(payload))
    flat = tiers.get("full")
    if flat is None:
        return None
    reasons = []
    for wl in flat.get("workloads", []):
        trace = (wl.get("parallel_stats") or {}).get("decision_trace") or {}
        probe = wl.get("auto_decision_probe") or {}
        reasons.append(trace.get("reason") or probe.get("reason") or "")
    if reasons and all(r == "single-core host" for r in reasons):
        return "single-core host"
    return None


def _decision_lines(payload: dict) -> List[str]:
    """Human-readable ``--workers auto`` rationale per workload."""
    lines: List[str] = []
    for tier, flat in iter_tier_payloads(payload):
        for wl in flat.get("workloads", []):
            trace = (wl.get("parallel_stats") or {}).get("decision_trace")
            probe = wl.get("auto_decision_probe")
            if trace:
                line = (
                    f"{wl['circuit']}: parallel decision = "
                    f"{trace.get('decision', '?')}"
                    f" — {trace.get('reason', '')}"
                )
                if trace.get("decision") == "sharded" or "shard_nets" in trace:
                    line += (
                        f" (grid {trace.get('shard_shard_grid', '?')},"
                        f" {trace.get('shard_interior_nets', 0)} interior /"
                        f" {trace.get('shard_boundary_nets', 0)} boundary)"
                    )
                else:
                    line += (
                        f" (scanned {trace.get('candidates_scanned', 0)},"
                        f" halo rejects {trace.get('halo_rejects', 0)},"
                        f" {trace.get('multi_net_batches', 0)} multi-net"
                        " batches)"
                    )
                lines.append(line)
            elif probe:
                lines.append(
                    f"{wl['circuit']}: auto would pick "
                    f"{probe.get('decision', '?')} — {probe.get('reason', '')}"
                )
    return lines


def _parse_workers(value: str) -> Union[int, str]:
    if value == "auto":
        return "auto"
    return int(value)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated TestN names",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--scale-mult",
        type=float,
        default=1.0,
        help="multiplier on the per-workload default scales",
    )
    parser.add_argument("--out", default=None, help="write BENCH_perf.json here")
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the reference-path runs (fast-only timing)",
    )
    parser.add_argument(
        "--no-guidance",
        action="store_true",
        help="skip the guidance-on/off A/B runs",
    )
    parser.add_argument(
        "--no-kernel",
        action="store_true",
        help="skip the compiled-kernel rows (and their equivalence gate)",
    )
    parser.add_argument(
        "--no-phases", action="store_true", help="skip the instrumented phase split"
    )
    parser.add_argument(
        "--phase-table",
        action="store_true",
        help="print the per-variant phase table after the run",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help="also time the parallel batch router with N workers (or "
        "'auto' for the scheduler-predicted choice) and gate its results "
        "against the sequential run",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="worker pool kind for the parallel runs",
    )
    parser.add_argument(
        "--shard",
        choices=("auto", "on", "off"),
        default="auto",
        help="region sharding for the parallel runs: auto (engage when "
        "the plan clears the interior-net bar), on (force, minimal 2x2 "
        "tiling if needed), off (PR-3 batch scheduler only)",
    )
    parser.add_argument(
        "--tier",
        choices=("quick", "full", "both"),
        default="quick",
        help="quick = the small default workloads; full = Test5-Test10 "
        "at sharding-relevant scales (fast+parallel only); both = the "
        "two-tier BENCH_perf.json payload",
    )
    parser.add_argument(
        "--full-workers",
        type=_parse_workers,
        default="auto",
        metavar="N",
        help="worker count for the full tier's parallel runs (or 'auto')",
    )
    parser.add_argument(
        "--require-engaged",
        action="store_true",
        help="fail unless at least one full-tier workload engages (or "
        "would engage) a non-serial parallel mode — the 'is sharding "
        "real on this host' gate",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail if the full tier's geomean parallel speedup is below X",
    )
    parser.add_argument(
        "--check",
        default=None,
        help="baseline BENCH_perf.json to gate speedup regressions against",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="append each workload's fast sample to the run ledger",
    )
    parser.add_argument(
        "--ledger-gate",
        action="store_true",
        help="also diff each sample against the latest comparable ledger "
        "record and fail on a regression verdict (implies --ledger)",
    )
    parser.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="run ledger directory (default .repro_runs, or $REPRO_LEDGER_DIR)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup drop vs the baseline (runner noise)",
    )
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    explicit_workloads = args.workloads != ",".join(DEFAULT_WORKLOADS)
    tiers: Dict[str, dict] = {}
    if args.tier in ("quick", "both"):
        scales = {
            c: min(s * args.scale_mult, 1.0) for c, s in DEFAULT_SCALES.items()
        }
        print(f"== quick tier ({', '.join(workloads)}) ==")
        tiers["quick"] = run_perf(
            workloads=workloads,
            scales=scales,
            seed=args.seed,
            rounds=args.rounds,
            include_reference=not args.no_reference,
            include_guidance=not args.no_guidance,
            include_kernel=not args.no_kernel,
            include_phases=not args.no_phases,
            workers=args.workers,
            executor=args.executor,
            shard=args.shard,
        )
    if args.tier in ("full", "both"):
        # The full tier measures the parallel question only — fast vs
        # parallel on sharding-sized instances; reference/guidance A/Bs
        # and the instrumented phase split stay in the quick tier.
        full_workloads = (
            workloads if explicit_workloads else list(FULL_TIER_WORKLOADS)
        )
        full_scales = {
            c: min(s * args.scale_mult, 1.0)
            for c, s in FULL_TIER_SCALES.items()
        }
        print(f"== full tier ({', '.join(full_workloads)}) ==")
        tiers["full"] = run_perf(
            workloads=full_workloads,
            scales=full_scales,
            seed=args.seed,
            rounds=args.rounds,
            include_reference=False,
            include_guidance=False,
            # Full-tier instances are too large for the interpreted
            # fallback; the kernel rows join only when numba compiles.
            include_kernel=HAVE_NUMBA and not args.no_kernel,
            include_phases=False,
            workers=args.full_workers,
            executor=args.executor,
            shard=args.shard,
            include_probe=True,
        )
    payload = build_tiered_payload(tiers)
    if "quick" in tiers and not args.no_reference:
        c_problems = check_core_equivalence(payload)
        if c_problems:
            for problem in c_problems:
                print(f"CORE MISMATCH: {problem}", file=sys.stderr)
            return 1
        print("core engine equivalence (vector vs object reference): OK")
    if "quick" in tiers and not args.no_guidance:
        g_problems = check_guidance_equivalence(payload)
        if g_problems:
            for problem in g_problems:
                print(f"GUIDANCE MISMATCH: {problem}", file=sys.stderr)
            return 1
        print("guidance on/off equivalence: OK")
    if not args.no_kernel:
        k_problems = check_kernel_equivalence(payload)
        if k_problems:
            for problem in k_problems:
                print(f"KERNEL MISMATCH: {problem}", file=sys.stderr)
            return 1
        print(
            f"kernel equivalence vs python fast path: OK "
            f"(backend: {kernel_backend_name()})"
        )
    ran_parallel = ("quick" in tiers and _wants_parallel(args.workers)) or (
        "full" in tiers and _wants_parallel(args.full_workers)
    )
    if ran_parallel:
        eq_problems = check_parallel_equivalence(payload)
        if eq_problems:
            for problem in eq_problems:
                print(f"PARALLEL MISMATCH: {problem}", file=sys.stderr)
            return 1
        print("parallel equivalence vs sequential: OK")
    for line in _decision_lines(payload):
        print(line)
    for tier_name, flat in tiers.items():
        summary = flat.get("summary", {})
        if "geomean_speedup" in summary:
            print(
                f"[{tier_name}] geomean speedup "
                f"{summary['geomean_speedup']:.2f}x "
                f"(min {summary['min_speedup']:.2f}x)"
            )
        if "geomean_core_phase_speedup" in summary:
            print(
                f"[{tier_name}] geomean core-phase speedup "
                f"(graph+flip+commit) "
                f"{summary['geomean_core_phase_speedup']:.2f}x "
                f"(min {summary['min_core_phase_speedup']:.2f}x)"
            )
        if "geomean_guidance_speedup" in summary:
            print(
                f"[{tier_name}] geomean guidance speedup "
                f"{summary['geomean_guidance_speedup']:.2f}x "
                f"(min {summary['min_guidance_speedup']:.2f}x, "
                f"{summary['geomean_expansion_reduction']:.1f}x fewer "
                "expansions)"
            )
        if "geomean_kernel_speedup" in summary:
            print(
                f"[{tier_name}] geomean kernel speedup "
                f"{summary['geomean_kernel_speedup']:.2f}x "
                f"(min {summary['min_kernel_speedup']:.2f}x, "
                f"backend {summary.get('kernel_backend', '?')})"
            )
        if "geomean_parallel_speedup" in summary:
            print(
                f"[{tier_name}] geomean parallel speedup "
                f"{summary['geomean_parallel_speedup']:.2f}x "
                f"(min {summary['min_parallel_speedup']:.2f}x, "
                f"max off-process fraction "
                f"{summary.get('max_off_process_fraction', 0.0):.2f})"
            )
    skip_reason = full_tier_skip_reason(payload)
    if args.require_engaged:
        if skip_reason is not None:
            payload.setdefault("gates", {})["full_tier_engaged"] = {
                "status": "skipped",
                "reason": skip_reason,
            }
            print(f"full tier parallel engagement: SKIPPED ({skip_reason})")
        else:
            problems = check_full_tier_engaged(payload)
            if problems:
                for problem in problems:
                    print(f"NOT ENGAGED: {problem}", file=sys.stderr)
                return 1
            payload.setdefault("gates", {})["full_tier_engaged"] = {
                "status": "ok"
            }
            print("full tier parallel engagement: OK")
    if args.min_parallel_speedup is not None:
        if skip_reason is not None:
            payload.setdefault("gates", {})["min_parallel_speedup"] = {
                "status": "skipped",
                "reason": skip_reason,
            }
            print(
                f"full tier parallel speedup gate: SKIPPED ({skip_reason})"
            )
        else:
            geo = tiers.get("full", {}).get("summary", {}).get(
                "geomean_parallel_speedup"
            )
            if geo is None or geo < args.min_parallel_speedup:
                print(
                    f"PARALLEL SPEEDUP: full-tier geomean "
                    f"{geo if geo is not None else 'n/a'} is below the "
                    f"required {args.min_parallel_speedup}",
                    file=sys.stderr,
                )
                return 1
            payload.setdefault("gates", {})["min_parallel_speedup"] = {
                "status": "ok"
            }
            print(
                f"full tier geomean parallel speedup {geo:.2f}x >= "
                f"{args.min_parallel_speedup}"
            )
    if args.phase_table:
        print(render_phase_table(payload))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        problems = check_against_baseline(payload, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"perf check vs {args.check}: OK (tolerance {args.tolerance:.0%})")
    if args.ledger or args.ledger_gate:
        ledger_problems = record_to_ledger(
            payload, ledger_dir=args.ledger_dir, gate=args.ledger_gate
        )
        if ledger_problems:
            for problem in ledger_problems:
                print(f"LEDGER REGRESSION: {problem}", file=sys.stderr)
            return 1
        gate_note = " (gated vs prior records)" if args.ledger_gate else ""
        recorded = sum(
            len(flat.get("workloads", []))
            for _, flat in iter_tier_payloads(payload)
        )
        print(f"ledger: {recorded} records appended{gate_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Concurrent load harness for the routing service.

``repro bench load`` drives M client threads against a running service
(or an internally-started one) with a deterministic mix of *duplicate*
submissions (one fixed design, repeated — the multi-tenant dedup case)
and *fresh* submissions (distinct seeds — the cold-cache case), then
reports throughput, end-to-end latency percentiles, and the cache-hit
ratio, as text and as machine-readable JSON::

    repro bench load --clients 8 --jobs 32 --duplicates 0.5 --json -

A job counts as a *cache hit* when its route stage did not execute
(status ``hit`` or ``coalesced`` in the job's stage log) — exactly the
"second identical submission does zero routing work" property the
artifact store's single-flight protocol promises.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class LoadReport:
    """Everything one load run measured (JSON-serialisable)."""

    params: Dict[str, Any]
    jobs: int = 0
    ok: int = 0
    failed: int = 0
    cancelled: int = 0
    duration_s: float = 0.0
    throughput_jobs_per_s: float = 0.0
    latency_s: Dict[str, float] = field(default_factory=dict)
    #: Fraction of jobs whose route stage was served from cache.
    cache_hit_ratio: float = 0.0
    #: Stage-level view: cached stages / all stages across all jobs.
    stage_cache_ratio: float = 0.0
    route_stage_runs: int = 0
    duplicate_jobs: int = 0
    fresh_jobs: int = 0
    errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-bench-load/1",
            "params": self.params,
            "jobs": self.jobs,
            "ok": self.ok,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "duration_s": round(self.duration_s, 6),
            "throughput_jobs_per_s": round(self.throughput_jobs_per_s, 4),
            "latency_s": {k: round(v, 6) for k, v in self.latency_s.items()},
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "stage_cache_ratio": round(self.stage_cache_ratio, 4),
            "route_stage_runs": self.route_stage_runs,
            "duplicate_jobs": self.duplicate_jobs,
            "fresh_jobs": self.fresh_jobs,
            "errors": self.errors[:20],
        }

    def to_text(self) -> str:
        lat = self.latency_s
        lines = [
            f"load: {self.jobs} jobs ({self.duplicate_jobs} duplicate / "
            f"{self.fresh_jobs} fresh), {self.ok} ok, {self.failed} failed",
            f"duration {self.duration_s:.2f}s → "
            f"{self.throughput_jobs_per_s:.2f} jobs/s",
            (
                f"latency p50 {lat.get('p50', 0.0):.3f}s  "
                f"p90 {lat.get('p90', 0.0):.3f}s  "
                f"p95 {lat.get('p95', 0.0):.3f}s  "
                f"p99 {lat.get('p99', 0.0):.3f}s  "
                f"max {lat.get('max', 0.0):.3f}s"
            ),
            (
                f"cache-hit ratio {self.cache_hit_ratio:.0%} of jobs "
                f"({self.stage_cache_ratio:.0%} of stages; "
                f"{self.route_stage_runs} route-stage executions)"
            ),
        ]
        if self.errors:
            lines.append(f"first error: {self.errors[0]}")
        return "\n".join(lines)


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[int(idx)]


def _build_submissions(
    jobs: int,
    duplicate_fraction: float,
    circuit: str,
    scale: float,
    seed: int,
) -> List[Dict[str, Any]]:
    """A deterministic duplicate/fresh interleaving (Bresenham on the
    fraction, no RNG): duplicates all share one (circuit, scale, seed);
    fresh jobs get distinct seeds, i.e. distinct artifacts."""
    out: List[Dict[str, Any]] = []
    acc = 0.0
    for i in range(jobs):
        acc += duplicate_fraction
        if acc >= 1.0 - 1e-9:
            acc -= 1.0
            out.append(
                {"circuit": circuit, "scale": scale, "seed": seed, "_mix": "duplicate"}
            )
        else:
            out.append(
                {
                    "circuit": circuit,
                    "scale": scale,
                    "seed": seed + 1 + i,
                    "_mix": "fresh",
                }
            )
    return out


def run_load(
    url: Optional[str] = None,
    clients: int = 4,
    jobs: int = 16,
    duplicate_fraction: float = 0.5,
    circuit: str = "Test1",
    scale: float = 0.1,
    seed: int = 2014,
    timeout_s: float = 600.0,
    service_workers: int = 2,
    cache_dir: Optional[str] = None,
    tenant_per_client: bool = True,
) -> LoadReport:
    """Drive the mixed workload; returns the :class:`LoadReport`.

    With ``url=None`` an internal service is started on a free port
    (``service_workers`` worker processes, fresh spool) and stopped when
    the run ends — the one-command benchmark. Each client thread
    submits as its own tenant by default, so the duplicate traffic
    crosses tenant boundaries exactly like production dedup would.
    """
    from ..service import ServiceClient

    submissions = _build_submissions(
        jobs, duplicate_fraction, circuit, scale, seed
    )
    params = {
        "url": url or "(internal)",
        "clients": clients,
        "jobs": jobs,
        "duplicate_fraction": duplicate_fraction,
        "circuit": circuit,
        "scale": scale,
        "seed": seed,
        "service_workers": service_workers if url is None else None,
    }
    service = None
    if url is None:
        from ..service import RoutingService

        service = RoutingService(
            port=0,
            workers=service_workers,
            cache_dir=cache_dir,
            max_active_per_tenant=0,  # the harness provides the pressure
        ).start_background()
        url = service.url

    results: List[Dict[str, Any]] = []
    errors: List[str] = []
    lock = threading.Lock()
    next_index = [0]

    def client_loop(client_no: int) -> None:
        tenant = f"client{client_no}" if tenant_per_client else "load"
        client = ServiceClient(url, timeout_s=min(60.0, timeout_s), tenant=tenant)
        while True:
            with lock:
                i = next_index[0]
                if i >= len(submissions):
                    return
                next_index[0] += 1
            sub = dict(submissions[i])
            mix = sub.pop("_mix")
            t0 = time.perf_counter()
            try:
                job = client.submit(sub)
                snap = client.wait(job["job_id"], timeout_s=timeout_s)
                latency = time.perf_counter() - t0
                with lock:
                    results.append(
                        {"mix": mix, "latency": latency, "snap": snap}
                    )
            except Exception as exc:  # noqa: BLE001 - harness keeps going
                with lock:
                    errors.append(f"{mix} job: {exc}")

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, args=(n,), daemon=True)
        for n in range(max(1, clients))
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout_s)
        duration = time.perf_counter() - t_start
    finally:
        if service is not None:
            service.stop()

    report = LoadReport(params=params)
    report.jobs = len(results) + len(errors)
    report.errors = errors
    report.failed = len(errors)
    report.duration_s = duration
    latencies: List[float] = []
    total_stages = cached_stages = 0
    for item in results:
        snap = item["snap"]
        if snap["status"] == "done":
            report.ok += 1
        elif snap["status"] == "cancelled":
            report.cancelled += 1
        else:
            report.failed += 1
            if snap.get("error"):
                report.errors.append(str(snap["error"]))
        if item["mix"] == "duplicate":
            report.duplicate_jobs += 1
        else:
            report.fresh_jobs += 1
        latencies.append(item["latency"])
        route_ran = False
        for stage in snap.get("stages", []):
            total_stages += 1
            if stage["status"] in ("hit", "coalesced"):
                cached_stages += 1
            elif stage["stage"] == "route":
                route_ran = True
                report.route_stage_runs += 1
        if snap["status"] == "done" and not route_ran:
            report.cache_hit_ratio += 1  # numerator for now
    done_jobs = max(1, report.ok)
    report.cache_hit_ratio = report.cache_hit_ratio / done_jobs
    report.stage_cache_ratio = (
        cached_stages / total_stages if total_stages else 0.0
    )
    latencies.sort()
    report.latency_s = {
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50": _percentile(latencies, 0.50),
        "p90": _percentile(latencies, 0.90),
        "p95": _percentile(latencies, 0.95),
        "p99": _percentile(latencies, 0.99),
        "max": latencies[-1] if latencies else 0.0,
    }
    report.throughput_jobs_per_s = (
        report.jobs / duration if duration > 0 else 0.0
    )
    return report


def report_to_json(report: LoadReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)

"""Low-overhead background resource sampling, attributed to live spans.

A :class:`ResourceSampler` is a daemon thread that wakes ~10 times per
second and records one :class:`ResourceSample`: resident set size, CPU
utilisation since the previous sample, GC collection count, thread
count, and the names of the innermost open tracer spans at that instant.
The span attribution is what turns a flat RSS curve into a usable
profile — "peak RSS happened inside ``astar_search``" — and feeds the
peak-RSS/CPU columns of the per-phase table and the run ledger.

Overhead discipline: one sample reads ``/proc/self/statm`` (a single
small pread on Linux), calls ``os.times`` and ``gc.get_stats``, and
copies a handful of span names — microseconds of work, bounded and
asserted in the test suite at ≤ 2 ms/sample (2% of a 10 Hz budget).
The sample list is decimated when it grows past :data:`MAX_SAMPLES`, so
memory stays bounded on arbitrarily long runs.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Default sampling cadence (~10 Hz, the resolution/overhead sweet spot).
DEFAULT_INTERVAL_S = 0.1

#: Soft cap on retained samples; beyond it the history is decimated 2:1
#: and the interval doubled, mirroring the histogram reservoir strategy.
MAX_SAMPLES = 100_000

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """Current resident set size; 0 when the platform offers no source.

    Linux: field 2 of ``/proc/self/statm`` (pages). Fallback:
    ``resource.getrusage`` peak RSS — a high-water mark rather than the
    current value, still useful for the peak columns.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except Exception:  # pragma: no cover - exotic platform
        return 0


def gc_collections() -> int:
    """Total GC collections across all generations so far."""
    try:
        return sum(int(stat.get("collections", 0)) for stat in gc.get_stats())
    except Exception:  # pragma: no cover - non-CPython
        return 0


@dataclass
class ResourceSample:
    """One instant of process state."""

    t_s: float  # seconds since sampler start
    rss_bytes: int
    cpu_pct: float  # process CPU (user+sys) over the previous interval
    threads: int
    gc_collections: int
    span_names: Tuple[str, ...]  # innermost open span per live thread


class ResourceSampler:
    """Daemon-thread sampler; ``start()``/``stop()`` bracket a run.

    ``tracer`` is optional — without one, samples simply carry no span
    attribution. The sampler never touches the tracer's recording path,
    so it can watch a tracer that other threads are writing to.
    """

    def __init__(self, tracer=None, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.tracer = tracer
        self.interval_s = interval_s
        self.samples: List[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0
        self._last_cpu = 0.0
        self._last_wall = 0.0
        self._gc_at_start = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        if self.running:
            return self
        self._stop.clear()
        self._t0 = time.perf_counter()
        times = os.times()
        self._last_cpu = times.user + times.system
        self._last_wall = self._t0
        self._gc_at_start = gc_collections()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
            # Final sample so even sub-interval runs record their state.
            self.samples.append(self.sample_once())

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.samples.append(self.sample_once())
            if len(self.samples) > MAX_SAMPLES:
                self.samples = self.samples[::2]
                self.interval_s *= 2

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample_once(self) -> ResourceSample:
        """Take one sample now (public: the overhead gate times this)."""
        now = time.perf_counter()
        times = os.times()
        cpu = times.user + times.system
        dt = now - self._last_wall
        cpu_pct = 100.0 * (cpu - self._last_cpu) / dt if dt > 0 else 0.0
        self._last_cpu = cpu
        self._last_wall = now
        if self.tracer is not None:
            names = tuple(sp.name for sp in self.tracer.active_leaves())
        else:
            names = ()
        return ResourceSample(
            t_s=now - self._t0,
            rss_bytes=read_rss_bytes(),
            cpu_pct=cpu_pct,
            threads=threading.active_count(),
            gc_collections=gc_collections(),
            span_names=names,
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, float]:
        """Run-level roll-up for the ledger and the run-log header."""
        if not self.samples:
            return {}
        rss = [s.rss_bytes for s in self.samples]
        cpu = [s.cpu_pct for s in self.samples]
        return {
            "samples": len(self.samples),
            "duration_s": round(self.samples[-1].t_s, 6),
            "peak_rss_mb": round(max(rss) / 1e6, 3),
            "mean_rss_mb": round(sum(rss) / len(rss) / 1e6, 3),
            "mean_cpu_pct": round(sum(cpu) / len(cpu), 2),
            "max_cpu_pct": round(max(cpu), 2),
            "max_threads": max(s.threads for s in self.samples),
            "gc_collections": self.samples[-1].gc_collections - self._gc_at_start,
        }

    def by_span(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name attribution: peak RSS, mean CPU, sample count.

        A sample is attributed to every span name it observed as a leaf
        (one per live thread), so concurrent phases each see the
        process-wide footprint they were part of.
        """
        acc: Dict[str, List[ResourceSample]] = {}
        for sample in self.samples:
            for name in sample.span_names:
                acc.setdefault(name, []).append(sample)
        out: Dict[str, Dict[str, float]] = {}
        for name, group in sorted(acc.items()):
            out[name] = {
                "samples": len(group),
                "peak_rss_mb": round(max(s.rss_bytes for s in group) / 1e6, 3),
                "mean_cpu_pct": round(
                    sum(s.cpu_pct for s in group) / len(group), 2
                ),
            }
        return out

"""Best-effort run provenance: who produced a measurement, with what.

A ledger entry or a ``BENCH_perf.json`` snapshot is only comparable to
another one when both say what code and what numeric stack produced
them. :func:`collect_provenance` gathers the cheap, always-available
facts — package version, interpreter, numpy/scipy versions, and (when
the working directory is a git checkout) the commit sha and dirty flag.
Everything is best-effort: a missing git binary or a non-repo directory
degrades to omitting the git fields, never to an exception.
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
from functools import lru_cache
from typing import Dict

#: ``git_dirty_paths`` is capped: a mass rename would otherwise bloat
#: every ledger record. The digest always covers the full status output,
#: so truncated lists remain distinguishable.
_MAX_DIRTY_PATHS = 16


@lru_cache(maxsize=1)
def _git_state() -> Dict[str, object]:
    """Git identity of the working tree, or ``{}`` outside a checkout.

    Beyond ``git_sha`` and the ``git_dirty`` flag, a dirty tree records
    *which* paths are dirty (``git_dirty_paths``, sorted, capped) and a
    digest of the full porcelain status (``git_dirty_digest``) — so a
    ledger diff can tell benign dirt (an untracked scratch file) from
    meaningful dirt (edits under ``src/``), and two dirty runs can be
    recognised as identically-dirty without trusting the capped list.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return {}
        out: Dict[str, object] = {"git_sha": sha.stdout.strip()}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if status.returncode == 0:
            out["git_dirty"] = "yes" if status.stdout.strip() else "no"
            if out["git_dirty"] == "yes":
                # porcelain line: "XY path" or "XY old -> new" (renames:
                # keep the destination, the path that exists now); the
                # XY status prefix may start with a significant space
                paths = sorted(
                    {
                        line[3:].split(" -> ")[-1].strip()
                        for line in status.stdout.splitlines()
                        if len(line) > 3
                    }
                )
                out["git_dirty_paths"] = paths[:_MAX_DIRTY_PATHS]
                if len(paths) > _MAX_DIRTY_PATHS:
                    out["git_dirty_paths_total"] = len(paths)
                out["git_dirty_digest"] = hashlib.sha256(
                    status.stdout.encode()
                ).hexdigest()[:16]
        return out
    except (OSError, subprocess.SubprocessError):
        return {}


def _module_version(name: str) -> str:
    try:
        import importlib

        return str(getattr(importlib.import_module(name), "__version__", "unknown"))
    except Exception:
        return "absent"


@lru_cache(maxsize=1)
def _collect() -> Dict[str, object]:
    from .. import __version__

    out: Dict[str, object] = {
        "repro": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": _module_version("numpy"),
        "scipy": _module_version("scipy"),
    }
    out.update(_git_state())
    return out


def collect_provenance() -> Dict[str, object]:
    """Environment fingerprint for run records and bench payloads.

    Computed once per process (the answer cannot change mid-run, and the
    git subprocess should be paid at most once); callers get a copy they
    may extend freely.
    """
    return dict(_collect())

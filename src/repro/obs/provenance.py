"""Best-effort run provenance: who produced a measurement, with what.

A ledger entry or a ``BENCH_perf.json`` snapshot is only comparable to
another one when both say what code and what numeric stack produced
them. :func:`collect_provenance` gathers the cheap, always-available
facts — package version, interpreter, numpy/scipy versions, and (when
the working directory is a git checkout) the commit sha and dirty flag.
Everything is best-effort: a missing git binary or a non-repo directory
degrades to omitting the git fields, never to an exception.
"""

from __future__ import annotations

import platform
import subprocess
from functools import lru_cache
from typing import Dict


@lru_cache(maxsize=1)
def _git_state() -> Dict[str, str]:
    """``{"git_sha": ..., "git_dirty": "yes"|"no"}`` or ``{}``."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return {}
        out: Dict[str, str] = {"git_sha": sha.stdout.strip()}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if status.returncode == 0:
            out["git_dirty"] = "yes" if status.stdout.strip() else "no"
        return out
    except (OSError, subprocess.SubprocessError):
        return {}


def _module_version(name: str) -> str:
    try:
        import importlib

        return str(getattr(importlib.import_module(name), "__version__", "unknown"))
    except Exception:
        return "absent"


@lru_cache(maxsize=1)
def _collect() -> Dict[str, str]:
    from .. import __version__

    out: Dict[str, str] = {
        "repro": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": _module_version("numpy"),
        "scipy": _module_version("scipy"),
    }
    out.update(_git_state())
    return out


def collect_provenance() -> Dict[str, str]:
    """Environment fingerprint for run records and bench payloads.

    Computed once per process (the answer cannot change mid-run, and the
    git subprocess should be paid at most once); callers get a copy they
    may extend freely.
    """
    return dict(_collect())

"""Process-wide metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of labelled instruments,
modelled on the Prometheus client but dependency-free and tuned for a
batch router rather than a scrape endpoint: instruments are created on
first use (``registry.counter("ripups_total", reason="cut_conflict")``),
accumulate in-process, and are read back either programmatically
(:meth:`MetricsRegistry.snapshot`) or as a formatted text block
(:meth:`MetricsRegistry.to_text`).

Instrument semantics:

* **Counter** — monotonically increasing float (``inc``).
* **Gauge** — last-write-wins float (``set`` / ``add``).
* **Histogram** — streaming summary (count/sum/min/max) plus a small
  reservoir of observations for quantile estimates. Bounded memory: the
  reservoir keeps the first ``RESERVOIR_SIZE`` samples and then decimates,
  which is plenty for run-report percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Canonical key of one labelled instrument: (name, sorted label pairs).
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonic counter; ``inc`` with a negative amount raises."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value; ``set`` overwrites, ``add`` adjusts."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Streaming distribution summary with a decimating reservoir."""

    RESERVOIR_SIZE = 1024

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels = labels or {}
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._stride = 1  # keep every _stride'th observation once full

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._reservoir.append(value)
            if len(self._reservoir) >= self.RESERVOIR_SIZE:
                # Decimate: keep every other sample, double the stride.
                self._reservoir = self._reservoir[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1) from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> Dict[str, float]:
        # Both branches emit the same key set: JSONL consumers key on a
        # stable schema, so the zero-count summary carries explicit
        # zeros rather than omitting the quantile fields.
        if not self.count:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    The same (name, labels) pair always returns the same instrument, so
    call sites never need to cache handles — though hot paths may, to
    skip the key lookup.
    """

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instrument access
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, dict(key[1]))
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, dict(key[1]))
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, dict(key[1]))
        return inst

    # ------------------------------------------------------------------ #
    # Reading back
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __iter__(self) -> Iterator:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def names(self) -> List[str]:
        return sorted(
            {name for name, _ in self._counters}
            | {name for name, _ in self._gauges}
            | {name for name, _ in self._histograms}
        )

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0.0

    def total(self, name: str) -> float:
        """Sum of a counter's value across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Plain-data view of every instrument (JSONL-exporter input)."""
        out: List[Dict[str, Any]] = []
        for (name, _), c in sorted(self._counters.items()):
            out.append(
                {"metric": name, "kind": "counter", "labels": c.labels, "value": c.value}
            )
        for (name, _), g in sorted(self._gauges.items()):
            out.append(
                {"metric": name, "kind": "gauge", "labels": g.labels, "value": g.value}
            )
        for (name, _), h in sorted(self._histograms.items()):
            out.append(
                {
                    "metric": name,
                    "kind": "histogram",
                    "labels": h.labels,
                    "value": h.summary(),
                }
            )
        return out

    def to_prometheus(self) -> str:
        """Prometheus text-format exposition of every instrument.

        Counters and gauges map directly; histograms are exposed
        summary-style (``_count``/``_sum`` plus quantile gauges). See
        :mod:`repro.obs.prom` for the format details.
        """
        from .prom import to_prometheus

        return to_prometheus(self)

    def to_text(self) -> str:
        """Human-readable dump, grouped and sorted for stable output."""
        lines = ["metrics", "-" * 40]
        for entry in self.snapshot():
            label_txt = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            tag = f"{entry['metric']}{{{label_txt}}}" if label_txt else entry["metric"]
            if entry["kind"] == "histogram":
                s = entry["value"]
                lines.append(
                    f"{tag:48s} n={s['count']} sum={s['sum']:.6g} "
                    f"mean={s['mean']:.6g} max={s['max']:.6g}"
                )
            else:
                lines.append(f"{tag:48s} {entry['value']:.6g}")
        return "\n".join(lines)

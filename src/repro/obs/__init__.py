"""Unified observability layer: metrics, spans, JSONL run logs.

The routing pipeline is instrumented with calls into this package —
counters for discrete happenings (rip-ups by reason, constraint edges by
kind, A* expansions), histograms for distributions (per-net wall time),
and nested spans for runtime attribution (``route_all → route_net →
astar_search / ocg_update / pseudo_color / color_flip``).

Design: a module-level backend that defaults to **off**. Instrumented
code asks :func:`get_active` once per operation and skips all recording
when it returns ``None``, so the instrumentation costs a predicate per
call site when disabled — hot inner loops accumulate plain local ints
and only publish them at operation end. Enabling is one call::

    from repro import obs

    ob = obs.enable()                # fresh registry + tracer
    router.route_all()
    print(obs.phase_table())         # per-phase runtime breakdown
    obs.export_run_jsonl("run.jsonl")
    obs.disable()

or, scoped::

    with obs.session() as ob:
        router.route_all()

The CLI exposes the same switch as ``--metrics`` / ``--trace FILE.jsonl``
(see ``docs/OBSERVABILITY.md`` for the event schema).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "Observability",
    "enable",
    "disable",
    "get_active",
    "is_enabled",
    "session",
    "span",
    "stopwatch",
    "counter_inc",
    "phase_table",
    "export_run_jsonl",
    "validate_run_jsonl",
    "collapsed_stacks",
    "collect_provenance",
]


class Observability:
    """One run's worth of telemetry: a registry, a tracer, and an
    optional background resource sampler."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        #: Optional :class:`~repro.obs.resource.ResourceSampler`;
        #: started on demand, stopped automatically on disable().
        self.sampler = None

    def start_resource_sampler(self, interval_s: float = 0.1):
        """Start (or return the already-running) background sampler."""
        if self.sampler is None:
            from .resource import ResourceSampler

            self.sampler = ResourceSampler(self.tracer, interval_s=interval_s)
        self.sampler.start()
        return self.sampler

    def stop_resource_sampler(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()


#: The process-wide backend; ``None`` means observability is off.
_active: Optional[Observability] = None


def enable(fresh: bool = True) -> Observability:
    """Turn observability on; returns the active backend.

    ``fresh=True`` (default) starts a new registry/tracer even when one
    is already active; ``fresh=False`` keeps accumulating into it.
    """
    global _active
    if _active is None or fresh:
        _active = Observability()
    return _active


def disable() -> None:
    global _active
    if _active is not None:
        _active.stop_resource_sampler()
    _active = None


def get_active() -> Optional[Observability]:
    """The live backend, or None when observability is off.

    Hot paths call this once per operation, keep the result in a local,
    and skip every recording branch when it is None.
    """
    return _active


def is_enabled() -> bool:
    return _active is not None


@contextmanager
def session(fresh: bool = True) -> Iterator[Observability]:
    """Scoped enable/disable; restores the previous backend on exit."""
    global _active
    previous = _active
    ob = enable(fresh=fresh)
    try:
        yield ob
    finally:
        if ob is not previous:
            ob.stop_resource_sampler()
        _active = previous


# ---------------------------------------------------------------------- #
# Recording helpers
# ---------------------------------------------------------------------- #


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()
    duration_s = 0.0
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """A tracer span when enabled, a shared no-op otherwise.

    The no-op never reads the clock, so liberally spanning cheap
    operations is safe.
    """
    ob = _active
    if ob is None:
        return _NULL_SPAN
    return ob.tracer.span(name, **attrs)


class _Stopwatch:
    """Minimal timer standing in for a span when observability is off."""

    __slots__ = ("_t0", "duration_s")

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.duration_s = 0.0

    def stop(self) -> None:
        self.duration_s = time.perf_counter() - self._t0


@contextmanager
def stopwatch(name: str, **attrs: Any):
    """A span that *always* measures time.

    Use where the caller needs the elapsed seconds regardless of whether
    observability is on (e.g. ``RoutingResult.cpu_seconds``). When a
    backend is live the measurement is also recorded as a span named
    ``name``; the yielded object exposes ``duration_s`` either way.
    """
    ob = _active
    if ob is not None:
        with ob.tracer.span(name, **attrs) as sp:
            yield sp
    else:
        sw = _Stopwatch()
        try:
            yield sw
        finally:
            sw.stop()


def counter_inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Convenience increment; no-op when disabled."""
    ob = _active
    if ob is not None:
        ob.registry.counter(name, **labels).inc(amount)


# ---------------------------------------------------------------------- #
# Reporting (implemented in export.py; re-exported here for one-stop use)
# ---------------------------------------------------------------------- #

from .export import (  # noqa: E402
    collapsed_stacks,
    export_run_jsonl,
    phase_table,
    validate_run_jsonl,
)
from .provenance import collect_provenance  # noqa: E402

"""JSONL run-log export, validation, and the per-phase runtime table.

One run log is a JSON-Lines file merging three event streams:

* ``{"type": "meta", ...}`` — exactly one, the first line: schema
  version, tool version, environment provenance (git sha, package
  versions), plus caller-supplied run context.
* ``{"type": "span", ...}`` — one per finished tracer span.
* ``{"type": "metric", ...}`` — one per registry instrument (snapshot
  taken at export time).
* ``{"type": "resource", ...}`` — at most one: the resource sampler's
  run summary and per-span peaks, when a sampler ran.
* ``{"type": "router_event", ...}`` — one per :class:`RouterTrace`
  event, when a trace is supplied.

The format is documented in ``docs/OBSERVABILITY.md``;
:func:`validate_run_jsonl` enforces it (CI's smoke job runs it against a
freshly routed trace).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

SCHEMA_VERSION = 1

#: (phase label, span names folded into it) — the bench/report breakdown.
PHASE_SPANS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("search", ("astar_search",)),
    ("graph", ("ocg_update",)),
    ("flip", ("pseudo_color", "color_flip")),
    ("commit", ("cut_check",)),
    ("decompose", ("synthesize_masks",)),
)

#: Span names whose *self* time (duration minus nested children) is folded
#: into a phase. ``commit_net`` wraps the whole commit path — occupancy
#: writes, scenario bookkeeping, cut registration — but also contains the
#: ``ocg_update``/``pseudo_color``/``cut_check`` spans priced elsewhere;
#: counting only its self time keeps the phase split disjoint, making
#: ``sum(phases) <= route_all`` hold by construction.
SELF_PHASE_SPANS: Dict[str, Tuple[str, ...]] = {"commit": ("commit_net",)}


def _backend(observability):
    if observability is not None:
        return observability
    from . import get_active

    return get_active()


def export_run_jsonl(
    path: Union[str, Path],
    observability=None,
    router_trace=None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the merged run log; returns the path written.

    ``observability`` defaults to the active backend; passing neither an
    explicit backend nor having one enabled still produces a valid (if
    span/metric-empty) log, so callers need no conditional plumbing.
    """
    ob = _backend(observability)
    path = Path(path)
    lines: List[Dict[str, Any]] = []

    from .. import __version__
    from .provenance import collect_provenance

    head: Dict[str, Any] = {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "tool": "repro",
        "version": __version__,
        "provenance": collect_provenance(),
    }
    if meta:
        head.update(meta)
    lines.append(head)

    if ob is not None:
        for sp in ob.tracer.finished:
            record = sp.to_dict()
            record["type"] = "span"
            lines.append(record)
        for entry in ob.registry.snapshot():
            record = dict(entry)
            record["type"] = "metric"
            lines.append(record)
        sampler = getattr(ob, "sampler", None)
        if sampler is not None and sampler.samples:
            lines.append(
                {
                    "type": "resource",
                    "summary": sampler.summary(),
                    "by_span": sampler.by_span(),
                }
            )

    if router_trace is not None:
        for event in router_trace.events:
            lines.append(
                {
                    "type": "router_event",
                    "kind": event.kind,
                    "net_id": event.net_id,
                    "details": event.details,
                }
            )

    with path.open("w", encoding="utf-8") as fh:
        for record in lines:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
    return path


# ---------------------------------------------------------------------- #
# Validation
# ---------------------------------------------------------------------- #

_METRIC_KINDS = {"counter", "gauge", "histogram"}


def _check_span(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    for key, types in (
        ("name", str),
        ("span_id", int),
        ("start_s", (int, float)),
        ("duration_s", (int, float)),
        ("attrs", dict),
    ):
        if not isinstance(record.get(key), types):
            errors.append(f"{where}: span field {key!r} missing or mistyped")
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, int):
        errors.append(f"{where}: span parent_id must be int or null")
    end = record.get("end_s")
    if end is not None and not isinstance(end, (int, float)):
        errors.append(f"{where}: span end_s must be number or null")


def _check_metric(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("metric"), str):
        errors.append(f"{where}: metric field 'metric' missing or mistyped")
    kind = record.get("kind")
    if kind not in _METRIC_KINDS:
        errors.append(f"{where}: metric kind {kind!r} not one of {sorted(_METRIC_KINDS)}")
    labels = record.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        errors.append(f"{where}: metric labels must be a str->str object")
    value = record.get("value")
    if kind == "histogram":
        if not isinstance(value, dict) or "count" not in value:
            errors.append(f"{where}: histogram value must be a summary object")
    elif kind in _METRIC_KINDS and not isinstance(value, (int, float)):
        errors.append(f"{where}: {kind} value must be a number")


def _check_resource(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("summary"), dict):
        errors.append(f"{where}: resource summary must be an object")
    by_span = record.get("by_span")
    if by_span is not None and not isinstance(by_span, dict):
        errors.append(f"{where}: resource by_span must be an object or absent")


def _check_router_event(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("kind"), str):
        errors.append(f"{where}: router_event kind missing or mistyped")
    net_id = record.get("net_id")
    if net_id is not None and not isinstance(net_id, int):
        errors.append(f"{where}: router_event net_id must be int or null")
    if not isinstance(record.get("details"), dict):
        errors.append(f"{where}: router_event details must be an object")


def validate_run_jsonl(path: Union[str, Path]) -> List[str]:
    """Check a run log against the documented schema.

    Returns a list of human-readable problems; an empty list means the
    file is valid. Never raises on malformed content — every problem is
    reported as a finding instead.
    """
    path = Path(path)
    errors: List[str] = []
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not raw_lines:
        return [f"{path}: empty file — expected at least a meta line"]

    spans: List[Tuple[str, Dict[str, Any]]] = []
    resource_seen = False
    for lineno, raw in enumerate(raw_lines, start=1):
        where = f"line {lineno}"
        if not raw.strip():
            errors.append(f"{where}: blank line")
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: record must be a JSON object")
            continue
        rtype = record.get("type")
        if lineno == 1:
            if rtype != "meta":
                errors.append("line 1: first record must have type 'meta'")
            elif record.get("schema") != SCHEMA_VERSION:
                errors.append(
                    f"line 1: unsupported schema {record.get('schema')!r} "
                    f"(expected {SCHEMA_VERSION})"
                )
            continue
        if rtype == "meta":
            errors.append(f"{where}: duplicate meta record")
        elif rtype == "span":
            _check_span(record, where, errors)
            spans.append((where, record))
        elif rtype == "metric":
            _check_metric(record, where, errors)
        elif rtype == "resource":
            if resource_seen:
                errors.append(f"{where}: duplicate resource record")
            resource_seen = True
            _check_resource(record, where, errors)
        elif rtype == "router_event":
            _check_router_event(record, where, errors)
        else:
            errors.append(f"{where}: unknown record type {rtype!r}")

    # Cross-record span-tree checks: every parent must exist (an
    # orphaned span end means the exporter dropped or mangled part of
    # the tree), durations must be non-negative, and a span in a
    # *finished* run log must actually have ended.
    span_ids = {
        record["span_id"]
        for _, record in spans
        if isinstance(record.get("span_id"), int)
    }
    for where, record in spans:
        parent = record.get("parent_id")
        if isinstance(parent, int) and parent not in span_ids:
            errors.append(
                f"{where}: orphaned span — parent_id {parent} matches no "
                f"exported span"
            )
        duration = record.get("duration_s")
        if isinstance(duration, (int, float)) and duration < 0:
            errors.append(f"{where}: negative span duration {duration}")
        start = record.get("start_s")
        end = record.get("end_s")
        if end is None:
            errors.append(f"{where}: span never ended (end_s is null)")
        elif isinstance(start, (int, float)) and isinstance(end, (int, float)):
            if end < start:
                errors.append(
                    f"{where}: span ends before it starts "
                    f"(end_s {end} < start_s {start})"
                )
    return errors


# ---------------------------------------------------------------------- #
# Per-phase breakdown
# ---------------------------------------------------------------------- #


def phase_totals(observability=None) -> Dict[str, float]:
    """Seconds per pipeline phase, folded per :data:`PHASE_SPANS`."""
    ob = _backend(observability)
    if ob is None:
        return {}
    totals = ob.tracer.totals_by_name()
    self_totals = ob.tracer.self_totals_by_name()
    out: Dict[str, float] = {}
    for phase, names in PHASE_SPANS:
        seconds = sum(totals.get(name, 0.0) for name in names)
        for name in SELF_PHASE_SPANS.get(phase, ()):
            seconds += self_totals.get(name, 0.0)
        out[phase] = seconds
    return out


def _span_to_phase() -> Dict[str, str]:
    """span name -> phase label, per the PHASE_SPANS folding."""
    mapping: Dict[str, str] = {}
    for phase, names in PHASE_SPANS:
        for name in names:
            mapping[name] = phase
        for name in SELF_PHASE_SPANS.get(phase, ()):
            mapping[name] = phase
    return mapping


def resource_phase_columns(observability=None) -> Dict[str, Dict[str, float]]:
    """Per-phase resource attribution from the sampler, when one ran.

    Returns ``{phase: {"peak_rss_mb": ..., "mean_cpu_pct": ...}}`` for
    every phase at least one sample landed in (a sample belongs to the
    phase of the innermost span open when it was taken). Empty when no
    sampler ran — callers can unconditionally merge.
    """
    ob = _backend(observability)
    sampler = getattr(ob, "sampler", None) if ob is not None else None
    if sampler is None or not sampler.samples:
        return {}
    to_phase = _span_to_phase()
    out: Dict[str, Dict[str, float]] = {}
    acc: Dict[str, List] = {}
    for sample in sampler.samples:
        phases = {to_phase[name] for name in sample.span_names if name in to_phase}
        for phase in phases:
            acc.setdefault(phase, []).append(sample)
    for phase, group in acc.items():
        out[phase] = {
            "peak_rss_mb": round(max(s.rss_bytes for s in group) / 1e6, 3),
            "mean_cpu_pct": round(sum(s.cpu_pct for s in group) / len(group), 2),
        }
    return out


def phase_table(observability=None, total_span: str = "route_all") -> str:
    """The per-phase runtime table (search / graph / flip / ...).

    ``total_span`` names the span whose duration is 100%; phases outside
    the listed ones show up as 'other'. When the resource sampler ran,
    the table grows peak-RSS and mean-CPU columns attributed per phase.
    """
    ob = _backend(observability)
    if ob is None:
        return "observability disabled — no phase data"
    totals = ob.tracer.totals_by_name()
    counts = ob.tracer.counts_by_name()
    total = totals.get(total_span, 0.0)
    phases = phase_totals(ob)
    resources = resource_phase_columns(ob)

    header = f"{'phase':12s} {'seconds':>10s} {'share':>7s} {'spans':>8s}"
    if resources:
        header += f" {'peakMB':>8s} {'cpu%':>7s}"
    lines = ["per-phase runtime", header, "-" * len(header)]
    accounted = 0.0
    for phase, names in PHASE_SPANS:
        seconds = phases.get(phase, 0.0)
        n = sum(counts.get(name, 0) for name in names) + sum(
            counts.get(name, 0) for name in SELF_PHASE_SPANS.get(phase, ())
        )
        if n == 0:
            continue
        accounted += seconds
        share = f"{100.0 * seconds / total:6.1f}%" if total > 0 else "      -"
        line = f"{phase:12s} {seconds:10.4f} {share:>7s} {n:8d}"
        if resources:
            res = resources.get(phase)
            if res is not None:
                line += f" {res['peak_rss_mb']:8.1f} {res['mean_cpu_pct']:7.1f}"
            else:
                line += f" {'-':>8s} {'-':>7s}"
        lines.append(line)
    if total > 0:
        other = max(0.0, total - accounted)
        lines.append(f"{'other':12s} {other:10.4f} {100.0 * other / total:6.1f}% {'-':>8s}")
        lines.append(f"{'total':12s} {total:10.4f} {'100.0%':>7s} {'-':>8s}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Collapsed-stack (flamegraph) export
# ---------------------------------------------------------------------- #


def collapsed_stacks(path: Union[str, Path]) -> List[str]:
    """Fold a run log's span tree into collapsed-stack lines.

    Output lines are ``root;child;leaf <self_time_us>`` — the input
    format of ``flamegraph.pl`` and speedscope ("collapsed"/"folded").
    Each span contributes its *self* time (duration minus direct
    children) at its stack path; identical paths are summed. Roots are
    whole-run spans like ``route_all``; worker-digest spans folded under
    ``parallel_batch`` appear as ordinary children.
    """
    path = Path(path)
    spans: List[Dict[str, Any]] = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        if not raw.strip():
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("type") == "span":
            spans.append(record)

    by_id = {sp["span_id"]: sp for sp in spans if isinstance(sp.get("span_id"), int)}
    child_time: Dict[int, float] = {}
    for sp in spans:
        parent = sp.get("parent_id")
        if isinstance(parent, int):
            child_time[parent] = child_time.get(parent, 0.0) + float(
                sp.get("duration_s") or 0.0
            )

    def stack_path(sp: Dict[str, Any]) -> str:
        names: List[str] = []
        seen = set()
        node: Optional[Dict[str, Any]] = sp
        while node is not None:
            name = str(node.get("name", "?")).replace(";", ":").replace(" ", "_")
            names.append(name)
            parent = node.get("parent_id")
            if not isinstance(parent, int) or parent in seen:
                break
            seen.add(parent)
            node = by_id.get(parent)
        return ";".join(reversed(names))

    folded: Dict[str, int] = {}
    for sp in spans:
        duration = float(sp.get("duration_s") or 0.0)
        self_s = duration - child_time.get(sp.get("span_id"), 0.0)
        self_us = int(round(max(0.0, self_s) * 1e6))
        if self_us <= 0:
            continue
        key = stack_path(sp)
        folded[key] = folded.get(key, 0) + self_us
    return [f"{key} {value}" for key, value in sorted(folded.items())]

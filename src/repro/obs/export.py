"""JSONL run-log export, validation, and the per-phase runtime table.

One run log is a JSON-Lines file merging three event streams:

* ``{"type": "meta", ...}`` — exactly one, the first line: schema
  version, tool version, plus caller-supplied run context.
* ``{"type": "span", ...}`` — one per finished tracer span.
* ``{"type": "metric", ...}`` — one per registry instrument (snapshot
  taken at export time).
* ``{"type": "router_event", ...}`` — one per :class:`RouterTrace`
  event, when a trace is supplied.

The format is documented in ``docs/OBSERVABILITY.md``;
:func:`validate_run_jsonl` enforces it (CI's smoke job runs it against a
freshly routed trace).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

SCHEMA_VERSION = 1

#: (phase label, span names folded into it) — the bench/report breakdown.
PHASE_SPANS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("search", ("astar_search",)),
    ("graph", ("ocg_update",)),
    ("flip", ("pseudo_color", "color_flip")),
    ("commit", ("cut_check",)),
    ("decompose", ("synthesize_masks",)),
)

#: Span names whose *self* time (duration minus nested children) is folded
#: into a phase. ``commit_net`` wraps the whole commit path — occupancy
#: writes, scenario bookkeeping, cut registration — but also contains the
#: ``ocg_update``/``pseudo_color``/``cut_check`` spans priced elsewhere;
#: counting only its self time keeps the phase split disjoint, making
#: ``sum(phases) <= route_all`` hold by construction.
SELF_PHASE_SPANS: Dict[str, Tuple[str, ...]] = {"commit": ("commit_net",)}


def _backend(observability):
    if observability is not None:
        return observability
    from . import get_active

    return get_active()


def export_run_jsonl(
    path: Union[str, Path],
    observability=None,
    router_trace=None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the merged run log; returns the path written.

    ``observability`` defaults to the active backend; passing neither an
    explicit backend nor having one enabled still produces a valid (if
    span/metric-empty) log, so callers need no conditional plumbing.
    """
    ob = _backend(observability)
    path = Path(path)
    lines: List[Dict[str, Any]] = []

    from .. import __version__

    head: Dict[str, Any] = {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "tool": "repro",
        "version": __version__,
    }
    if meta:
        head.update(meta)
    lines.append(head)

    if ob is not None:
        for sp in ob.tracer.finished:
            record = sp.to_dict()
            record["type"] = "span"
            lines.append(record)
        for entry in ob.registry.snapshot():
            record = dict(entry)
            record["type"] = "metric"
            lines.append(record)

    if router_trace is not None:
        for event in router_trace.events:
            lines.append(
                {
                    "type": "router_event",
                    "kind": event.kind,
                    "net_id": event.net_id,
                    "details": event.details,
                }
            )

    with path.open("w", encoding="utf-8") as fh:
        for record in lines:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
    return path


# ---------------------------------------------------------------------- #
# Validation
# ---------------------------------------------------------------------- #

_METRIC_KINDS = {"counter", "gauge", "histogram"}


def _check_span(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    for key, types in (
        ("name", str),
        ("span_id", int),
        ("start_s", (int, float)),
        ("duration_s", (int, float)),
        ("attrs", dict),
    ):
        if not isinstance(record.get(key), types):
            errors.append(f"{where}: span field {key!r} missing or mistyped")
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, int):
        errors.append(f"{where}: span parent_id must be int or null")
    end = record.get("end_s")
    if end is not None and not isinstance(end, (int, float)):
        errors.append(f"{where}: span end_s must be number or null")


def _check_metric(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("metric"), str):
        errors.append(f"{where}: metric field 'metric' missing or mistyped")
    kind = record.get("kind")
    if kind not in _METRIC_KINDS:
        errors.append(f"{where}: metric kind {kind!r} not one of {sorted(_METRIC_KINDS)}")
    labels = record.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        errors.append(f"{where}: metric labels must be a str->str object")
    value = record.get("value")
    if kind == "histogram":
        if not isinstance(value, dict) or "count" not in value:
            errors.append(f"{where}: histogram value must be a summary object")
    elif kind in _METRIC_KINDS and not isinstance(value, (int, float)):
        errors.append(f"{where}: {kind} value must be a number")


def _check_router_event(record: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("kind"), str):
        errors.append(f"{where}: router_event kind missing or mistyped")
    net_id = record.get("net_id")
    if net_id is not None and not isinstance(net_id, int):
        errors.append(f"{where}: router_event net_id must be int or null")
    if not isinstance(record.get("details"), dict):
        errors.append(f"{where}: router_event details must be an object")


def validate_run_jsonl(path: Union[str, Path]) -> List[str]:
    """Check a run log against the documented schema.

    Returns a list of human-readable problems; an empty list means the
    file is valid. Never raises on malformed content — every problem is
    reported as a finding instead.
    """
    path = Path(path)
    errors: List[str] = []
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not raw_lines:
        return [f"{path}: empty file — expected at least a meta line"]

    for lineno, raw in enumerate(raw_lines, start=1):
        where = f"line {lineno}"
        if not raw.strip():
            errors.append(f"{where}: blank line")
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: record must be a JSON object")
            continue
        rtype = record.get("type")
        if lineno == 1:
            if rtype != "meta":
                errors.append("line 1: first record must have type 'meta'")
            elif record.get("schema") != SCHEMA_VERSION:
                errors.append(
                    f"line 1: unsupported schema {record.get('schema')!r} "
                    f"(expected {SCHEMA_VERSION})"
                )
            continue
        if rtype == "meta":
            errors.append(f"{where}: duplicate meta record")
        elif rtype == "span":
            _check_span(record, where, errors)
        elif rtype == "metric":
            _check_metric(record, where, errors)
        elif rtype == "router_event":
            _check_router_event(record, where, errors)
        else:
            errors.append(f"{where}: unknown record type {rtype!r}")
    return errors


# ---------------------------------------------------------------------- #
# Per-phase breakdown
# ---------------------------------------------------------------------- #


def phase_totals(observability=None) -> Dict[str, float]:
    """Seconds per pipeline phase, folded per :data:`PHASE_SPANS`."""
    ob = _backend(observability)
    if ob is None:
        return {}
    totals = ob.tracer.totals_by_name()
    self_totals = ob.tracer.self_totals_by_name()
    out: Dict[str, float] = {}
    for phase, names in PHASE_SPANS:
        seconds = sum(totals.get(name, 0.0) for name in names)
        for name in SELF_PHASE_SPANS.get(phase, ()):
            seconds += self_totals.get(name, 0.0)
        out[phase] = seconds
    return out


def phase_table(observability=None, total_span: str = "route_all") -> str:
    """The per-phase runtime table (search / graph / flip / ...).

    ``total_span`` names the span whose duration is 100%; phases outside
    the listed ones show up as 'other'.
    """
    ob = _backend(observability)
    if ob is None:
        return "observability disabled — no phase data"
    totals = ob.tracer.totals_by_name()
    counts = ob.tracer.counts_by_name()
    total = totals.get(total_span, 0.0)
    phases = phase_totals(ob)

    header = f"{'phase':12s} {'seconds':>10s} {'share':>7s} {'spans':>8s}"
    lines = ["per-phase runtime", header, "-" * len(header)]
    accounted = 0.0
    for phase, names in PHASE_SPANS:
        seconds = phases.get(phase, 0.0)
        n = sum(counts.get(name, 0) for name in names) + sum(
            counts.get(name, 0) for name in SELF_PHASE_SPANS.get(phase, ())
        )
        if n == 0:
            continue
        accounted += seconds
        share = f"{100.0 * seconds / total:6.1f}%" if total > 0 else "      -"
        lines.append(f"{phase:12s} {seconds:10.4f} {share:>7s} {n:8d}")
    if total > 0:
        other = max(0.0, total - accounted)
        lines.append(f"{'other':12s} {other:10.4f} {100.0 * other / total:6.1f}% {'-':>8s}")
        lines.append(f"{'total':12s} {total:10.4f} {'100.0%':>7s} {'-':>8s}")
    return "\n".join(lines)

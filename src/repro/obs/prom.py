"""Prometheus text-format exposition for the metrics registry.

:func:`to_prometheus` renders every instrument of a
:class:`~repro.obs.metrics.MetricsRegistry` in the exposition format
(version 0.0.4) that Prometheus, VictoriaMetrics and friends scrape:

* counters and gauges map one-to-one (``name{label="v"} value``);
* histograms are exposed **summary-style** — ``name{quantile="0.5"}`` /
  ``{quantile="0.95"}`` gauges from the reservoir, plus the exact
  ``name_count`` and ``name_sum`` series.

:func:`validate_prometheus_text` is the matching line-by-line checker
(used by the tests and the CI obs-smoke job), and
:func:`start_http_exporter` serves the live registry on a stdlib
``http.server`` thread — the scrape endpoint for routing-as-a-service::

    exporter = start_http_exporter(port=9095)
    ...                       # route, serve, ...
    exporter.stop()           # and curl :9095/metrics in between

No third-party client library: the format is simple, and the router
must not grow a runtime dependency for it.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

#: (quantile label, Histogram.summary() key) exposed per histogram.
QUANTILES: Tuple[Tuple[str, str], ...] = (("0.5", "p50"), ("0.95", "p95"))

_INVALID_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_SAMPLE_LINE = re.compile(
    rf"^{_METRIC_NAME}(?:\{{{_LABEL_PAIR}(?:,{_LABEL_PAIR})*\}})?"
    r" (?:[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|inf)|NaN|nan)$"
)
_COMMENT_LINE = re.compile(
    rf"^# (?:HELP {_METRIC_NAME} .*|TYPE {_METRIC_NAME} "
    r"(?:counter|gauge|histogram|summary|untyped))$"
)


def sanitize_name(name: str) -> str:
    name = _INVALID_NAME_CHAR.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _sanitize_label(name: str) -> str:
    name = _INVALID_LABEL_CHAR.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_txt(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [
        (_sanitize_label(k), _escape_label_value(str(v)))
        for k, v in sorted(labels.items())
    ]
    pairs.extend((k, _escape_label_value(v)) for k, v in extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def to_prometheus(registry) -> str:
    """Exposition-format dump of a registry; deterministic ordering."""
    families: Dict[Tuple[str, str], List[str]] = {}

    def family(name: str, kind: str) -> List[str]:
        return families.setdefault((name, kind), [])

    for entry in registry.snapshot():
        name = sanitize_name(entry["metric"])
        labels = entry["labels"]
        if entry["kind"] == "counter":
            family(name, "counter").append(
                f"{name}{_labels_txt(labels)} {_format_value(entry['value'])}"
            )
        elif entry["kind"] == "gauge":
            family(name, "gauge").append(
                f"{name}{_labels_txt(labels)} {_format_value(entry['value'])}"
            )
        else:  # histogram -> summary exposition
            s = entry["value"]
            lines = family(name, "summary")
            for qlabel, key in QUANTILES:
                lines.append(
                    f"{name}{_labels_txt(labels, (('quantile', qlabel),))} "
                    f"{_format_value(s.get(key, 0.0))}"
                )
            lines.append(
                f"{name}_sum{_labels_txt(labels)} {_format_value(s['sum'])}"
            )
            lines.append(
                f"{name}_count{_labels_txt(labels)} {_format_value(s['count'])}"
            )
    out: List[str] = []
    for (name, kind), lines in sorted(families.items()):
        out.append(f"# HELP {name} repro metric {name}")
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def validate_prometheus_text(text: str) -> List[str]:
    """Line-by-line format check; returns problems (empty = valid).

    Enforces the exposition grammar per line plus the family invariants
    a scraper relies on: every sample belongs to a ``# TYPE``-declared
    family, and no family is declared twice.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                problems.append(f"line {lineno}: malformed comment {line!r}")
            elif line.startswith("# TYPE "):
                name = line.split()[2]
                if name in typed:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                typed[name] = line.split()[3]
            continue
        if not _SAMPLE_LINE.match(line):
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = re.match(_METRIC_NAME, line).group(0)  # type: ignore[union-attr]
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            problems.append(f"line {lineno}: sample {name} has no TYPE line")
    if text and not text.endswith("\n"):
        problems.append("output must end with a newline")
    return problems


# ---------------------------------------------------------------------- #
# Scrape endpoint
# ---------------------------------------------------------------------- #

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PromExporter:
    """``http.server`` thread serving ``/metrics``.

    ``registry=None`` binds the endpoint to whatever backend is active
    at scrape time (:func:`repro.obs.get_active`), so one exporter can
    outlive many enable/disable cycles; an explicit registry pins it.
    """

    def __init__(
        self,
        registry=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "try /metrics")
                    return
                body = exporter.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape spam
                return None

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def render(self) -> str:
        registry = self.registry
        if registry is None:
            from . import get_active

            ob = get_active()
            registry = ob.registry if ob is not None else None
        if registry is None:
            return "# no active metrics registry\n"
        return to_prometheus(registry)

    def start(self) -> "PromExporter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-prom-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._server.server_close()


def start_http_exporter(
    port: int = 0, registry=None, host: str = "127.0.0.1"
) -> PromExporter:
    """Create and start a metrics endpoint; returns the live exporter
    (``exporter.port`` reports the bound port when ``port=0``)."""
    return PromExporter(registry=registry, host=host, port=port).start()

"""Append-only run ledger: every run recorded, attributed, diffable.

The ledger is the repo's memory of its own performance. Every CLI
``route`` / ``pipeline run`` / ``bench`` invocation (and opted-in bench
harness runs) appends one :class:`RunRecord` — config hash, workload,
git sha + package provenance, per-phase seconds, counter totals,
resource peaks, parallel-decision rationale, outcome — so regressions
can be attributed PR-over-PR instead of eyeballed from a point-in-time
``BENCH_perf.json``.

Storage layout under ``.repro_runs/`` (override with ``--ledger-dir``
or ``REPRO_LEDGER_DIR``):

* ``records.jsonl`` — the source of truth, strictly append-only: one
  JSON object per line, never rewritten.
* ``index.sqlite`` — a derived index (run id, timestamp, workload,
  config hash, byte offset/length into the JSONL) for fast history
  queries; deleting it is safe, :meth:`Ledger.reindex` rebuilds it from
  the JSONL.

:func:`diff_runs` compares two records — per-phase time deltas, counter
deltas, peak-RSS deltas — against :class:`DiffThresholds` and produces
a machine-checkable regression verdict (the CLI ``repro obs diff`` exit
code and the CI obs-smoke job both consume it).
"""

from __future__ import annotations

import json
import os
import secrets
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .provenance import collect_provenance

#: Default ledger location; ``REPRO_LEDGER_DIR`` overrides it (used by
#: CI and the test suite to keep run records out of the working tree).
DEFAULT_LEDGER_DIR = ".repro_runs"

RECORDS_FILE = "records.jsonl"
INDEX_FILE = "index.sqlite"

RECORD_SCHEMA = 1


def default_ledger_dir() -> str:
    return os.environ.get("REPRO_LEDGER_DIR") or DEFAULT_LEDGER_DIR


def _new_run_id(ts: float) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(ts))
    return f"r{stamp}-{secrets.token_hex(3)}"


@dataclass
class RunRecord:
    """One ledger entry; everything JSON-serialisable by construction."""

    run_id: str
    ts: float  # wall-clock epoch seconds
    command: str  # "route" | "pipeline run" | "bench" | "bench-perf" | ...
    workload: str  # netlist path, "Test1@0.2", or workload-list string
    config_hash: str
    outcome: str = "ok"  # "ok" | "error" | "regression"
    wall_s: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    resources: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, str] = field(default_factory=dict)
    parallel_decision: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "run_id": self.run_id,
            "ts": self.ts,
            "command": self.command,
            "workload": self.workload,
            "config_hash": self.config_hash,
            "outcome": self.outcome,
            "wall_s": round(self.wall_s, 6),
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "counters": self.counters,
            "resources": self.resources,
            "provenance": self.provenance,
            "meta": self.meta,
        }
        if self.parallel_decision is not None:
            out["parallel_decision"] = self.parallel_decision
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=str(data.get("run_id", "")),
            ts=float(data.get("ts", 0.0)),
            command=str(data.get("command", "")),
            workload=str(data.get("workload", "")),
            config_hash=str(data.get("config_hash", "")),
            outcome=str(data.get("outcome", "ok")),
            wall_s=float(data.get("wall_s", 0.0)),
            phases=dict(data.get("phases") or {}),
            counters=dict(data.get("counters") or {}),
            resources=dict(data.get("resources") or {}),
            provenance=dict(data.get("provenance") or {}),
            parallel_decision=data.get("parallel_decision"),
            meta=dict(data.get("meta") or {}),
        )

    @property
    def when(self) -> str:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.ts))

    @property
    def peak_rss_mb(self) -> float:
        return float(self.resources.get("peak_rss_mb", 0.0))

    def one_line(self) -> str:
        decision = ""
        if self.parallel_decision:
            decision = f" par={self.parallel_decision.get('decision', '?')}"
        rss = f" {self.peak_rss_mb:7.1f}MB" if self.resources else " " * 10
        return (
            f"{self.run_id:28s} {self.when} {self.command:12s} "
            f"{self.workload:20.20s} {self.config_hash:12.12s} "
            f"{self.wall_s:8.3f}s{rss} {self.outcome}{decision}"
        )


def make_record(
    command: str,
    workload: str,
    config: Dict[str, Any],
    ts: Optional[float] = None,
    **fields: Any,
) -> RunRecord:
    """Build a record with a fresh run id, config hash and provenance."""
    import hashlib

    ts = time.time() if ts is None else ts
    digest = hashlib.sha256(
        json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:12]
    meta = fields.pop("meta", {})
    return RunRecord(
        run_id=_new_run_id(ts),
        ts=ts,
        command=command,
        workload=workload,
        config_hash=digest,
        provenance=collect_provenance(),
        meta={"config": config, **meta},
        **fields,
    )


# ---------------------------------------------------------------------- #
# Storage
# ---------------------------------------------------------------------- #

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    ts          REAL NOT NULL,
    command     TEXT NOT NULL,
    workload    TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    git_sha     TEXT,
    outcome     TEXT NOT NULL,
    wall_s      REAL NOT NULL,
    peak_rss_mb REAL,
    offset      INTEGER NOT NULL,
    length      INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_ts ON runs (ts);
CREATE INDEX IF NOT EXISTS runs_workload ON runs (workload, config_hash, ts);
"""


class Ledger:
    """SQLite-indexed, JSONL-backed append-only run store."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root if root is not None else default_ledger_dir())
        self.root.mkdir(parents=True, exist_ok=True)
        self.records_path = self.root / RECORDS_FILE
        self.index_path = self.root / INDEX_FILE
        self._db = sqlite3.connect(str(self.index_path))
        self._db.executescript(_TABLE_SQL)
        if not self.records_path.exists():
            self.records_path.touch()
        self._sync_index()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        (n,) = self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(n)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def record(self, record: RunRecord) -> str:
        """Append one record; returns its run id."""
        payload = json.dumps(record.to_dict(), sort_keys=True, default=str)
        data = payload.encode("utf-8") + b"\n"
        with self.records_path.open("ab") as fh:
            offset = fh.tell()
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        self._index_row(record, offset, len(data))
        self._db.commit()
        return record.run_id

    def _index_row(self, record: RunRecord, offset: int, length: int) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO runs (run_id, ts, command, workload, "
            "config_hash, git_sha, outcome, wall_s, peak_rss_mb, offset, length) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.run_id,
                record.ts,
                record.command,
                record.workload,
                record.config_hash,
                record.provenance.get("git_sha"),
                record.outcome,
                record.wall_s,
                record.peak_rss_mb,
                offset,
                length,
            ),
        )

    def _sync_index(self) -> None:
        """Catch the index up with the JSONL (e.g. after a deleted or
        stale ``index.sqlite`` — the JSONL is the source of truth)."""
        row = self._db.execute(
            "SELECT COALESCE(MAX(offset + length), 0) FROM runs"
        ).fetchone()
        indexed_to = int(row[0])
        size = self.records_path.stat().st_size
        if size > indexed_to:
            self._reindex_from(indexed_to)
        elif size < indexed_to:  # truncated/replaced JSONL: rebuild fully
            self._db.execute("DELETE FROM runs")
            self._reindex_from(0)

    def _reindex_from(self, offset: int) -> None:
        with self.records_path.open("rb") as fh:
            fh.seek(offset)
            while True:
                start = fh.tell()
                raw = fh.readline()
                if not raw:
                    break
                if not raw.strip():
                    continue
                try:
                    record = RunRecord.from_dict(json.loads(raw.decode("utf-8")))
                except (json.JSONDecodeError, UnicodeDecodeError, TypeError):
                    continue
                if record.run_id:
                    self._index_row(record, start, len(raw))
        self._db.commit()

    def reindex(self) -> int:
        """Full rebuild of the SQLite index from the JSONL; returns the
        number of indexed records."""
        self._db.execute("DELETE FROM runs")
        self._reindex_from(0)
        return len(self)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def _load(self, offset: int, length: int) -> RunRecord:
        with self.records_path.open("rb") as fh:
            fh.seek(offset)
            raw = fh.read(length)
        return RunRecord.from_dict(json.loads(raw.decode("utf-8")))

    def get(self, run_id: str) -> RunRecord:
        """Fetch by exact id or unique prefix; raises KeyError otherwise."""
        rows = self._db.execute(
            "SELECT run_id, offset, length FROM runs WHERE run_id = ?",
            (run_id,),
        ).fetchall()
        if not rows:
            rows = self._db.execute(
                "SELECT run_id, offset, length FROM runs WHERE run_id LIKE ? "
                "ORDER BY ts",
                (run_id + "%",),
            ).fetchall()
        if not rows:
            raise KeyError(f"no run {run_id!r} in {self.root}")
        if len(rows) > 1:
            ids = ", ".join(row[0] for row in rows)
            raise KeyError(f"run id prefix {run_id!r} is ambiguous: {ids}")
        return self._load(rows[0][1], rows[0][2])

    def history(
        self,
        limit: int = 20,
        workload: Optional[str] = None,
        command: Optional[str] = None,
    ) -> List[RunRecord]:
        """Most recent runs first, optionally filtered."""
        sql = "SELECT offset, length FROM runs"
        clauses, params = [], []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY ts DESC, run_id DESC LIMIT ?"
        params.append(int(limit))
        rows = self._db.execute(sql, params).fetchall()
        return [self._load(offset, length) for offset, length in rows]

    def latest(
        self,
        workload: Optional[str] = None,
        config_hash: Optional[str] = None,
        command: Optional[str] = None,
        outcome: Optional[str] = None,
        before_ts: Optional[float] = None,
    ) -> Optional[RunRecord]:
        """Most recent record matching every given filter, or None."""
        sql = "SELECT offset, length FROM runs"
        clauses, params = [], []
        for column, value in (
            ("workload", workload),
            ("config_hash", config_hash),
            ("command", command),
            ("outcome", outcome),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if before_ts is not None:
            clauses.append("ts < ?")
            params.append(before_ts)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY ts DESC, run_id DESC LIMIT 1"
        row = self._db.execute(sql, params).fetchone()
        return self._load(row[0], row[1]) if row else None


# ---------------------------------------------------------------------- #
# Diffing
# ---------------------------------------------------------------------- #


@dataclass
class DiffThresholds:
    """What counts as a regression (fractional growth + absolute floor).

    Both conditions must hold — a phase that grew 40% but only by 2 ms
    is runner noise, not a regression; so is a counter that went from
    2 to 4.
    """

    wall_pct: float = 0.20
    wall_min_s: float = 0.05
    phase_pct: float = 0.25
    phase_min_s: float = 0.02
    counter_pct: float = 0.25
    counter_min: float = 32.0
    rss_pct: float = 0.25
    rss_min_mb: float = 16.0


@dataclass
class DiffRow:
    """One compared quantity."""

    section: str  # "wall" | "phase" | "counter" | "resource"
    name: str
    a: float
    b: float
    flag: str  # "ok" | "regression" | "improvement"

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> Optional[float]:
        if self.a == 0:
            return None
        return 100.0 * self.delta / self.a


def _flag(a: float, b: float, pct: float, floor: float) -> str:
    delta = b - a
    if abs(delta) < floor:
        return "ok"
    if a <= 0:
        return "regression" if delta > 0 else "improvement"
    if delta > a * pct:
        return "regression"
    if -delta > a * pct:
        return "improvement"
    return "ok"


@dataclass
class RunDiff:
    """The comparison of two ledger records, B (new) against A (old)."""

    a: RunRecord
    b: RunRecord
    rows: List[DiffRow]
    comparable: bool  # same workload + config hash

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.flag == "regression"]

    @property
    def improvements(self) -> List[DiffRow]:
        return [row for row in self.rows if row.flag == "improvement"]

    @property
    def verdict(self) -> str:
        return "regression" if self.regressions else "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a.run_id,
            "b": self.b.run_id,
            "comparable": self.comparable,
            "verdict": self.verdict,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "rows": [
                {
                    "section": row.section,
                    "name": row.name,
                    "a": row.a,
                    "b": row.b,
                    "delta": round(row.delta, 6),
                    "pct": None if row.pct is None else round(row.pct, 2),
                    "flag": row.flag,
                }
                for row in self.rows
            ],
        }

    def to_text(self) -> str:
        a, b = self.a, self.b
        lines = [
            f"run diff: A {a.run_id} ({a.when}) -> B {b.run_id} ({b.when})",
            f"workload  A {a.workload} [{a.config_hash}]  "
            f"B {b.workload} [{b.config_hash}]"
            + ("" if self.comparable else "  ** configs differ — deltas indicative only **"),
        ]
        prov_keys = sorted(set(a.provenance) | set(b.provenance))
        changed = [
            f"{k}: {a.provenance.get(k, '-')} -> {b.provenance.get(k, '-')}"
            for k in prov_keys
            if a.provenance.get(k) != b.provenance.get(k)
        ]
        if changed:
            lines.append("environment changed: " + "; ".join(changed))
        header = (
            f"{'section':9s} {'name':28s} {'A':>12s} {'B':>12s} "
            f"{'delta':>12s} {'pct':>8s}  flag"
        )
        lines += [header, "-" * len(header)]
        for row in self.rows:
            pct = f"{row.pct:+7.1f}%" if row.pct is not None else "       -"
            flag = "" if row.flag == "ok" else f"  {row.flag.upper()}"
            lines.append(
                f"{row.section:9s} {row.name:28.28s} {row.a:12.4f} "
                f"{row.b:12.4f} {row.delta:+12.4f} {pct}{flag}"
            )
        for label, record in (("A", a), ("B", b)):
            if record.parallel_decision:
                d = record.parallel_decision
                lines.append(
                    f"parallel decision {label}: {d.get('decision', '?')} — "
                    f"{d.get('reason', '')}"
                )
        lines.append(
            f"verdict: {self.verdict} ({len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements)"
        )
        return "\n".join(lines)


def diff_runs(
    a: RunRecord, b: RunRecord, thresholds: Optional[DiffThresholds] = None
) -> RunDiff:
    """Compare run B (new) against run A (baseline)."""
    th = thresholds or DiffThresholds()
    rows: List[DiffRow] = [
        DiffRow(
            "wall",
            "wall_s",
            a.wall_s,
            b.wall_s,
            _flag(a.wall_s, b.wall_s, th.wall_pct, th.wall_min_s),
        )
    ]
    for phase in sorted(set(a.phases) | set(b.phases)):
        pa = float(a.phases.get(phase, 0.0))
        pb = float(b.phases.get(phase, 0.0))
        rows.append(
            DiffRow(
                "phase", phase, pa, pb, _flag(pa, pb, th.phase_pct, th.phase_min_s)
            )
        )
    for name in sorted(set(a.counters) | set(b.counters)):
        ca = float(a.counters.get(name, 0.0))
        cb = float(b.counters.get(name, 0.0))
        rows.append(
            DiffRow(
                "counter",
                name,
                ca,
                cb,
                _flag(ca, cb, th.counter_pct, th.counter_min),
            )
        )
    for name in ("peak_rss_mb", "mean_rss_mb"):
        if name in a.resources or name in b.resources:
            ra = float(a.resources.get(name, 0.0))
            rb = float(b.resources.get(name, 0.0))
            flag = _flag(ra, rb, th.rss_pct, th.rss_min_mb)
            if name == "mean_rss_mb" and flag == "regression":
                flag = "ok"  # peak is the gated quantity; mean is context
            rows.append(DiffRow("resource", name, ra, rb, flag))
    comparable = (
        a.workload == b.workload and a.config_hash == b.config_hash
    )
    return RunDiff(a=a, b=b, rows=rows, comparable=comparable)

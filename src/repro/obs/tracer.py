"""Nested timed spans for per-phase runtime attribution.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
``with tracer.span("astar_search", net_id=7):`` block. Spans nest via a
per-thread stack, so the route flow produces the natural hierarchy
``route_all → route_net → astar_search / ocg_update / pseudo_color`` with
no explicit parent threading. Finished spans are plain data: the JSONL
exporter serialises them, and :meth:`Tracer.totals_by_name` folds them
into the per-phase table the bench harness prints.

Durations use :func:`time.perf_counter`; start timestamps are offsets
from the tracer's epoch so a run log is self-consistent regardless of
wall-clock adjustments.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed section of the pipeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float  # seconds since the tracer's epoch
    attrs: Dict[str, Any] = field(default_factory=dict)
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects finished spans; cheap enough to leave on during a run."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.finished: List[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        self._next_id += 1
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_s=time.perf_counter() - self.epoch,
            attrs=attrs,
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_s = time.perf_counter() - self.epoch
            stack.pop()
            self.finished.append(sp)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def totals_by_name(self) -> Dict[str, float]:
        """Total seconds per span name (each span counted in full)."""
        totals: Dict[str, float] = {}
        for sp in self.finished:
            totals[sp.name] = totals.get(sp.name, 0.0) + sp.duration_s
        return totals

    def self_totals_by_name(self) -> Dict[str, float]:
        """Total *self* seconds per span name: duration minus direct children.

        Unlike :meth:`totals_by_name`, nested spans are not double
        counted — a container span (``commit_net``) contributes only the
        time not already attributed to the instrumented spans inside it.
        The per-phase report uses this to make the phase split exhaustive.
        """
        child_sum: Dict[int, float] = {}
        for sp in self.finished:
            if sp.parent_id is not None:
                child_sum[sp.parent_id] = (
                    child_sum.get(sp.parent_id, 0.0) + sp.duration_s
                )
        totals: Dict[str, float] = {}
        for sp in self.finished:
            totals[sp.name] = (
                totals.get(sp.name, 0.0)
                + sp.duration_s
                - child_sum.get(sp.span_id, 0.0)
            )
        return totals

    def counts_by_name(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sp in self.finished:
            counts[sp.name] = counts.get(sp.name, 0) + 1
        return counts

    def spans_named(self, name: str) -> List[Span]:
        return [sp for sp in self.finished if sp.name == name]

    def tree(self) -> Dict[Optional[int], List[Span]]:
        """children-by-parent_id index over finished spans."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        for sp in self.finished:
            by_parent.setdefault(sp.parent_id, []).append(sp)
        for children in by_parent.values():
            children.sort(key=lambda s: s.start_s)
        return by_parent

    def to_text(self, max_depth: int = 4, min_duration_s: float = 0.0) -> str:
        """Indented span tree (roots in start order), for debugging."""
        by_parent = self.tree()
        lines: List[str] = ["span tree", "-" * 40]

        def walk(parent: Optional[int], depth: int) -> None:
            if depth > max_depth:
                return
            for sp in by_parent.get(parent, ()):
                if sp.duration_s < min_duration_s:
                    continue
                attr_txt = " ".join(f"{k}={v}" for k, v in sorted(sp.attrs.items()))
                pad = "  " * depth
                lines.append(
                    f"{pad}{sp.name} {sp.duration_s * 1e3:.3f} ms"
                    + (f" [{attr_txt}]" if attr_txt else "")
                )
                walk(sp.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)

"""Nested timed spans for per-phase runtime attribution.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
``with tracer.span("astar_search", net_id=7):`` block. Spans nest via a
per-thread stack, so the route flow produces the natural hierarchy
``route_all → route_net → astar_search / ocg_update / pseudo_color`` with
no explicit parent threading. Finished spans are plain data: the JSONL
exporter serialises them, and :meth:`Tracer.totals_by_name` folds them
into the per-phase table the bench harness prints.

Durations use :func:`time.perf_counter`; start timestamps are offsets
from the tracer's epoch so a run log is self-consistent regardless of
wall-clock adjustments.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed section of the pipeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float  # seconds since the tracer's epoch
    attrs: Dict[str, Any] = field(default_factory=dict)
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects finished spans; cheap enough to leave on during a run."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.finished: List[Span] = []
        self._next_id = 0
        # Per-thread span stacks, keyed by thread ident rather than held
        # in a ``threading.local``: the resource sampler reads *other*
        # threads' stacks to attribute samples to the active span, which
        # thread-local storage cannot offer.
        self._stacks: Dict[int, List[Span]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _stack(self) -> List[Span]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        self._next_id += 1
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_s=time.perf_counter() - self.epoch,
            attrs=attrs,
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_s = time.perf_counter() - self.epoch
            stack.pop()
            self.finished.append(sp)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def active_leaves(self) -> List[Span]:
        """Innermost open span of every thread with a non-empty stack.

        Called from the resource-sampler thread without locking: span
        enter/exit only appends/pops under the GIL, so the worst a race
        can produce is a just-closed span — harmless for attribution.
        """
        leaves: List[Span] = []
        try:
            stacks = list(self._stacks.values())
        except RuntimeError:  # pragma: no cover - dict resized mid-copy
            return leaves
        for stack in stacks:
            if stack:
                try:
                    leaves.append(stack[-1])
                except IndexError:  # pragma: no cover - popped mid-read
                    pass
        return leaves

    def record_external(
        self, name: str, duration_s: float, count: int = 1, **attrs: Any
    ) -> List[Span]:
        """Fold already-measured work (e.g. a worker process's searches)
        into this tracer as finished spans.

        The worker ran ``count`` sections totalling ``duration_s`` that
        this process never saw; each becomes a span of the mean duration,
        parented under the caller's current span and marked
        ``external=True`` so timeline consumers can tell them from
        locally clocked spans. Start offsets are back-dated from "now" so
        a child never appears to outlive its parent.
        """
        parent = self.current()
        now = time.perf_counter() - self.epoch
        each = duration_s / count if count > 0 else 0.0
        spans: List[Span] = []
        for _ in range(max(0, count)):
            self._next_id += 1
            sp = Span(
                name=name,
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                start_s=max(0.0, now - each),
                attrs={"external": True, **attrs},
                end_s=now,
            )
            self.finished.append(sp)
            spans.append(sp)
        return spans

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def totals_by_name(self) -> Dict[str, float]:
        """Total seconds per span name (each span counted in full)."""
        totals: Dict[str, float] = {}
        for sp in self.finished:
            totals[sp.name] = totals.get(sp.name, 0.0) + sp.duration_s
        return totals

    def self_totals_by_name(self) -> Dict[str, float]:
        """Total *self* seconds per span name: duration minus direct children.

        Unlike :meth:`totals_by_name`, nested spans are not double
        counted — a container span (``commit_net``) contributes only the
        time not already attributed to the instrumented spans inside it.
        The per-phase report uses this to make the phase split exhaustive.
        """
        child_sum: Dict[int, float] = {}
        for sp in self.finished:
            if sp.parent_id is not None:
                child_sum[sp.parent_id] = (
                    child_sum.get(sp.parent_id, 0.0) + sp.duration_s
                )
        totals: Dict[str, float] = {}
        for sp in self.finished:
            totals[sp.name] = (
                totals.get(sp.name, 0.0)
                + sp.duration_s
                - child_sum.get(sp.span_id, 0.0)
            )
        return totals

    def counts_by_name(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sp in self.finished:
            counts[sp.name] = counts.get(sp.name, 0) + 1
        return counts

    def spans_named(self, name: str) -> List[Span]:
        return [sp for sp in self.finished if sp.name == name]

    def tree(self) -> Dict[Optional[int], List[Span]]:
        """children-by-parent_id index over finished spans."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        for sp in self.finished:
            by_parent.setdefault(sp.parent_id, []).append(sp)
        for children in by_parent.values():
            children.sort(key=lambda s: s.start_s)
        return by_parent

    def to_text(self, max_depth: int = 4, min_duration_s: float = 0.0) -> str:
        """Indented span tree (roots in start order), for debugging."""
        by_parent = self.tree()
        lines: List[str] = ["span tree", "-" * 40]

        def walk(parent: Optional[int], depth: int) -> None:
            if depth > max_depth:
                return
            for sp in by_parent.get(parent, ()):
                if sp.duration_s < min_duration_s:
                    continue
                attr_txt = " ".join(f"{k}={v}" for k, v in sorted(sp.attrs.items()))
                pad = "  " * depth
                lines.append(
                    f"{pad}{sp.name} {sp.duration_s * 1e3:.3f} ms"
                    + (f" [{attr_txt}]" if attr_txt else "")
                )
                walk(sp.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)

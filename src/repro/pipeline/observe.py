"""Shared CLI observability wiring.

Every pipeline-driven command used to copy the same enable/print/export/
disable dance (``_cmd_route`` and ``_cmd_bench`` each had a private
``_obs_begin``/``_obs_finish`` pair). :func:`observed_command` is the one
place that handles the observability flags now:

* ``--metrics`` / ``--trace FILE.jsonl`` — print the per-phase table /
  export the JSONL run log, exactly as before;
* the **run ledger** (on by default, ``--no-ledger`` opts out) — every
  invocation appends a :class:`~repro.obs.ledger.RunRecord` with config
  hash, per-phase seconds, counter totals, resource peaks, provenance
  and the parallel-decision rationale, so ``repro obs history`` /
  ``repro obs diff`` can compare any two runs;
* the **resource sampler** — started whenever observability is on, so
  peak RSS / CPU land in the phase table and the ledger;
* ``--prom-port N`` — serve the live registry on ``/metrics`` for the
  duration of the command.

On exit it prints/exports what was asked, records the ledger entry
(success *and* failure — the record's ``outcome`` says which), and
switches observability back off — even when the command raises.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: argparse attributes folded into the ledger's config hash — the knobs
#: that change what a run computes (not how it is reported).
_CONFIG_KEYS = (
    "width",
    "height",
    "layers",
    "scale",
    "seed",
    "router",
    "workers",
    "guidance",
    "shard",
)


class ObservedCommand:
    """Mutable handle yielded by :func:`observed_command`."""

    def __init__(self, meta: Dict[str, Any]) -> None:
        #: Run-log metadata (merged into the JSONL meta line).
        self.meta = meta
        #: A :class:`~repro.router.RouterTrace` to merge into the run log.
        self.router_trace: Optional[Any] = None
        #: The ledger id of the recorded run (set on exit when the
        #: ledger is on).
        self.run_id: Optional[str] = None


def _config_from_args(args: Any, meta: Dict[str, Any]) -> Dict[str, Any]:
    config = {k: getattr(args, k) for k in _CONFIG_KEYS if hasattr(args, k)}
    config.update(
        (k, v) for k, v in meta.items() if k not in ("command", "workload")
    )
    return config


def _workload_from_meta(meta: Dict[str, Any]) -> str:
    for key in ("workload", "circuit", "design", "netlist"):
        if meta.get(key):
            return str(meta[key])
    return ""


def _parallel_decision_from_tracer(ob) -> Optional[Dict[str, Any]]:
    """The last ``parallel_decision`` event's attributes, if any."""
    decision = None
    for span in ob.tracer.finished:
        if span.name == "parallel_decision":
            decision = dict(span.attrs)
    return decision


def record_run(
    ob,
    *,
    command: str,
    workload: str,
    config: Dict[str, Any],
    outcome: str,
    wall_s: float,
    ledger_dir: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
):
    """Append one :class:`RunRecord` built from the live backend.

    Shared by :func:`observed_command` and the bench harness's
    ``--ledger`` mode; returns the record.
    """
    from ..obs.export import phase_totals
    from ..obs.ledger import Ledger, make_record

    counters = {
        entry["metric"]: 0.0
        for entry in ob.registry.snapshot()
        if entry["kind"] == "counter"
    }
    for name in counters:
        counters[name] = ob.registry.total(name)
    resources: Dict[str, float] = {}
    if ob.sampler is not None and ob.sampler.samples:
        resources = ob.sampler.summary()
    record = make_record(
        command,
        workload,
        config,
        outcome=outcome,
        wall_s=wall_s,
        phases={k: round(v, 6) for k, v in phase_totals(ob).items()},
        counters=counters,
        resources=resources,
        parallel_decision=_parallel_decision_from_tracer(ob),
        meta=meta or {},
    )
    with Ledger(ledger_dir) as ledger:
        ledger.record(record)
    return record


@contextmanager
def observed_command(args: Any, **meta: Any) -> Iterator[ObservedCommand]:
    """Scope a CLI command's observability per its ``--metrics``/``--trace``
    /ledger flags.

    ``args`` is the parsed argparse namespace; commands without any obs
    flags simply run unobserved. The yielded handle's ``router_trace``
    and ``meta`` feed the JSONL export; its ``run_id`` reports the
    ledger entry afterwards.
    """
    wants_metrics = bool(getattr(args, "metrics", False))
    trace_path = getattr(args, "trace", None)
    prom_port = getattr(args, "prom_port", None)
    # The ledger defaults on for every command that grew the flag pair;
    # commands without them (scenarios, validate-trace) stay unrecorded.
    wants_ledger = hasattr(args, "no_ledger") and not getattr(
        args, "no_ledger"
    )
    ledger_dir = getattr(args, "ledger_dir", None)
    handle = ObservedCommand(dict(meta))
    if not (wants_metrics or trace_path or wants_ledger or prom_port is not None):
        yield handle
        return

    from .. import obs

    ob = obs.enable()
    ob.start_resource_sampler()
    exporter = None
    if prom_port is not None:
        from ..obs.prom import start_http_exporter

        exporter = start_http_exporter(port=prom_port)
        print(
            f"serving metrics at http://127.0.0.1:{exporter.port}/metrics",
            file=sys.stderr,
        )
    outcome = "error"
    t0 = time.perf_counter()
    try:
        yield handle
        outcome = "ok"
        ob.stop_resource_sampler()  # freeze peaks before reporting
        if wants_metrics:
            print()
            print(obs.phase_table())
            print()
            print(ob.registry.to_text())
        if trace_path:
            path = obs.export_run_jsonl(
                trace_path, router_trace=handle.router_trace, meta=handle.meta
            )
            print(f"run log written to {path}")
    finally:
        wall_s = time.perf_counter() - t0
        ob.stop_resource_sampler()
        if wants_ledger:
            try:
                record = record_run(
                    ob,
                    command=str(meta.get("command", "run")),
                    workload=_workload_from_meta(meta),
                    config=_config_from_args(args, meta),
                    outcome=outcome,
                    wall_s=wall_s,
                    ledger_dir=ledger_dir,
                )
                handle.run_id = record.run_id
                if outcome == "ok":
                    # failed runs are still recorded, but the hint line
                    # must not land in front of the error message
                    print(
                        f"run {record.run_id} recorded "
                        f"(repro obs history / repro obs diff)",
                        file=sys.stderr,
                    )
            except Exception as exc:  # never fail the command over telemetry
                print(f"ledger: record failed: {exc}", file=sys.stderr)
        if exporter is not None:
            exporter.stop()
        obs.disable()

"""Shared CLI observability wiring.

Every pipeline-driven command used to copy the same enable/print/export/
disable dance (``_cmd_route`` and ``_cmd_bench`` each had a private
``_obs_begin``/``_obs_finish`` pair). :func:`observed_command` is the one
place that handles the ``--metrics`` / ``--trace`` flags now: it enables
observability when asked, yields a handle the command can hang a router
trace and extra metadata on, and on exit prints the per-phase table,
exports the JSONL run log, and switches observability back off — even
when the command raises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class ObservedCommand:
    """Mutable handle yielded by :func:`observed_command`."""

    def __init__(self, meta: Dict[str, Any]) -> None:
        #: Run-log metadata (merged into the JSONL meta line).
        self.meta = meta
        #: A :class:`~repro.router.RouterTrace` to merge into the run log.
        self.router_trace: Optional[Any] = None


@contextmanager
def observed_command(args: Any, **meta: Any) -> Iterator[ObservedCommand]:
    """Scope a CLI command's observability per its ``--metrics``/``--trace``
    flags.

    ``args`` is the parsed argparse namespace; commands without the obs
    flags simply run unobserved. The yielded handle's ``router_trace``
    and ``meta`` feed the JSONL export.
    """
    wants_metrics = bool(getattr(args, "metrics", False))
    trace_path = getattr(args, "trace", None)
    handle = ObservedCommand(dict(meta))
    if not (wants_metrics or trace_path):
        yield handle
        return

    from .. import obs

    obs.enable()
    try:
        yield handle
        if wants_metrics:
            ob = obs.get_active()
            print()
            print(obs.phase_table())
            if ob is not None:
                print()
                print(ob.registry.to_text())
        if trace_path:
            path = obs.export_run_jsonl(
                trace_path, router_trace=handle.router_trace, meta=handle.meta
            )
            print(f"run log written to {path}")
    finally:
        obs.disable()

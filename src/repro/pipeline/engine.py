"""Declarative staged execution with content-hash caching and resume.

A :class:`Pipeline` wires the stages of ``stages.py`` over one
:class:`PipelineConfig`. Every stage output is content-hashed from its
*inputs*::

    hash(output) = sha256(stage name, stage version,
                          config slice, fingerprint extras,
                          upstream artifact hashes)[:32]   (+ output kind)

so a re-run with an unchanged prefix is a pure cache hit, and a run that
failed mid-way naturally resumes at the first invalid stage — the hashes
of everything before it still resolve in the store.

Observability: each *executed* stage runs inside a ``stage:<name>`` span
carrying the artifact hashes, serialized bytes, and wall seconds (the
JSONL run log picks these up automatically); cache hits don't open spans
but bump the ``pipeline_cache_hits_total`` counter. A test can therefore
assert "the second run did no routing" by counting ``stage:route`` spans.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..errors import PipelineCancelled, PipelineError, ReproError
from .artifacts import Artifact
from .config import PipelineConfig
from .stages import Stage, default_stages
from .store import ArtifactStore, MemoryStore

#: Signature of a per-stage progress callback: called with structured
#: event dicts (``{"event": "stage_start"|"stage_end", "stage": ...,
#: "index": i, "total": n, ...}``) as the run advances. ``stage_end``
#: events mirror the ``stage:<name>`` spans — ``status`` distinguishes an
#: executed stage (``"run"``) from a cache hit (``"hit"``) or a
#: single-flight coalesce (``"coalesced"``), so a supervisor can assert
#: "the second identical job did zero route work" without parsing spans.
ProgressFn = Callable[[Dict[str, Any]], None]

#: Cancellation check: return True to stop the run between stages (the
#: run raises :class:`PipelineCancelled`; completed stages stay cached).
CancelFn = Callable[[], bool]

#: Run every stage (the full paper flow) when no targets are given.
ALL_STAGES: Tuple[str, ...] = (
    "load_design",
    "build_grid",
    "route",
    "decompose",
    "verify",
    "report",
)


@dataclass
class StageRecord:
    """What happened to one stage during a run (or a plan)."""

    name: str
    status: str  # "run" | "hit" | "pending"
    hashes: Dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0
    bytes: int = 0

    def describe(self) -> str:
        ids = " ".join(
            f"{kind}:{h[:12]}" for kind, h in sorted(self.hashes.items())
        )
        if self.status == "run":
            detail = f"run   {self.seconds:7.2f}s {_fmt_bytes(self.bytes):>9s}"
        elif self.status == "hit":
            detail = f"hit   {'':7s}  {'':9s}"
        else:
            detail = f"{self.status:5s} {'':7s}  {'':9s}"
        return f"stage {self.name:12s} {detail} {ids}"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f} KB"
    return f"{n} B"


@dataclass
class PipelineRun:
    """Outcome of :meth:`Pipeline.run`: artifacts by kind plus per-stage
    records and the run-local context (live router, router trace, ...)."""

    config: PipelineConfig
    records: List[StageRecord] = field(default_factory=list)
    artifacts: Dict[str, Artifact] = field(default_factory=dict)
    context: Dict[str, Any] = field(default_factory=dict)

    def artifact(self, kind: str) -> Artifact:
        try:
            return self.artifacts[kind]
        except KeyError:
            raise PipelineError(
                f"no {kind!r} artifact in this run — was its stage targeted?"
            ) from None

    @property
    def cached_count(self) -> int:
        # "coalesced" = a concurrent identical run computed it while we
        # waited — a cache hit from this run's point of view.
        return sum(1 for r in self.records if r.status in ("hit", "coalesced"))

    @property
    def executed_count(self) -> int:
        return sum(1 for r in self.records if r.status == "run")

    def status_line(self) -> str:
        return f"pipeline: {self.executed_count} run, {self.cached_count} cached"

    def to_text(self) -> str:
        return "\n".join([r.describe() for r in self.records] + [self.status_line()])


class Pipeline:
    """The staged execution engine.

    >>> config = PipelineConfig(circuit="Test1", scale=0.1)
    >>> run = Pipeline(config).run()            # full flow, cached
    >>> run.artifact("routing").result().summary()
    """

    def __init__(
        self,
        config: PipelineConfig,
        store: Optional[Union[ArtifactStore, MemoryStore]] = None,
        stages: Optional[Sequence[Stage]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.store = store if store is not None else ArtifactStore(config.cache_dir)
        self.stages: Tuple[Stage, ...] = tuple(stages or default_stages())
        self._producer: Dict[str, Stage] = {}
        for stage in self.stages:
            for kind in stage.outputs:
                if kind in self._producer:
                    raise PipelineError(
                        f"artifact kind {kind!r} produced by two stages"
                    )
                self._producer[kind] = stage

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def _needed_stages(self, targets: Sequence[str]) -> List[Stage]:
        """The target stages plus transitive dependencies, in pipeline
        order."""
        by_name = {s.name: s for s in self.stages}
        needed: set = set()

        def require(stage: Stage) -> None:
            if stage.name in needed:
                return
            needed.add(stage.name)
            for kind in stage.inputs:
                producer = self._producer.get(kind)
                if producer is None:
                    raise PipelineError(
                        f"no stage produces {kind!r} (needed by {stage.name})"
                    )
                require(producer)

        for name in targets:
            stage = by_name.get(name)
            if stage is None:
                raise PipelineError(
                    f"unknown stage {name!r}; stages are {[s.name for s in self.stages]}"
                )
            require(stage)
        return [s for s in self.stages if s.name in needed]

    def _output_hashes(
        self, stage: Stage, input_hashes: Dict[str, str]
    ) -> Dict[str, str]:
        material = json.dumps(
            {
                "stage": stage.name,
                "version": stage.version,
                "config": stage.config_slice(self.config),
                "extra": stage.fingerprint_extra(self.config),
                "inputs": input_hashes,
            },
            sort_keys=True,
            default=str,
        )
        base = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return {
            kind: hashlib.sha256(f"{base}:{kind}".encode("utf-8")).hexdigest()[:32]
            for kind in stage.outputs
        }

    def plan(self, targets: Sequence[str] = ALL_STAGES) -> List[StageRecord]:
        """Resolve every needed stage's artifact hashes and cache status
        without executing anything."""
        records: List[StageRecord] = []
        known: Dict[str, str] = {}
        for stage in self._needed_stages(targets):
            hashes = self._output_hashes(
                stage, {kind: known[kind] for kind in stage.inputs}
            )
            known.update(hashes)
            cached = all(self.store.has(h) for h in hashes.values())
            records.append(
                StageRecord(
                    name=stage.name,
                    status="hit" if cached else "pending",
                    hashes=hashes,
                )
            )
        return records

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        targets: Sequence[str] = ALL_STAGES,
        force: bool = False,
        context: Optional[Dict[str, Any]] = None,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelFn] = None,
    ) -> PipelineRun:
        """Execute the pipeline up to ``targets`` (plus dependencies).

        Unchanged prefixes are served from the artifact store; ``force``
        re-executes every stage (results are still written back, so a
        forced run refreshes the cache). A stage failure raises
        :class:`PipelineError` naming the stage; artifacts of completed
        stages remain cached, so the next run resumes after them.

        ``progress`` receives structured per-stage events (see
        :data:`ProgressFn`) — the hook the job service streams to
        clients. ``cancel`` is polled between stages; when it returns
        True the run raises :class:`PipelineCancelled` (completed stages
        stay cached, so a resubmission resumes).
        """
        run = PipelineRun(config=self.config, context=context if context is not None else {})
        needed = self._needed_stages(targets)
        total = len(needed)
        for index, stage in enumerate(needed):
            if cancel is not None and cancel():
                raise PipelineCancelled(
                    f"run cancelled before stage '{stage.name}'",
                    stage=stage.name,
                )
            if progress is not None:
                progress(
                    {
                        "event": "stage_start",
                        "stage": stage.name,
                        "span": f"stage:{stage.name}",
                        "index": index,
                        "total": total,
                    }
                )
            inputs = {kind: run.artifacts[kind] for kind in stage.inputs}
            try:
                record, produced = self._run_stage(stage, inputs, run.context, force)
            except PipelineError:
                raise
            except ReproError as exc:
                raise PipelineError(
                    f"stage '{stage.name}' failed: {exc}", stage=stage.name
                ) from exc
            run.records.append(record)
            run.artifacts.update(produced)
            if progress is not None:
                progress(
                    {
                        "event": "stage_end",
                        "stage": stage.name,
                        "span": f"stage:{stage.name}",
                        "index": index,
                        "total": total,
                        "status": record.status,
                        "seconds": round(record.seconds, 6),
                        "bytes": record.bytes,
                        "hashes": dict(record.hashes),
                    }
                )
        return run

    def _load_cached(
        self, hashes: Dict[str, str]
    ) -> Optional[Dict[str, Artifact]]:
        cached = {kind: self.store.load(h) for kind, h in hashes.items()}
        if all(art is not None for art in cached.values()):
            return cached  # type: ignore[return-value]
        return None

    def _run_stage(
        self,
        stage: Stage,
        inputs: Dict[str, Artifact],
        context: Dict[str, Any],
        force: bool,
    ) -> Tuple[StageRecord, Dict[str, Artifact]]:
        hashes = self._output_hashes(
            stage, {kind: art.hash for kind, art in inputs.items()}
        )
        if not force:
            cached = self._load_cached(hashes)
            if cached is not None:
                obs.counter_inc("pipeline_cache_hits_total", stage=stage.name)
                return (
                    StageRecord(name=stage.name, status="hit", hashes=hashes),
                    cached,
                )
            # Miss: coalesce with any concurrent identical run before
            # computing. The leader executes while holding the advisory
            # lock; followers wait it out, then re-check — the entry the
            # leader published turns their computation into a read.
            flight = getattr(self.store, "single_flight", None)
            if flight is not None:
                key = sorted(hashes.values())[0]
                with flight(key) as leader:
                    if not leader:
                        cached = self._load_cached(hashes)
                        if cached is not None:
                            obs.counter_inc(
                                "pipeline_singleflight_coalesced_total",
                                stage=stage.name,
                            )
                            return (
                                StageRecord(
                                    name=stage.name,
                                    status="coalesced",
                                    hashes=hashes,
                                ),
                                cached,
                            )
                    else:
                        # Double-check inside the lock: another process
                        # may have published between our miss and the
                        # lock acquisition.
                        cached = self._load_cached(hashes)
                        if cached is not None:
                            obs.counter_inc(
                                "pipeline_cache_hits_total", stage=stage.name
                            )
                            return (
                                StageRecord(
                                    name=stage.name, status="hit", hashes=hashes
                                ),
                                cached,
                            )
                    return self._execute_stage(stage, inputs, context, hashes)

        return self._execute_stage(stage, inputs, context, hashes)

    def _execute_stage(
        self,
        stage: Stage,
        inputs: Dict[str, Artifact],
        context: Dict[str, Any],
        hashes: Dict[str, str],
    ) -> Tuple[StageRecord, Dict[str, Artifact]]:
        t0 = time.perf_counter()
        with obs.span(f"stage:{stage.name}", stage=stage.name) as sp:
            produced = stage.run(self.config, inputs, context)
        seconds = time.perf_counter() - t0

        missing = set(stage.outputs) - set(produced)
        if missing:
            raise PipelineError(
                f"stage '{stage.name}' did not produce {sorted(missing)}",
                stage=stage.name,
            )
        nbytes = 0
        for kind in stage.outputs:
            artifact = produced[kind]
            artifact.hash = hashes[kind]
            nbytes += self.store.save(artifact, stage.name)
        obs.counter_inc("pipeline_stage_runs_total", stage=stage.name)
        if obs.is_enabled():
            # The finished span is already recorded; attrs mutate in place.
            sp.attrs.update(
                {
                    "hashes": dict(hashes),
                    "bytes": nbytes,
                    "seconds": round(seconds, 6),
                }
            )
        return (
            StageRecord(
                name=stage.name,
                status="run",
                hashes=hashes,
                seconds=seconds,
                bytes=nbytes,
            ),
            {kind: produced[kind] for kind in stage.outputs},
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def clean(self) -> int:
        """Empty the artifact store; returns the number of artifacts
        removed."""
        return self.store.clean()

"""Content-addressed artifact stores, safe under concurrent writers.

An artifact's hash is derived from its *inputs* (stage version, upstream
hashes, config slice — see ``engine.py``), so a store lookup answers "has
this exact computation already run?" without touching the payload.

Two implementations share one interface:

* :class:`ArtifactStore` — a ``.repro_cache/`` directory of one JSON file
  per artifact; survives across processes and powers ``--resume`` and the
  multi-tenant routing service. Writes are **compare-and-publish**: a
  temp-file + atomic rename only lands when the hash is still absent, so
  N processes racing on one key leave exactly one valid entry. A derived
  SQLite index (``index.sqlite``) carries per-entry metadata — tenant,
  creation time, size, hit count, last use — for GC and quota accounting;
  deleting it is safe, it rebuilds from the JSON files. Advisory file
  locks under ``locks/`` give **single-flight** execution: concurrent
  identical stage runs coalesce on one computing leader while followers
  wait and then read the published result.
* :class:`MemoryStore` — a plain dict; used where caching should stay
  inside one process (the legacy ``repro route`` path, unit tests). It
  implements the same protocol with a thread lock, so the engine code is
  store-agnostic.

Corrupt entries (half-written files from a killed writer, truncated
JSON) are never fatal: ``load``/``entries`` skip them with a warning and
bump the ``store_corrupt_entries_total`` counter, and the stage simply
re-runs — republishing atomically over the damaged file.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .. import obs
from .artifacts import Artifact, artifact_from_record

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Store record schema; bumped on breaking layout changes.
STORE_SCHEMA = 1

#: Default cache location; ``REPRO_CACHE_DIR`` overrides it (mirrors the
#: ``REPRO_LEDGER_DIR`` idiom of the run ledger).
DEFAULT_CACHE_DIR = ".repro_cache"

INDEX_FILE = "index.sqlite"
LOCKS_DIR = "locks"

#: How long a single-flight follower waits for the leader before giving
#: up and computing itself (a crashed leader must never wedge the store).
SINGLE_FLIGHT_TIMEOUT_S = 600.0
_FOLLOWER_POLL_S = 0.02


def default_cache_dir() -> str:
    """The artifact store directory: ``$REPRO_CACHE_DIR`` or
    ``.repro_cache``."""
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def _warn_corrupt(path: Union[str, Path], exc: Exception) -> None:
    obs.counter_inc("store_corrupt_entries_total")
    warnings.warn(
        f"skipping corrupt artifact {path} ({exc}); the stage will re-run "
        f"and republish it",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class StoreEntry:
    """Metadata of one cached artifact (for ``repro pipeline show`` and
    the GC policy)."""

    kind: str
    stage: str
    hash: str
    bytes: int
    created_unix: float
    tenant: str = ""
    hits: int = 0
    last_used_unix: float = 0.0


class MemoryStore:
    """In-process artifact store (no disk I/O)."""

    def __init__(self) -> None:
        import threading

        self._artifacts: Dict[str, Artifact] = {}
        self._stages: Dict[str, str] = {}
        self._hits: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._flights: Dict[str, "threading.Lock"] = {}

    def has(self, hash: str) -> bool:
        return hash in self._artifacts

    def load(self, hash: str) -> Optional[Artifact]:
        with self._lock:
            art = self._artifacts.get(hash)
            if art is not None:
                self._hits[hash] = self._hits.get(hash, 0) + 1
            return art

    def publish(self, artifact: Artifact, stage: str, tenant: str = "") -> Tuple[int, bool]:
        """Compare-and-publish: first writer wins, later identical writes
        are no-ops. Returns ``(serialized bytes, newly published)``."""
        with self._lock:
            if artifact.hash in self._artifacts:
                return (0, False)
            self._artifacts[artifact.hash] = artifact
            self._stages[artifact.hash] = stage
            return (len(json.dumps(artifact.payload)), True)

    def save(self, artifact: Artifact, stage: str) -> int:
        nbytes, _ = self.publish(artifact, stage)
        return nbytes

    @contextmanager
    def single_flight(self, key: str, timeout_s: float = SINGLE_FLIGHT_TIMEOUT_S) -> Iterator[bool]:
        """Serialize identical computations: yields ``True`` for the
        leader (must compute + publish) and ``False`` for followers that
        waited a leader out (re-check the cache before computing)."""
        import threading

        with self._lock:
            lock = self._flights.setdefault(key, threading.Lock())
        if lock.acquire(blocking=False):
            try:
                yield True
            finally:
                lock.release()
            return
        got = lock.acquire(timeout=timeout_s)
        if got:
            lock.release()
        yield False

    def entries(self) -> List[StoreEntry]:
        return [
            StoreEntry(
                kind=art.kind,
                stage=self._stages.get(h, ""),
                hash=h,
                bytes=len(json.dumps(art.payload)),
                created_unix=0.0,
                hits=self._hits.get(h, 0),
            )
            for h, art in sorted(self._artifacts.items())
        ]

    def clean(self) -> int:
        with self._lock:
            count = len(self._artifacts)
            self._artifacts.clear()
            self._stages.clear()
            self._hits.clear()
            return count


class ArtifactStore:
    """Directory-backed content-addressed store (``.repro_cache/``).

    Layout: one ``<hash>.json`` file per artifact holding
    ``{"schema", "kind", "stage", "hash", "created_unix", "tenant",
    "payload"}``; JSON files are the source of truth. ``index.sqlite``
    is a derived metadata index (hit counts, tenants, sizes) that
    rebuilds itself lazily, and ``locks/`` holds the advisory lock files
    of the single-flight protocol. All writes are atomic (temp file +
    rename), so a crashed run never leaves a half-written artifact that
    a resume — or another tenant — would trust.
    """

    def __init__(self, root: Union[str, Path], tenant: str = "") -> None:
        self.root = Path(root)
        self.tenant = tenant

    # ------------------------------------------------------------------ #
    # Paths and the metadata index
    # ------------------------------------------------------------------ #

    def _path(self, hash: str) -> Path:
        return self.root / f"{hash}.json"

    def _index_path(self) -> Path:
        return self.root / INDEX_FILE

    @contextmanager
    def _index(self) -> Iterator[Optional[sqlite3.Connection]]:
        """A short-lived index connection (fork-safe, multi-process safe);
        yields ``None`` when the index cannot be opened — metadata is
        best-effort, artifact files never depend on it."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            con = sqlite3.connect(str(self._index_path()), timeout=30.0)
        except (OSError, sqlite3.Error):
            yield None
            return
        try:
            con.execute("PRAGMA busy_timeout=30000")
            con.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " hash TEXT PRIMARY KEY,"
                " kind TEXT NOT NULL DEFAULT '',"
                " stage TEXT NOT NULL DEFAULT '',"
                " bytes INTEGER NOT NULL DEFAULT 0,"
                " created_unix REAL NOT NULL DEFAULT 0,"
                " tenant TEXT NOT NULL DEFAULT '',"
                " hits INTEGER NOT NULL DEFAULT 0,"
                " last_used_unix REAL NOT NULL DEFAULT 0)"
            )
            yield con
            con.commit()
        except sqlite3.Error:
            try:
                con.rollback()
            except sqlite3.Error:
                pass
            # Swallow: the index is derived state; losing one metadata
            # update must never fail a pipeline run.
        finally:
            con.close()

    def _index_upsert(
        self, hash: str, kind: str, stage: str, nbytes: int, created: float
    ) -> None:
        with self._index() as con:
            if con is None:
                return
            con.execute(
                "INSERT INTO artifacts"
                " (hash, kind, stage, bytes, created_unix, tenant, hits,"
                "  last_used_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, 0, ?)"
                " ON CONFLICT(hash) DO UPDATE SET kind=excluded.kind,"
                "  stage=excluded.stage, bytes=excluded.bytes,"
                "  created_unix=excluded.created_unix",
                (hash, kind, stage, nbytes, created, self.tenant, created),
            )

    def _index_hit(self, hash: str) -> None:
        with self._index() as con:
            if con is None:
                return
            con.execute(
                "UPDATE artifacts SET hits = hits + 1, last_used_unix = ?"
                " WHERE hash = ?",
                (time.time(), hash),
            )

    def _index_meta(self) -> Dict[str, Tuple[str, int, float]]:
        """hash → (tenant, hits, last_used_unix) from the index."""
        out: Dict[str, Tuple[str, int, float]] = {}
        if not self._index_path().is_file():
            return out
        with self._index() as con:
            if con is None:
                return out
            try:
                rows = con.execute(
                    "SELECT hash, tenant, hits, last_used_unix FROM artifacts"
                ).fetchall()
            except sqlite3.Error:
                return out
            for hash, tenant, hits, last_used in rows:
                out[str(hash)] = (str(tenant), int(hits), float(last_used))
        return out

    def _index_forget(self, hashes: List[str]) -> None:
        if not hashes:
            return
        with self._index() as con:
            if con is None:
                return
            con.executemany(
                "DELETE FROM artifacts WHERE hash = ?", [(h,) for h in hashes]
            )

    # ------------------------------------------------------------------ #
    # The store protocol
    # ------------------------------------------------------------------ #

    def has(self, hash: str) -> bool:
        return self._path(hash).is_file()

    def load(self, hash: str) -> Optional[Artifact]:
        path = self._path(hash)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            # A killed writer on a non-atomic filesystem, or bit rot:
            # treat as a miss so the stage re-runs and republishes.
            _warn_corrupt(path, exc)
            return None
        if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
            # Older/newer layout: treat as a miss so the stage re-runs.
            return None
        try:
            art = artifact_from_record(record)
        except Exception as exc:
            _warn_corrupt(path, exc)
            return None
        self._index_hit(hash)
        return art

    def publish(self, artifact: Artifact, stage: str, tenant: str = "") -> Tuple[int, bool]:
        """Atomic compare-and-publish.

        If the hash is already present (some other process won the race)
        the existing entry is kept untouched and ``(0, False)`` returns;
        otherwise the record lands via temp file + rename and
        ``(serialized bytes, True)`` returns. Content addressing makes
        "keep the existing entry" correct: two publishes of one hash
        carry identical payloads by construction.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(artifact.hash)
        if path.is_file():
            return (0, False)
        created = time.time()
        record = {
            "schema": STORE_SCHEMA,
            "kind": artifact.kind,
            "stage": stage,
            "hash": artifact.hash,
            "created_unix": created,
            "tenant": tenant or self.tenant,
            "payload": artifact.payload,
        }
        data = json.dumps(record, sort_keys=True)
        # Per-process temp name: two racing writers must not clobber each
        # other's temp file mid-write.
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        tmp.write_text(data, encoding="utf-8")
        tmp.replace(path)
        self._index_upsert(
            artifact.hash, artifact.kind, stage, len(data), created
        )
        return (len(data), True)

    def save(self, artifact: Artifact, stage: str) -> int:
        nbytes, _ = self.publish(artifact, stage)
        return nbytes

    # ------------------------------------------------------------------ #
    # Single-flight
    # ------------------------------------------------------------------ #

    def _lock_path(self, key: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in key)
        return self.root / LOCKS_DIR / f"{safe}.lock"

    @contextmanager
    def single_flight(self, key: str, timeout_s: float = SINGLE_FLIGHT_TIMEOUT_S) -> Iterator[bool]:
        """Coalesce concurrent identical computations across processes.

        The first process to take the advisory lock for ``key`` is the
        *leader* (``yield True``): it computes and publishes while
        holding the lock. Every other process is a *follower*
        (``yield False``): it blocks until the leader releases (or
        ``timeout_s`` elapses — a crashed leader must not wedge the
        store), then re-checks the cache; the entry the leader published
        turns its computation into a read. Without ``fcntl`` (non-POSIX)
        everyone is a leader — correct, just without the dedup.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield True
            return
        path = self._lock_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                pass  # contended: follow below
            else:
                try:
                    yield True
                finally:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                return
            obs.counter_inc("store_single_flight_waits_total")
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    time.sleep(_FOLLOWER_POLL_S)
                    continue
                fcntl.flock(fd, fcntl.LOCK_UN)
                break
            yield False
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Listing and GC
    # ------------------------------------------------------------------ #

    def entries(self) -> List[StoreEntry]:
        out: List[StoreEntry] = []
        if not self.root.is_dir():
            return out
        meta = self._index_meta()
        for path in sorted(self.root.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                _warn_corrupt(path, exc)
                continue
            if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
                continue
            hash = str(record.get("hash", path.stem))
            tenant, hits, last_used = meta.get(
                hash, (str(record.get("tenant", "")), 0, 0.0)
            )
            out.append(
                StoreEntry(
                    kind=str(record.get("kind", "?")),
                    stage=str(record.get("stage", "?")),
                    hash=hash,
                    bytes=path.stat().st_size,
                    created_unix=float(record.get("created_unix", 0.0)),
                    tenant=tenant,
                    hits=hits,
                    last_used_unix=last_used,
                )
            )
        return out

    def clean(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        count = 0
        if not self.root.is_dir():
            return count
        removed: List[str] = []
        for path in self.root.glob("*.json"):
            path.unlink()
            removed.append(path.stem)
            count += 1
        for path in self.root.glob("*.tmp"):
            path.unlink()
        locks = self.root / LOCKS_DIR
        if locks.is_dir():
            for path in locks.glob("*.lock"):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._index_forget(removed)
        return count

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Policy-driven garbage collection; returns entries removed.

        ``max_age_days`` drops entries not used (nor created) within the
        window; ``max_bytes`` then evicts least-recently-used entries
        (by index hit metadata, falling back to creation time) until the
        store fits the budget. With neither bound this is a no-op — use
        :meth:`clean` for a full wipe.
        """
        if max_age_days is None and max_bytes is None:
            return 0
        entries = self.entries()
        victims: List[StoreEntry] = []
        now = time.time()
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            for e in list(entries):
                if max(e.last_used_unix, e.created_unix) < cutoff:
                    victims.append(e)
                    entries.remove(e)
        if max_bytes is not None:
            total = sum(e.bytes for e in entries)
            # Coldest first: least recently used, fewest hits, oldest.
            by_lru = sorted(
                entries,
                key=lambda e: (
                    max(e.last_used_unix, e.created_unix),
                    e.hits,
                    e.hash,
                ),
            )
            for e in by_lru:
                if total <= max_bytes:
                    break
                victims.append(e)
                total -= e.bytes
        removed: List[str] = []
        for e in victims:
            try:
                self._path(e.hash).unlink()
            except FileNotFoundError:
                continue
            removed.append(e.hash)
        self._index_forget(removed)
        obs.counter_inc("store_gc_removed_total", amount=len(removed))
        return len(removed)

"""Content-addressed artifact stores.

An artifact's hash is derived from its *inputs* (stage version, upstream
hashes, config slice — see ``engine.py``), so a store lookup answers "has
this exact computation already run?" without touching the payload.

Two implementations share one interface:

* :class:`ArtifactStore` — a ``.repro_cache/`` directory of one JSON file
  per artifact; survives across processes and powers ``--resume``.
* :class:`MemoryStore` — a plain dict; used where caching should stay
  inside one process (the legacy ``repro route`` path, unit tests).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import PipelineError
from .artifacts import Artifact, artifact_from_record

#: Store record schema; bumped on breaking layout changes.
STORE_SCHEMA = 1


@dataclass
class StoreEntry:
    """Metadata of one cached artifact (for ``repro pipeline show``)."""

    kind: str
    stage: str
    hash: str
    bytes: int
    created_unix: float


class MemoryStore:
    """In-process artifact store (no disk I/O)."""

    def __init__(self) -> None:
        self._artifacts: Dict[str, Artifact] = {}
        self._stages: Dict[str, str] = {}

    def has(self, hash: str) -> bool:
        return hash in self._artifacts

    def load(self, hash: str) -> Optional[Artifact]:
        return self._artifacts.get(hash)

    def save(self, artifact: Artifact, stage: str) -> int:
        self._artifacts[artifact.hash] = artifact
        self._stages[artifact.hash] = stage
        return len(json.dumps(artifact.payload))

    def entries(self) -> List[StoreEntry]:
        return [
            StoreEntry(
                kind=art.kind,
                stage=self._stages.get(h, ""),
                hash=h,
                bytes=len(json.dumps(art.payload)),
                created_unix=0.0,
            )
            for h, art in sorted(self._artifacts.items())
        ]

    def clean(self) -> int:
        count = len(self._artifacts)
        self._artifacts.clear()
        self._stages.clear()
        return count


class ArtifactStore:
    """Directory-backed content-addressed store (``.repro_cache/``).

    Layout: one ``<hash>.json`` file per artifact holding
    ``{"schema", "kind", "stage", "hash", "created_unix", "payload"}``.
    Writes go through a temp file + rename so a crashed run never leaves
    a half-written artifact that a resume would trust.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, hash: str) -> Path:
        return self.root / f"{hash}.json"

    def has(self, hash: str) -> bool:
        return self._path(hash).is_file()

    def load(self, hash: str) -> Optional[Artifact]:
        path = self._path(hash)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise PipelineError(
                f"corrupt artifact {path} — run 'repro pipeline clean' "
                f"or delete the file ({exc})"
            ) from None
        if record.get("schema") != STORE_SCHEMA:
            # Older/newer layout: treat as a miss so the stage re-runs.
            return None
        return artifact_from_record(record)

    def save(self, artifact: Artifact, stage: str) -> int:
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": STORE_SCHEMA,
            "kind": artifact.kind,
            "stage": stage,
            "hash": artifact.hash,
            "created_unix": time.time(),
            "payload": artifact.payload,
        }
        data = json.dumps(record, sort_keys=True)
        path = self._path(artifact.hash)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(data, encoding="utf-8")
        tmp.replace(path)
        return len(data)

    def entries(self) -> List[StoreEntry]:
        out: List[StoreEntry] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("schema") != STORE_SCHEMA:
                continue
            out.append(
                StoreEntry(
                    kind=str(record.get("kind", "?")),
                    stage=str(record.get("stage", "?")),
                    hash=str(record.get("hash", path.stem)),
                    bytes=path.stat().st_size,
                    created_unix=float(record.get("created_unix", 0.0)),
                )
            )
        return out

    def clean(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        count = 0
        if not self.root.is_dir():
            return count
        for path in self.root.glob("*.json"):
            path.unlink()
            count += 1
        for path in self.root.glob("*.json.tmp"):
            path.unlink()
        return count

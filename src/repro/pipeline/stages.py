"""The six pipeline stages of the paper's flow.

``load_design → build_grid → route → decompose → verify`` mirrors
Sections IV–V: netlist in, sequential overlay-aware routing with OCG
maintenance and color flipping, then mask decomposition and physical
verification; ``report`` digests the routing/coloring artifacts into the
user-facing report. The ``route`` stage emits two artifacts — the
geometric :class:`RoutingArtifact` and the :class:`ColoringArtifact`
digest — because the census/breakdown can only be captured while the
router's constraint graphs are live.

Each stage declares:

* ``inputs`` — upstream artifact kinds it consumes,
* ``outputs`` — artifact kinds it produces,
* ``version`` — bumped whenever the stage's semantics change, which
  invalidates every cached artifact it (and anything downstream) made,
* ``config_slice`` — the part of :class:`PipelineConfig` entering its
  content hash.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Tuple

from ..analysis.report import breakdown_by_scenario, build_report, scenario_census
from ..router.io import result_to_dict
from .artifacts import (
    Artifact,
    ColoringArtifact,
    DesignArtifact,
    GridArtifact,
    MaskArtifact,
    ReportArtifact,
    RoutingArtifact,
    VerifyArtifact,
    mask_set_to_dict,
)
from .config import PipelineConfig


class Stage:
    """One step of the pipeline; subclasses implement :meth:`run`."""

    name: str = ""
    version: str = "1"
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()

    def config_slice(self, config: PipelineConfig) -> Dict[str, Any]:
        return {}

    def fingerprint_extra(self, config: PipelineConfig) -> Dict[str, Any]:
        """Additional hash material beyond the config slice (e.g. the
        content hash of an input file)."""
        return {}

    def run(
        self,
        config: PipelineConfig,
        inputs: Dict[str, Artifact],
        context: Dict[str, Any],
    ) -> Dict[str, Artifact]:
        raise NotImplementedError


class LoadDesignStage(Stage):
    """Netlist file or benchmark instance → :class:`DesignArtifact`."""

    name = "load_design"
    version = "1"
    inputs = ()
    outputs = ("design",)

    def config_slice(self, config: PipelineConfig) -> Dict[str, Any]:
        return config.design_slice()

    def fingerprint_extra(self, config: PipelineConfig) -> Dict[str, Any]:
        if config.netlist is None:
            return {}
        from ..netlist.io import read_design_text

        text = read_design_text(config.netlist)
        return {"netlist_sha256": hashlib.sha256(text.encode("utf-8")).hexdigest()}

    def run(self, config, inputs, context):
        if config.netlist is not None:
            from ..netlist.io import read_design, read_design_text

            text = read_design_text(config.netlist)
            read_design(config.netlist)  # validates; raises with path + line
            payload = {
                "mode": "netlist",
                "source": str(config.netlist),
                "netlist_text": text,
                "width": config.width,
                "height": config.height,
                "num_layers": config.num_layers,
            }
        else:
            from ..bench.workloads import generate_benchmark, spec_by_name
            from ..netlist.io import netlist_to_text

            spec = spec_by_name(config.circuit)
            grid, nets = generate_benchmark(
                spec,
                scale=config.scale,
                seed=config.seed,
                num_layers=config.num_layers,
            )
            payload = {
                "mode": "benchmark",
                "source": f"{spec.name}@{config.scale}/seed{config.seed}",
                "netlist_text": netlist_to_text(nets),
                "width": grid.width,
                "height": grid.height,
                "num_layers": config.num_layers,
            }
        return {"design": DesignArtifact(payload)}


class BuildGridStage(Stage):
    """Design → :class:`GridArtifact` (dimensions + blockage rects)."""

    name = "build_grid"
    version = "1"
    inputs = ("design",)
    outputs = ("grid",)

    def config_slice(self, config: PipelineConfig) -> Dict[str, Any]:
        return config.grid_slice()

    def run(self, config, inputs, context):
        design: DesignArtifact = inputs["design"]
        blockages, _ = design.parse()
        payload = {
            "width": design.width,
            "height": design.height,
            "num_layers": design.num_layers,
            "blockages": [
                [layer, rect.xlo, rect.ylo, rect.xhi, rect.yhi]
                for layer, rect in blockages
            ],
        }
        return {"grid": GridArtifact(payload)}


#: Router factories by config name; baselines imported lazily.
def _router_factory(name: str) -> Callable:
    if name == "ours":
        from ..router import SadpRouter

        return SadpRouter
    from ..baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter

    return {
        "gao-pan": GaoPanTrimRouter,
        "cut16": CutNoMergeRouter,
        "du": DuTrimRouter,
    }[name]


class RouteStage(Stage):
    """Grid + netlist → routing result + coloring digest.

    The live router is exposed to the caller through ``context["router"]``
    (and a :class:`~repro.router.RouterTrace` through
    ``context["router_trace"]`` when ``context["want_router_trace"]`` is
    set) — both are run-local and never serialized.
    """

    name = "route"
    version = "1"
    inputs = ("design", "grid")
    outputs = ("routing", "coloring")

    def config_slice(self, config: PipelineConfig) -> Dict[str, Any]:
        return config.route_slice()

    def run(self, config, inputs, context):
        grid = inputs["grid"].build()
        netlist = inputs["design"].netlist()
        options = dict(config.router_options or {})
        if config.router == "ours":
            from ..router import SadpRouter

            kwargs: Dict[str, Any] = {
                "params": config.cost_params(),
                "order": config.order,
                "workers": config.workers,
                "guidance": config.guidance,
                "shard": config.shard,
                "kernel": config.kernel,
            }
            kwargs.update(options)
            router = SadpRouter(grid, netlist, **kwargs)
        else:
            router = _router_factory(config.router)(grid, netlist, **options)
        context["router"] = router
        if context.get("want_router_trace"):
            from ..router import RouterTrace

            context["router_trace"] = RouterTrace(router)
        result = router.route_all()
        context["result"] = result

        routing = RoutingArtifact({"result": result_to_dict(result)})
        coloring = ColoringArtifact(
            {
                "colorings": {
                    str(layer): {
                        str(net): color.value for net, color in coloring.items()
                    }
                    for layer, coloring in result.colorings.items()
                },
                "scenario_census": scenario_census(router),
                "overlay": breakdown_by_scenario(router).to_dict(),
            }
        )
        return {"routing": routing, "coloring": coloring}


class DecomposeStage(Stage):
    """Routing + coloring → synthesized SADP masks per layer."""

    name = "decompose"
    version = "1"
    inputs = ("grid", "routing", "coloring")
    outputs = ("mask",)

    def config_slice(self, config: PipelineConfig) -> Dict[str, Any]:
        return config.decompose_slice()

    def run(self, config, inputs, context):
        from ..decompose import routing_to_targets, synthesize_masks

        grid = inputs["grid"].build()
        result = inputs["routing"].result()
        colorings = inputs["coloring"].colorings()
        layers = []
        for layer in range(grid.num_layers):
            targets = routing_to_targets(
                grid, result, layer, coloring=colorings.get(layer)
            )
            if not targets:
                continue
            masks = synthesize_masks(
                targets, grid.rules, resolution=config.bitmap_resolution
            )
            layers.append({"layer": layer, "masks": mask_set_to_dict(masks)})
        return {"mask": MaskArtifact({"layers": layers})}


class VerifyStage(Stage):
    """Masks → per-layer physical verification report."""

    name = "verify"
    version = "1"
    inputs = ("mask",)
    outputs = ("verify",)

    def run(self, config, inputs, context):
        from ..decompose import verify_decomposition

        layers = []
        all_ok = True
        for layer, masks in inputs["mask"].mask_sets():
            report = verify_decomposition(masks)
            all_ok = all_ok and report.ok
            layers.append(
                {
                    "layer": layer,
                    "ok": report.ok,
                    "prints_correctly": report.prints_correctly,
                    "missing_target_px": report.missing_target_px,
                    "spacer_over_target_px": report.spacer_over_target_px,
                    "side_overlay_nm": report.overlay.side_overlay_nm,
                    "tip_overlay_nm": report.overlay.tip_overlay_nm,
                    "hard_overlay_count": report.overlay.hard_overlay_count,
                    "cut_conflicts": len(report.cut_conflicts),
                }
            )
        return {"verify": VerifyArtifact({"layers": layers, "ok": all_ok})}


class ReportStage(Stage):
    """Routing + coloring digests → the user-facing routing report."""

    name = "report"
    version = "1"
    inputs = ("routing", "coloring")
    outputs = ("report",)

    def run(self, config, inputs, context):
        result = inputs["routing"].result()
        coloring: ColoringArtifact = inputs["coloring"]
        report = build_report(
            result,
            coloring.scenario_census(),
            coloring.overlay_breakdown(),
            instrumentation=None,
        )
        return {
            "report": ReportArtifact(
                {"report": report.to_dict(), "summary": result.summary()}
            )
        }


#: Canonical stage order (a stage's inputs are always produced earlier).
def default_stages() -> Tuple[Stage, ...]:
    return (
        LoadDesignStage(),
        BuildGridStage(),
        RouteStage(),
        DecomposeStage(),
        VerifyStage(),
        ReportStage(),
    )

"""The single configuration object of a staged pipeline run.

A :class:`PipelineConfig` pins down everything a run depends on — the
design source (a netlist file or a paper benchmark instance), grid
dimensions, layer stack, worker count, overlay cost weights, and the
bitmap resolution of the decomposition engine. Stages declare which
*slice* of the config they depend on (see ``stages.py``), and only that
slice enters their content hash, so changing e.g. ``bitmap_resolution``
invalidates decompose/verify but leaves routing artifacts valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..errors import PipelineError
from ..router.cost import CostParams
from ..units import DEFAULT_BITMAP_RESOLUTION_NM
from .store import default_cache_dir

#: Router names the route stage can instantiate (the CLI's ``--router``).
KNOWN_ROUTERS = ("ours", "gao-pan", "cut16", "du")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one end-to-end run depends on.

    Exactly one design source must be set: ``netlist`` (path to a text
    design file; requires ``width``/``height``) or ``circuit`` (a paper
    benchmark name, ``Test1``..``Test10``, instantiated at ``scale`` with
    ``seed``).

    ``workers``, ``guidance``, ``shard`` and ``kernel`` deliberately do
    **not** enter any stage hash: parallel batch routing and
    region-sharded routing are bit-identical to sequential routing (see
    ``repro.router.parallel``), guided search is bit-identical to
    unguided search (see ``repro.router.guidance``), and the compiled
    search kernel is bit-identical to the interpreted fast path (see
    ``repro.router.kernel``), so the same design routed with different
    worker counts, shard modes, guidance modes or kernels shares one
    routing artifact.
    """

    # --- design source ------------------------------------------------- #
    netlist: Optional[str] = None
    circuit: Optional[str] = None
    scale: float = 0.15
    seed: int = 2014

    # --- grid ---------------------------------------------------------- #
    width: Optional[int] = None
    height: Optional[int] = None
    num_layers: int = 3

    # --- routing ------------------------------------------------------- #
    router: str = "ours"
    workers: Any = 1
    guidance: str = "auto"
    shard: str = "auto"
    kernel: str = "auto"
    order: str = "hpwl"
    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 1.5
    delta_tip: float = 0.5
    flip_threshold: float = 10.0
    #: Extra keyword arguments for the router constructor (must be
    #: JSON-serialisable; they enter the route stage's hash).
    router_options: Optional[Dict[str, Any]] = None

    # --- decomposition ------------------------------------------------- #
    bitmap_resolution: int = DEFAULT_BITMAP_RESOLUTION_NM

    # --- artifact store (not hashed; $REPRO_CACHE_DIR overrides the
    # --- .repro_cache default) ----------------------------------------- #
    cache_dir: str = field(default_factory=default_cache_dir)

    def validate(self) -> None:
        if (self.netlist is None) == (self.circuit is None):
            raise PipelineError(
                "config needs exactly one design source: netlist=<path> "
                "or circuit=<Test1..Test10>"
            )
        if self.netlist is not None and (self.width is None or self.height is None):
            raise PipelineError(
                "netlist designs need explicit grid dimensions "
                "(width and height, in tracks)"
            )
        if self.circuit is not None and not 0.0 < self.scale <= 1.0:
            raise PipelineError(f"scale must be in (0, 1], got {self.scale}")
        if self.num_layers <= 0:
            raise PipelineError(f"need at least one layer, got {self.num_layers}")
        if self.router not in KNOWN_ROUTERS:
            raise PipelineError(
                f"unknown router {self.router!r}; choose from {KNOWN_ROUTERS}"
            )
        if self.bitmap_resolution <= 0:
            raise PipelineError(
                f"bitmap_resolution must be positive, got {self.bitmap_resolution}"
            )
        if self.guidance not in ("off", "auto", "on"):
            raise PipelineError(
                f"guidance must be 'off', 'auto' or 'on', got {self.guidance!r}"
            )
        if self.shard not in ("off", "auto", "on"):
            raise PipelineError(
                f"shard must be 'off', 'auto' or 'on', got {self.shard!r}"
            )
        if self.kernel not in ("python", "auto", "numba"):
            raise PipelineError(
                f"kernel must be 'python', 'auto' or 'numba', "
                f"got {self.kernel!r}"
            )

    def cost_params(self) -> CostParams:
        """The overlay-aware router's cost knobs from this config."""
        return CostParams(
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            delta_tip=self.delta_tip,
            flip_threshold=self.flip_threshold,
        )

    # ------------------------------------------------------------------ #
    # Per-stage config slices (what enters each stage's content hash)
    # ------------------------------------------------------------------ #

    def design_slice(self) -> Dict[str, Any]:
        if self.netlist is not None:
            # The file's *content* hash is added by the stage fingerprint;
            # the path itself stays out so moving a file is not a miss.
            return {
                "mode": "netlist",
                "width": self.width,
                "height": self.height,
                "num_layers": self.num_layers,
            }
        return {
            "mode": "benchmark",
            "circuit": self.circuit,
            "scale": self.scale,
            "seed": self.seed,
            "num_layers": self.num_layers,
        }

    def grid_slice(self) -> Dict[str, Any]:
        # Dimensions live in the design artifact (whose hash is already an
        # input); nothing extra to pin here.
        return {}

    def route_slice(self) -> Dict[str, Any]:
        return {
            "router": self.router,
            "order": self.order,
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "delta_tip": self.delta_tip,
            "flip_threshold": self.flip_threshold,
            "router_options": dict(self.router_options or {}),
        }

    def decompose_slice(self) -> Dict[str, Any]:
        return {"bitmap_resolution": self.bitmap_resolution}

    def with_router(self, router: str, **overrides: Any) -> "PipelineConfig":
        """A copy targeting a different router variant (shares every
        upstream artifact of the same design)."""
        return replace(self, router=router, **overrides)

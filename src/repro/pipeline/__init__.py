"""Staged pipeline: typed artifacts, content-hash caching, resumable runs.

The paper's flow — netlist in, overlay-aware routing with OCG maintenance
and color flipping, then mask decomposition and physical verification —
as a declarative six-stage pipeline::

    load_design → build_grid → route → decompose → verify
                                  └───→ report

    from repro.pipeline import Pipeline, PipelineConfig

    config = PipelineConfig(circuit="Test1", scale=0.1)
    run = Pipeline(config).run()                 # full flow
    result = run.artifact("routing").result()    # a RoutingResult
    print(run.artifact("report").report().to_text())

Every artifact is content-hashed from its inputs (stage version +
upstream hashes + config slice) and persisted to a ``.repro_cache/``
store; re-running with an unchanged prefix is a cache hit, and a failed
run resumes at the first invalid stage. The CLI front-end is
``repro pipeline run/show/clean``; see ``docs/PIPELINE.md``.
"""

from .artifacts import (
    ARTIFACT_CLASSES,
    Artifact,
    ColoringArtifact,
    DesignArtifact,
    GridArtifact,
    MaskArtifact,
    ReportArtifact,
    RoutingArtifact,
    VerifyArtifact,
    mask_set_from_dict,
    mask_set_to_dict,
    replay_onto_grid,
)
from .config import KNOWN_ROUTERS, PipelineConfig
from .engine import ALL_STAGES, Pipeline, PipelineRun, StageRecord
from .observe import observed_command
from .stages import (
    BuildGridStage,
    DecomposeStage,
    LoadDesignStage,
    ReportStage,
    RouteStage,
    Stage,
    VerifyStage,
    default_stages,
)
from .store import ArtifactStore, MemoryStore, StoreEntry, default_cache_dir

__all__ = [
    "ALL_STAGES",
    "ARTIFACT_CLASSES",
    "Artifact",
    "ArtifactStore",
    "BuildGridStage",
    "ColoringArtifact",
    "DecomposeStage",
    "DesignArtifact",
    "GridArtifact",
    "KNOWN_ROUTERS",
    "LoadDesignStage",
    "MaskArtifact",
    "MemoryStore",
    "Pipeline",
    "PipelineConfig",
    "PipelineRun",
    "ReportArtifact",
    "ReportStage",
    "RouteStage",
    "RoutingArtifact",
    "Stage",
    "StageRecord",
    "StoreEntry",
    "VerifyArtifact",
    "VerifyStage",
    "default_stages",
    "default_cache_dir",
    "mask_set_from_dict",
    "mask_set_to_dict",
    "observed_command",
    "replay_onto_grid",
]

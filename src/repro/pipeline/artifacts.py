"""Typed, serializable pipeline artifacts.

Every stage boundary is a plain-JSON payload wrapped in a typed accessor
class, so artifacts round-trip through the content-addressed store and a
resumed run rebuilds exactly the objects a fresh run would have produced:

========== =================== =========================================
kind       class               carries
========== =================== =========================================
design     DesignArtifact      netlist text + blockages + grid dims
grid       GridArtifact        dimensions, layer count, blockage rects
routing    RoutingArtifact     the full RoutingResult (router.io schema)
coloring   ColoringArtifact    per-layer colors + scenario/overlay digest
mask       MaskArtifact        per-layer synthesized mask bitmaps
verify     VerifyArtifact      per-layer decomposition verification
report     ReportArtifact      the RoutingReport + summary line
========== =================== =========================================

Bitmaps are bit-packed, zlib-compressed, and base64-encoded — a Test1
clip's full mask set is a few kilobytes on disk.
"""

from __future__ import annotations

import base64
import zlib
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..analysis.report import OverlayBreakdown, RoutingReport
from ..color import Color
from ..decompose.bitmap import Bitmap
from ..decompose.masks import MaskSet
from ..decompose.target import TargetPattern
from ..errors import PipelineError
from ..geometry import Rect
from ..grid import RoutingGrid, default_layer_stack
from ..netlist import Netlist
from ..netlist.io import parse_design
from ..router.io import result_from_dict
from ..router.result import RoutingResult
from ..rules import DesignRules


class Artifact:
    """One immutable stage output: a kind tag, a content hash assigned by
    the engine, and a JSON-serialisable payload."""

    kind: str = "artifact"

    def __init__(self, payload: Dict[str, Any], hash: str = "") -> None:
        self.payload = payload
        self.hash = hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(hash={self.hash[:12]!r})"


class DesignArtifact(Artifact):
    """The loaded design: netlist text (the canonical serialisation) plus
    the grid dimensions it is meant to route on."""

    kind = "design"

    @property
    def width(self) -> int:
        return int(self.payload["width"])

    @property
    def height(self) -> int:
        return int(self.payload["height"])

    @property
    def num_layers(self) -> int:
        return int(self.payload["num_layers"])

    def parse(self) -> Tuple[List[Tuple[int, Rect]], Netlist]:
        """``(blockages, netlist)`` exactly as ``read_design`` returns."""
        return parse_design(self.payload["netlist_text"])

    def netlist(self) -> Netlist:
        return self.parse()[1]


class GridArtifact(Artifact):
    """Grid construction parameters (dimensions, layers, blockages)."""

    kind = "grid"

    def build(self) -> RoutingGrid:
        """A fresh grid with every blockage applied (no routes)."""
        grid = RoutingGrid(
            width=int(self.payload["width"]),
            height=int(self.payload["height"]),
            layers=default_layer_stack(int(self.payload["num_layers"])),
        )
        for layer, xlo, ylo, xhi, yhi in self.payload.get("blockages", ()):
            rect = Rect(xlo, ylo, xhi, yhi)
            targets = range(grid.num_layers) if layer < 0 else (layer,)
            for l in targets:
                grid.block(l, rect)
        return grid


class RoutingArtifact(Artifact):
    """The committed routing result, in the ``router.io`` JSON schema."""

    kind = "routing"

    def result(self) -> RoutingResult:
        return result_from_dict(self.payload["result"])


class ColoringArtifact(Artifact):
    """Per-layer mask colors plus the graph-side digests (scenario census
    and overlay breakdown) captured while the router was live."""

    kind = "coloring"

    def colorings(self) -> Dict[int, Dict[int, Color]]:
        return {
            int(layer): {int(net): Color(value) for net, value in coloring.items()}
            for layer, coloring in self.payload.get("colorings", {}).items()
        }

    def scenario_census(self) -> Dict[str, int]:
        return {
            str(k): int(v)
            for k, v in self.payload.get("scenario_census", {}).items()
        }

    def overlay_breakdown(self) -> OverlayBreakdown:
        return OverlayBreakdown.from_dict(self.payload.get("overlay", {}))


def _encode_bitmap(bmp: Bitmap) -> Dict[str, Any]:
    packed = np.packbits(bmp.data.astype(np.uint8))
    return {
        "shape": list(bmp.data.shape),
        "data": base64.b64encode(zlib.compress(packed.tobytes())).decode("ascii"),
    }


def _decode_bitmap(window: Rect, resolution: int, record: Dict[str, Any]) -> Bitmap:
    w, h = (int(v) for v in record["shape"])
    raw = np.frombuffer(
        zlib.decompress(base64.b64decode(record["data"])), dtype=np.uint8
    )
    bits = np.unpackbits(raw)[: w * h].reshape(w, h).astype(bool)
    return Bitmap(window, resolution, data=bits)


_MASK_FIELDS = (
    "target_bmp",
    "core_targets",
    "assist",
    "core_mask",
    "spacer",
    "cut_mask",
    "printed",
)


def mask_set_to_dict(masks: MaskSet) -> Dict[str, Any]:
    """Lower a full mask set to plain JSON data (compressed bitmaps)."""
    rules = masks.rules
    return {
        "window": [masks.window.xlo, masks.window.ylo, masks.window.xhi, masks.window.yhi],
        "resolution": masks.resolution,
        "rules": {
            "w_line": rules.w_line,
            "w_spacer": rules.w_spacer,
            "w_cut": rules.w_cut,
            "w_core": rules.w_core,
            "d_cut": rules.d_cut,
            "d_core": rules.d_core,
            "d_overlap": rules.d_overlap,
        },
        "targets": [
            {
                "net_id": t.net_id,
                "color": t.color.value,
                "rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in t.rects],
                "horizontal": list(t.horizontal),
            }
            for t in masks.targets
        ],
        "bitmaps": {name: _encode_bitmap(getattr(masks, name)) for name in _MASK_FIELDS},
    }


def mask_set_from_dict(data: Dict[str, Any]) -> MaskSet:
    """Rebuild a :class:`MaskSet` saved by :func:`mask_set_to_dict`."""
    window = Rect(*data["window"])
    resolution = int(data["resolution"])
    rules = DesignRules(**data["rules"])
    targets = [
        TargetPattern(
            net_id=int(t["net_id"]),
            rects=tuple(Rect(*r) for r in t["rects"]),
            color=Color(t["color"]),
            horizontal=tuple(bool(h) for h in t["horizontal"]),
        )
        for t in data["targets"]
    ]
    bitmaps = {
        name: _decode_bitmap(window, resolution, data["bitmaps"][name])
        for name in _MASK_FIELDS
    }
    return MaskSet(
        window=window,
        resolution=resolution,
        rules=rules,
        targets=targets,
        **bitmaps,
    )


class MaskArtifact(Artifact):
    """The synthesized SADP mask sets, one entry per layer with targets."""

    kind = "mask"

    def layers(self) -> List[int]:
        return [int(entry["layer"]) for entry in self.payload.get("layers", ())]

    def mask_sets(self) -> List[Tuple[int, MaskSet]]:
        return [
            (int(entry["layer"]), mask_set_from_dict(entry["masks"]))
            for entry in self.payload.get("layers", ())
        ]


class VerifyArtifact(Artifact):
    """Per-layer physical verification of the decomposition."""

    kind = "verify"

    @property
    def ok(self) -> bool:
        return bool(self.payload.get("ok", False))

    def layer_reports(self) -> List[Dict[str, Any]]:
        return list(self.payload.get("layers", ()))


class ReportArtifact(Artifact):
    """The final routing report plus the one-line summary."""

    kind = "report"

    @property
    def summary(self) -> str:
        return str(self.payload.get("summary", ""))

    def report(self) -> RoutingReport:
        return RoutingReport.from_dict(self.payload["report"])


ARTIFACT_CLASSES: Dict[str, Type[Artifact]] = {
    cls.kind: cls
    for cls in (
        DesignArtifact,
        GridArtifact,
        RoutingArtifact,
        ColoringArtifact,
        MaskArtifact,
        VerifyArtifact,
        ReportArtifact,
    )
}


def replay_onto_grid(grid: RoutingGrid, result: RoutingResult) -> RoutingGrid:
    """Re-apply a routing result's committed segments to a fresh grid.

    Restores the occupancy a live router would have left behind — what the
    SVG renderer and other occupancy-based consumers need when the result
    came out of the artifact cache instead of a live run.
    """
    for net_id, route in sorted(result.routes.items()):
        if not route.success:
            continue
        for seg in route.segments:
            grid.occupy_segment(seg, net_id)
    return grid


def artifact_from_record(record: Dict[str, Any]) -> Artifact:
    """Rebuild a typed artifact from a store record (``kind``/``hash``/
    ``payload``)."""
    kind = record.get("kind")
    cls = ARTIFACT_CLASSES.get(kind)
    if cls is None:
        raise PipelineError(f"unknown artifact kind {kind!r} in store")
    return cls(payload=record.get("payload", {}), hash=str(record.get("hash", "")))

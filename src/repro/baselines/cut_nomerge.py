"""The cut-process baseline [16], without the merge technique.

Published behaviour we reproduce:

* cut process with assist core patterns, so second patterns are normally
  spacer-protected — but when an assist core must merge with a core
  pattern, severe side overlays result (the paper's Fig. 22), which is
  exactly the CS/SC pricing of scenarios 2-a / 2-b / 3-d;
* **no merge technique for odd cycles**: abutting tips (type 1-b) cannot
  be merged-and-cut, so *any* coloring of a 1-b pair is a conflict
  (same colors would need a merge, different colors are hard overlays);
* colors are frozen when the net is routed; no color flipping.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..color import Color
from ..core.edges import ConstraintEdge
from ..core.scenario_detect import DetectedScenario
from ..core.scenarios import HARD, ScenarioType
from ..geometry import Segment
from ..router.result import RoutingResult
from .common import BaselineRouterBase


class CutNoMergeRouter(BaselineRouterBase):
    """The [16] baseline (fixed-pin benchmarks, Table III)."""

    #: Side-overlay units charged for a committed hard overlay (a hard
    #: overlay is by definition longer than one unit).
    HARD_OVERLAY_UNITS = 2.0

    def __init__(self, grid, netlist, params=None) -> None:
        super().__init__(grid, netlist, params)
        self._edges_by_net: Dict[int, List[Tuple[int, ConstraintEdge]]] = {}
        self._all_edges: List[Tuple[int, ConstraintEdge]] = []

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def choose_colors(
        self,
        net_id: int,
        segments: Sequence[Segment],
        scenarios: Sequence[DetectedScenario],
    ) -> Tuple[int, float]:
        entries = [
            (
                sc.layer,
                ConstraintEdge.from_scenario(
                    sc.net_a, sc.net_b, sc.scenario, sc.a_is_tip_owner, sc.overlap
                ),
            )
            for sc in scenarios
        ]
        for layer, edge in entries:
            self._edges_by_net.setdefault(edge.u, []).append((layer, edge))
            self._edges_by_net.setdefault(edge.v, []).append((layer, edge))
        self._all_edges.extend(entries)

        total_conflicts = 0
        for seg_layer in self.net_layers(segments):
            best_key = None
            best_color = Color.CORE
            for color in (Color.CORE, Color.SECOND):
                self.colorings[seg_layer][net_id] = color
                conflicts, _overlay = self._price_net(net_id, seg_layer)
                # [16]'s coloring is conflict-driven only; the overlay of
                # core/assist mergers is accepted, not optimised — that is
                # precisely the paper's criticism (Fig. 22).
                key = (conflicts,)
                if best_key is None or key < best_key:
                    best_key = key
                    best_color = color
            self.colorings[seg_layer][net_id] = best_color
            total_conflicts += best_key[0]
        return total_conflicts, 0.0

    def _price_net(self, net_id: int, layer: int) -> Tuple[int, float]:
        """(conflicts, overlay units) of the net's edges on one layer."""
        conflicts = 0
        overlay = 0.0
        coloring = self.colorings[layer]
        for edge_layer, edge in self._edges_by_net.get(net_id, ()):
            if edge_layer != layer:
                continue
            conflict, units = self._price_edge(edge, coloring)
            conflicts += conflict
            overlay += units
        return conflicts, overlay

    def _price_edge(
        self, edge: ConstraintEdge, coloring: Dict[int, Color]
    ) -> Tuple[int, float]:
        cu = coloring.get(edge.u, Color.CORE)
        cv = coloring.get(edge.v, Color.CORE)
        if edge.scenario is ScenarioType.T1B:
            # No merge technique: every abutting-tip pair is a conflict.
            return 1, 0.0
        cost = edge.pair_cost(cu, cv)
        if cost == HARD:
            return 1, self.HARD_OVERLAY_UNITS * max(edge.overlap, 1)
        return 0, cost

    def on_undo(self, net_id: int) -> None:
        entries = self._edges_by_net.pop(net_id, [])
        doomed = {id(edge) for _, edge in entries}
        if not doomed:
            return
        self._all_edges = [
            (layer, e) for layer, e in self._all_edges if id(e) not in doomed
        ]
        for other in list(self._edges_by_net):
            self._edges_by_net[other] = [
                (layer, e)
                for layer, e in self._edges_by_net[other]
                if id(e) not in doomed
            ]

    def collect_metrics(self, result: RoutingResult) -> None:
        """Complete-model evaluation of the committed layout.

        On top of the conflicts [16] itself sees, the complete model
        charges the type A cut conflicts of the committed color choices —
        the scenarios' ``cut_risk`` combos, which [16] does not model.
        """
        overlay_units = 0.0
        conflicts = 0
        for layer, edge in self._all_edges:
            coloring = self.colorings[layer]
            conflict, units = self._price_edge(edge, coloring)
            conflicts += conflict
            overlay_units += units
            cu = coloring.get(edge.u, Color.CORE)
            cv = coloring.get(edge.v, Color.CORE)
            if edge.scenario is not ScenarioType.T1B and edge.has_cut_risk(cu, cv):
                conflicts += 1
        result.overlay_units = overlay_units
        result.overlay_nm = overlay_units * self.grid.rules.overlay_unit_nm
        result.cut_conflicts = conflicts

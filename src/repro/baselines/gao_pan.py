"""Gao & Pan [11]: simultaneous trim-process routing and decomposition.

Published behaviour we reproduce:

* trim process, **no assist core patterns** — every second-pattern flank
  not facing an adjacent-track core is trim-defined and overlays ("both
  studies do not consider assistant core patterns during routing,
  resulting in significant overlays");
* the color of a net is **fixed when it is routed** (no flipping);
* trim conflicts arise from same-color sub-rule proximity and parallel
  line ends; the router retries a few times, then commits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..color import Color
from ..core.scenario_detect import DetectedScenario
from ..geometry import Segment
from ..router.result import RoutingResult
from .common import BaselineRouterBase
from .trim_model import TrimAccounting


class GaoPanTrimRouter(BaselineRouterBase):
    """The [11] baseline (fixed-pin benchmarks, Table III)."""

    def __init__(self, grid, netlist, params=None) -> None:
        super().__init__(grid, netlist, params)
        self.accounting = TrimAccounting(grid.rules, grid.num_layers)

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def choose_colors(
        self,
        net_id: int,
        segments: Sequence[Segment],
        scenarios: Sequence[DetectedScenario],
    ) -> Tuple[int, float]:
        """Freeze the cheaper of the two colors, independently per layer.

        Pricing is trim semantics: conflicts dominate, then the overlay a
        SECOND assignment would add on unprotected flanks.
        """
        records = self.records_of(net_id, segments)
        self.accounting.add_net(net_id, records, scenarios)
        total_visible = 0
        for layer in self.net_layers(segments):
            best: Tuple[int, float] = None  # (visible conflicts, overlay)
            best_color = Color.CORE
            for color in (Color.CORE, Color.SECOND):
                self.colorings[layer][net_id] = color
                visible = self._visible_layer_conflicts(net_id, layer)
                overlay = sum(
                    self.accounting.fragment_overlay_nm(r, self.colorings[layer])
                    for r in records
                    if r.layer == layer
                )
                key = (visible, overlay)
                if best is None or key < best:
                    best = key
                    best_color = color
            self.colorings[layer][net_id] = best_color
            total_visible += best[0]
        return total_visible, 0.0

    def _visible_layer_conflicts(self, net_id: int, layer: int) -> int:
        coloring = self.colorings[layer]
        total = 0
        for sc in self.accounting.scenarios_of(net_id):
            if sc.layer != layer:
                continue
            ca = coloring.get(sc.net_a, Color.CORE)
            cb = coloring.get(sc.net_b, Color.CORE)
            total += self.accounting.visible_pair_conflicts(sc, ca, cb)
        return total

    def on_undo(self, net_id: int) -> None:
        self.accounting.remove_net(net_id)

    def collect_metrics(self, result: RoutingResult) -> None:
        evaluation = self.accounting.evaluate(self.colorings)
        result.overlay_nm = evaluation.overlay_nm
        result.overlay_units = evaluation.overlay_nm / self.grid.rules.overlay_unit_nm
        result.cut_conflicts = evaluation.conflicts

"""Overlay and conflict accounting for the SADP *trim* process.

The trim baselines ([10], [11]) do not use assist cores, so the rules
differ fundamentally from the cut process:

* a SECOND pattern's flank is protected only where a CORE pattern runs on
  the directly adjacent track (the core's spacer lands on that flank);
  every other flank section is defined by the trim mask -> side overlay;
* same-color patterns below the mask spacing rule conflict outright —
  the trim process cannot merge-and-cut: adjacent-track same-color pairs
  (1-a geometry) and abutting tips (1-b geometry) of the same color are
  *trim conflicts* / core-spacing conflicts;
* diagonal same-core pairs (3-a geometry) violate ``d_core`` as well.

:class:`TrimAccounting` consumes the same scenario stream as the cut
router's constraint graph but prices it with trim semantics, and adds the
per-fragment base overlay of unprotected second-pattern flanks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..color import Color, ColorPair
from ..core.scenario_detect import DetectedScenario, ShapeRecord
from ..core.scenarios import ScenarioType
from ..geometry import Interval, IntervalSet, Rect
from ..rules import DesignRules

#: Scenario/color combinations that are conflicts under the trim process.
#: (scenario, same_color?, colors that conflict)
_CONFLICT_TABLE: Dict[ScenarioType, Tuple[ColorPair, ...]] = {
    # Adjacent tracks, same color: not mergeable in trim -> conflict.
    ScenarioType.T1A: (ColorPair.CC, ColorPair.SS),
    # Abutting tips: CC violates d_core; SS puts two trim line ends at a
    # sub-rule distance (the paper's "parallel line ends").
    ScenarioType.T1B: (ColorPair.CC, ColorPair.SS),
    # Diagonal corners at sqrt(2)*(pitch - w_line) < d_core.
    ScenarioType.T3A: (ColorPair.CC,),
    ScenarioType.T3B: (ColorPair.CC,),
}


@dataclass
class TrimEvaluation:
    """Aggregate trim-process metrics for a committed layout."""

    overlay_nm: int
    conflicts: int


class TrimAccounting:
    """Layer-by-layer trim-process bookkeeping for the baseline routers.

    Tracks, per layer, the committed wire fragments of every net and the
    scenario instances between them; prices any color assignment with trim
    semantics.
    """

    def __init__(self, rules: DesignRules, num_layers: int) -> None:
        self.rules = rules
        self.num_layers = num_layers
        self._fragments: Dict[int, List[ShapeRecord]] = {}
        self._scenarios: List[DetectedScenario] = []
        self._scenarios_by_net: Dict[int, List[DetectedScenario]] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_net(
        self, net_id: int, records: Iterable[ShapeRecord], scenarios: Iterable[DetectedScenario]
    ) -> None:
        self._fragments.setdefault(net_id, []).extend(records)
        for sc in scenarios:
            self._scenarios.append(sc)
            self._scenarios_by_net.setdefault(sc.net_a, []).append(sc)
            self._scenarios_by_net.setdefault(sc.net_b, []).append(sc)

    def remove_net(self, net_id: int) -> None:
        self._fragments.pop(net_id, None)
        doomed = {
            id(sc) for sc in self._scenarios_by_net.pop(net_id, [])
        }
        if doomed:
            self._scenarios = [sc for sc in self._scenarios if id(sc) not in doomed]
            for bucket in self._scenarios_by_net.values():
                bucket[:] = [sc for sc in bucket if id(sc) not in doomed]

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def pair_conflicts(
        self, scenario: DetectedScenario, color_a: Color, color_b: Color
    ) -> int:
        """1 when the scenario's colors conflict under trim rules."""
        table = _CONFLICT_TABLE.get(scenario.scenario)
        if table is None:
            return 0
        return 1 if ColorPair.of(color_a, color_b) in table else 0

    def visible_pair_conflicts(
        self, scenario: DetectedScenario, color_a: Color, color_b: Color
    ) -> int:
        """The *partial* conflict view of the published trim routers.

        [10] and [11] model the aligned rules — parallel adjacent tracks
        (1-a) and abutting tips (1-b), both basic trim-process spacing —
        but not the diagonal scenarios ("published routers can handle
        only partial overlay scenarios"). They avoid what they see and
        silently commit the rest — which is where their reported conflict
        counts come from when the complete model re-evaluates the result.
        """
        if scenario.scenario not in (ScenarioType.T1A, ScenarioType.T1B):
            return 0
        return self.pair_conflicts(scenario, color_a, color_b)

    def scenarios_of(self, net_id: int) -> List[DetectedScenario]:
        """All scenario instances a net participates in."""
        return list(self._scenarios_by_net.get(net_id, ()))

    def net_conflicts(
        self, net_id: int, coloring: Dict[int, Color], layer: int = None
    ) -> int:
        """Conflicts on scenarios incident to one net under a coloring.

        ``coloring`` is a single layer's assignment; pass ``layer`` to
        restrict the scenarios to that layer (colors are per-layer).
        """
        total = 0
        for sc in self._scenarios_by_net.get(net_id, ()):
            if layer is not None and sc.layer != layer:
                continue
            ca = coloring.get(sc.net_a, Color.CORE)
            cb = coloring.get(sc.net_b, Color.CORE)
            total += self.pair_conflicts(sc, ca, cb)
        return total

    def fragment_overlay_nm(
        self, record: ShapeRecord, coloring: Dict[int, Color]
    ) -> int:
        """Side overlay of one SECOND fragment: unprotected flank length.

        Each flank starts fully exposed; sections facing a CORE fragment
        on the directly adjacent track (the 1-a geometry) are protected by
        that core's spacer. CORE fragments have no side overlay (their
        boundary is core-mask defined).
        """
        if coloring.get(record.net_id, Color.CORE) is Color.CORE:
            return 0
        pitch = self.rules.pitch
        rect = record.rect
        if record.horizontal:
            flank_span = Interval(rect.xlo, rect.xhi)
            tracks = (rect.ylo - 1, rect.ylo + 1)  # one-track offsets
        else:
            flank_span = Interval(rect.ylo, rect.yhi)
            tracks = (rect.xlo - 1, rect.xlo + 1)

        total_px = 0
        for track in tracks:
            protected: List[Interval] = []
            for sc in self._scenarios_by_net.get(record.net_id, ()):
                if sc.scenario is not ScenarioType.T1A or sc.layer != record.layer:
                    continue
                mine = sc.rect_a if sc.net_a == record.net_id else sc.rect_b
                if mine != rect:
                    continue
                other_net = sc.net_b if sc.net_a == record.net_id else sc.net_a
                if coloring.get(other_net, Color.CORE) is not Color.CORE:
                    continue
                other_rect = sc.rect_b if sc.net_a == record.net_id else sc.rect_a
                if record.horizontal:
                    if other_rect.ylo != track:
                        continue
                    cover = Interval(other_rect.xlo, other_rect.xhi).intersection(
                        flank_span
                    )
                else:
                    if other_rect.xlo != track:
                        continue
                    cover = Interval(other_rect.ylo, other_rect.yhi).intersection(
                        flank_span
                    )
                if cover is not None:
                    protected.append(cover)
            exposed = IntervalSet([flank_span]).subtract(IntervalSet(protected))
            total_px += exposed.total_length
        return total_px * pitch  # track cells -> nm of flank length

    def evaluate(self, colorings: List[Dict[int, Color]]) -> TrimEvaluation:
        """Price the committed layout: total overlay nm + conflicts."""
        overlay = 0
        conflicts = 0
        for sc in self._scenarios:
            ca = colorings[sc.layer].get(sc.net_a, Color.CORE)
            cb = colorings[sc.layer].get(sc.net_b, Color.CORE)
            conflicts += self.pair_conflicts(sc, ca, cb)
        for net_id, records in self._fragments.items():
            for record in records:
                overlay += self.fragment_overlay_nm(
                    record, colorings[record.layer]
                )
        return TrimEvaluation(overlay_nm=overlay, conflicts=conflicts)

    def net_overlay_nm(self, net_id: int, colorings: List[Dict[int, Color]]) -> int:
        return sum(
            self.fragment_overlay_nm(record, colorings[record.layer])
            for record in self._fragments.get(net_id, ())
        )

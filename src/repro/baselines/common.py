"""Shared machinery of the baseline routers.

All three baselines follow the same sequential skeleton — A* search (plain
wirelength + via costs, no overlay awareness in the search), scenario
detection against committed nets, a greedy *frozen* color choice, and a
small rip-up budget when the freshly routed net conflicts. What differs is
the pricing model (trim vs. cut semantics) and the candidate handling
([10]'s exhaustive pin-pair search), which subclasses provide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..color import Color
from ..core.scenario_detect import DetectedScenario, ScenarioDetector, ShapeRecord
from ..geometry import Point, Segment
from ..grid import RoutingGrid
from ..netlist import Net, Netlist
from ..router.astar import AStarRouter, SearchRequest, SearchResult
from ..router.cost import CostParams
from ..router.result import NetRoute, RoutingResult


class BaselineRouterBase:
    """Sequential route-then-freeze-color loop common to [10], [11], [16]."""

    #: Rip-up attempts when the routed net cannot be colored cleanly.
    RIPUP_BUDGET = 2

    def __init__(
        self,
        grid: RoutingGrid,
        netlist: Netlist,
        params: Optional[CostParams] = None,
    ) -> None:
        self.grid = grid
        self.netlist = netlist
        self.params = params or CostParams(gamma=0.0)  # no overlay term in Eq. 5
        self.detector = ScenarioDetector(grid.num_layers)
        self.colorings: List[Dict[int, Color]] = [
            {} for _ in range(grid.num_layers)
        ]
        self._penalties: Dict[Tuple[int, int, int], float] = {}
        self.engine = AStarRouter(grid, self.params, penalty_map=self._penalties)
        self._reserve_pins()

    def _reserve_pins(self) -> None:
        """Claim pin candidate cells up front (same policy as SadpRouter)."""
        self._pin_cells: Dict[int, List[Tuple[int, Point]]] = {}
        for net in self.netlist:
            cells = []
            for pin in (net.source, net.target):
                for p in pin.candidates:
                    if self.grid.in_bounds(pin.layer, p) and self.grid.is_free(
                        pin.layer, p
                    ):
                        self.grid.occupy(pin.layer, p, net.net_id)
                        cells.append((pin.layer, p))
            self._pin_cells[net.net_id] = cells

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #

    def choose_colors(
        self, net_id: int, segments: Sequence[Segment], scenarios: Sequence[DetectedScenario]
    ) -> Tuple[int, float]:
        """Greedily freeze the net's per-layer colors.

        Must write into ``self.colorings`` and return
        ``(conflicts, overlay_delta_nm)`` for the chosen assignment.
        """
        raise NotImplementedError

    def on_commit(self, net_id: int, segments: Sequence[Segment], scenarios: Sequence[DetectedScenario]) -> None:
        """Bookkeeping after a net is committed (optional)."""

    def on_undo(self, net_id: int) -> None:
        """Bookkeeping when a tentative net is ripped up (optional)."""

    def collect_metrics(self, result: RoutingResult) -> None:
        """Fill overlay/conflict totals for the committed layout."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def route_all(self) -> RoutingResult:
        # Same stopwatch-span timing as SadpRouter.route_all, so baseline
        # runs land in the same run log with comparable cpu_seconds.
        with obs.stopwatch("route_all", nets=len(self.netlist)) as sw:
            result = RoutingResult()
            for net in self.netlist.ordered_for_routing():
                with obs.span("route_net", net_id=net.net_id):
                    result.routes[net.net_id] = self.route_net(net)
            result.colorings = {
                layer: dict(coloring)
                for layer, coloring in enumerate(self.colorings)
            }
            self.collect_metrics(result)
            result.total_ripups = sum(r.ripups for r in result.routes.values())
        result.cpu_seconds = sw.duration_s
        return result

    def route_net(self, net: Net) -> NetRoute:
        route = NetRoute(net_id=net.net_id)
        self._penalties.clear()
        request = SearchRequest(
            net_id=net.net_id,
            sources=[(net.source.layer, p) for p in net.source.candidates],
            targets=[(net.target.layer, p) for p in net.target.candidates],
        )
        for attempt in range(self.RIPUP_BUDGET + 1):
            found = self.engine.search(
                request, extra_margin=attempt * self.params.margin_growth
            )
            if found is None:
                continue
            self._occupy(net.net_id, found)
            scenarios = self.detector.add_net(net.net_id, found.segments)
            visible, _ = self.choose_colors(net.net_id, found.segments, scenarios)
            if visible == 0:
                # The route looks clean *to this router's partial model*;
                # the complete model may still find conflicts afterwards,
                # which is where the tables' #C columns come from.
                self.on_commit(net.net_id, found.segments, scenarios)
                route.success = True
                route.segments = found.segments
                route.vias = found.vias
                return route
            # Visible conflict: rip up, penalise, retry. With colors
            # frozen at route time there is no flipping to fall back on,
            # so nets in sandwiched regions simply fail (Fig. 13).
            self._release(net.net_id, found)
            route.ripups += 1
            if attempt < self.RIPUP_BUDGET:
                for layer, x, y in found.nodes:
                    key = (layer, x, y)
                    self._penalties[key] = (
                        self._penalties.get(key, 0.0) + self.params.ripup_penalty
                    )
        return route

    # ------------------------------------------------------------------ #
    # Grid bookkeeping
    # ------------------------------------------------------------------ #

    def _occupy(self, net_id: int, found: SearchResult) -> None:
        for layer, x, y in found.nodes:
            self.grid.occupy(layer, Point(x, y), net_id)

    def _release(self, net_id: int, found: SearchResult) -> None:
        self.detector.remove_net(net_id)
        self.grid.release_net(net_id)
        for layer, p in self._pin_cells.get(net_id, ()):
            self.grid.occupy(layer, p, net_id)  # keep pins reserved
        for layer in range(self.grid.num_layers):
            self.colorings[layer].pop(net_id, None)
        self.on_undo(net_id)

    @staticmethod
    def records_of(net_id: int, segments: Sequence[Segment]) -> List[ShapeRecord]:
        return [
            ShapeRecord(
                net_id=net_id,
                rect=seg.to_rect(),
                horizontal=seg.horizontal,
                layer=seg.layer,
            )
            for seg in segments
        ]

    @staticmethod
    def net_layers(segments: Sequence[Segment]) -> Set[int]:
        return {seg.layer for seg in segments}

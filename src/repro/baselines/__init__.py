"""Reimplementations of the three state-of-the-art baselines.

The paper compares against (binary codes unavailable, so it reimplemented
them — as do we, from their published behaviour):

* **Gao & Pan [11]** (`GaoPanTrimRouter`) — trim-process router that
  performs routing and layout decomposition simultaneously, freezing each
  net's color when it is routed; no assist cores, no color flipping.
* **The cut-process router [16]** (`CutNoMergeRouter`) — uses the cut
  process and assist cores but never applies the merge technique to odd
  cycles; colors are likewise frozen at route time, and core/assist-core
  mergers induce severe side overlays.
* **Du et al. [10]** (`DuTrimRouter`) — trim-process router supporting
  multiple pin candidate locations; it searches exhaustively over the
  candidate-pair space and re-evaluates the full conflict state per
  candidate, which reproduces its published orders-of-magnitude slowdown.
"""

from .trim_model import TrimAccounting
from .gao_pan import GaoPanTrimRouter
from .cut_nomerge import CutNoMergeRouter
from .du_trim import DuTrimRouter

__all__ = [
    "TrimAccounting",
    "GaoPanTrimRouter",
    "CutNoMergeRouter",
    "DuTrimRouter",
]

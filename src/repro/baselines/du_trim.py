"""Du et al. [10]: trim-process routing with multiple pin candidates.

Published behaviour we reproduce:

* trim process, no assist cores (same accounting as [11]);
* **multiple pin candidate locations**: every two-pin net offers several
  legal locations per pin, and the router commits to one pair;
* the algorithm explores the candidate space exhaustively — it runs a
  separate search per (source candidate, target candidate) pair and
  re-prices the *entire* committed conflict state for each, which is
  what makes it orders of magnitude slower than the proposed router
  (Table IV reports a 2520x speedup and >10^5 s timeouts on the larger
  benchmarks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..color import Color
from ..core.scenario_detect import DetectedScenario
from ..geometry import Point, Segment
from ..netlist import Net
from ..router.astar import SearchRequest, SearchResult
from ..router.result import NetRoute, RoutingResult
from .common import BaselineRouterBase
from .trim_model import TrimAccounting


class DuTrimRouter(BaselineRouterBase):
    """The [10] baseline (multi-pin-candidate benchmarks, Table IV)."""

    def __init__(self, grid, netlist, params=None, time_budget_s: Optional[float] = None) -> None:
        super().__init__(grid, netlist, params)
        self.accounting = TrimAccounting(grid.rules, grid.num_layers)
        #: Optional wall-clock budget; the paper aborts [10] beyond 10^5 s.
        self.time_budget_s = time_budget_s
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Candidate-exhaustive routing
    # ------------------------------------------------------------------ #

    def route_all(self) -> RoutingResult:
        import time

        if self.time_budget_s is not None:
            self._deadline = time.perf_counter() + self.time_budget_s
        return super().route_all()

    def route_net(self, net: Net) -> NetRoute:
        import time

        route = NetRoute(net_id=net.net_id)
        if self._deadline is not None and time.perf_counter() > self._deadline:
            return route  # budget exhausted: remaining nets unrouted
        self._penalties.clear()

        best: Optional[Tuple[Tuple[int, float, float], SearchResult]] = None
        # Exhaustive pin-pair sweep: one full search per candidate pair,
        # each priced by tentatively committing and re-evaluating the
        # whole layout (this is the published algorithm's cost profile).
        for src in net.source.candidates:
            for dst in net.target.candidates:
                request = SearchRequest(
                    net_id=net.net_id,
                    sources=[(net.source.layer, src)],
                    targets=[(net.target.layer, dst)],
                )
                found = self.engine.search(request)
                if found is None:
                    continue
                key = self._price_candidate(net.net_id, found)
                if best is None or key < best[0]:
                    best = (key, found)
        if best is None:
            return route

        _, found = best
        self._occupy(net.net_id, found)
        scenarios = self.detector.add_net(net.net_id, found.segments)
        visible, _ = self.choose_colors(net.net_id, found.segments, scenarios)
        if visible > 0:
            # Even the best candidate pair conflicts in [10]'s own model:
            # the net fails (frozen colors leave nothing to flip).
            self._release(net.net_id, found)
            route.ripups += 1
            return route
        route.success = True
        route.segments = found.segments
        route.vias = found.vias
        return route

    def _price_candidate(
        self, net_id: int, found: SearchResult
    ) -> Tuple[int, float, float]:
        """Tentatively commit, evaluate the FULL layout, roll back.

        Returns (total conflicts, total overlay nm, path cost) — the
        full-layout re-evaluation per candidate is the deliberate
        inefficiency of the published approach.
        """
        self._occupy(net_id, found)
        scenarios = self.detector.add_net(net_id, found.segments)
        self.choose_colors(net_id, found.segments, scenarios)
        evaluation = self.accounting.evaluate(self.colorings)
        key = (evaluation.conflicts, float(evaluation.overlay_nm), found.cost)
        self._release(net_id, found)
        return key

    # ------------------------------------------------------------------ #
    # Hooks (trim pricing, same as Gao-Pan)
    # ------------------------------------------------------------------ #

    def choose_colors(
        self,
        net_id: int,
        segments: Sequence[Segment],
        scenarios: Sequence[DetectedScenario],
    ) -> Tuple[int, float]:
        records = self.records_of(net_id, segments)
        self.accounting.add_net(net_id, records, scenarios)
        total_visible = 0
        for layer in self.net_layers(segments):
            best_key = None
            best_color = Color.CORE
            for color in (Color.CORE, Color.SECOND):
                self.colorings[layer][net_id] = color
                visible = sum(
                    self.accounting.visible_pair_conflicts(
                        sc,
                        self.colorings[layer].get(sc.net_a, Color.CORE),
                        self.colorings[layer].get(sc.net_b, Color.CORE),
                    )
                    for sc in self.accounting.scenarios_of(net_id)
                    if sc.layer == layer
                )
                overlay = sum(
                    self.accounting.fragment_overlay_nm(r, self.colorings[layer])
                    for r in records
                    if r.layer == layer
                )
                key = (visible, overlay)
                if best_key is None or key < best_key:
                    best_key = key
                    best_color = color
            self.colorings[layer][net_id] = best_color
            total_visible += best_key[0]
        return total_visible, 0.0

    def on_undo(self, net_id: int) -> None:
        self.accounting.remove_net(net_id)

    def collect_metrics(self, result: RoutingResult) -> None:
        evaluation = self.accounting.evaluate(self.colorings)
        result.overlay_nm = evaluation.overlay_nm
        result.overlay_units = evaluation.overlay_nm / self.grid.rules.overlay_unit_nm
        result.cut_conflicts = evaluation.conflicts

"""Job model of the routing service: states, events, registry, spool.

A *job* is one pipeline run requested over HTTP. Its lifecycle is
``queued → running → done | failed | cancelled``; every transition and
every per-stage progress callback of the engine lands here as an
*event* — an append-only, timestamped dict the ``/jobs/<id>/events``
endpoint streams verbatim. The :class:`JobState` snapshot (what
``GET /jobs/<id>`` returns) is folded from those events, so the server
process never needs to share memory with the worker that executes the
pipeline.

Design texts submitted with a job are spooled content-addressed
(``spool/<sha16>.nets``): two tenants submitting byte-identical designs
share one spool file, and — because the ``load_design`` stage hashes the
file *content*, not its path — every downstream artifact too.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ReproError

#: Job states; the last three are terminal.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATUSES = ("done", "failed", "cancelled")


class ServiceError(ReproError):
    """Raised for invalid service requests (bad submission, unknown job,
    quota exceeded); carries the HTTP status the server should answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def new_job_id() -> str:
    return f"j{secrets.token_hex(6)}"


@dataclass
class JobState:
    """Snapshot of one job, JSON-serialisable by construction."""

    job_id: str
    tenant: str
    design: str  # human-readable workload label
    status: str = "queued"
    created_unix: float = 0.0
    started_unix: float = 0.0
    finished_unix: float = 0.0
    error: str = ""
    #: Per-stage outcomes in pipeline order (from ``stage_end`` events):
    #: ``{"stage", "status", "seconds", "bytes"}``.
    stages: List[Dict[str, Any]] = field(default_factory=list)
    #: artifact kind → content hash (resolves ``/artifacts/<kind>``).
    artifact_hashes: Dict[str, str] = field(default_factory=dict)
    #: Ledger run id recorded by the worker (empty when ledger is off).
    run_id: str = ""
    #: Counter totals from the worker's per-job registry.
    counters: Dict[str, float] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0
    events_seen: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def snapshot(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "design": self.design,
            "status": self.status,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "stages": list(self.stages),
            "artifact_hashes": dict(self.artifact_hashes),
            "run_id": self.run_id,
            "counters": dict(self.counters),
            "executed": self.executed,
            "cached": self.cached,
            "events": self.events_seen,
        }


class JobRegistry:
    """Thread-safe in-memory job table plus per-job event logs.

    The asyncio server reads it from the event loop, the pool drainer
    thread writes worker events into it, and the inline worker writes
    directly — one lock covers all of it (operations are tiny).

    Cancellation is cooperative and file-based so it crosses the process
    boundary without shared primitives: :meth:`cancel` drops a sentinel
    file the worker's between-stage cancel check polls.
    """

    def __init__(self, spool_dir: Union[str, Path]) -> None:
        self.spool_dir = Path(spool_dir)
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobState] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------ #
    # Spool
    # ------------------------------------------------------------------ #

    def spool_design(self, text: str) -> Path:
        """Persist a submitted design text content-addressed; identical
        submissions share one file (and one load_design artifact)."""
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        path = self.spool_dir / f"{digest}.nets"
        if not path.is_file():
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".nets.{secrets.token_hex(4)}.tmp")
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)
        return path

    def cancel_path(self, job_id: str) -> Path:
        return self.spool_dir / f"{job_id}.cancel"

    # ------------------------------------------------------------------ #
    # CRUD
    # ------------------------------------------------------------------ #

    def create(self, tenant: str, design: str) -> JobState:
        job = JobState(
            job_id=new_job_id(),
            tenant=tenant,
            design=design,
            created_unix=time.time(),
        )
        with self._lock:
            self._jobs[job.job_id] = job
            self._events[job.job_id] = [
                {
                    "ts": job.created_unix,
                    "event": "job_queued",
                    "job_id": job.job_id,
                    "tenant": tenant,
                    "design": design,
                }
            ]
            job.events_seen = 1
            self._order.append(job.job_id)
        return job

    def get(self, job_id: str) -> JobState:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def list(self, tenant: Optional[str] = None) -> List[JobState]:
        with self._lock:
            jobs = [self._jobs[jid] for jid in self._order]
        if tenant is not None:
            jobs = [j for j in jobs if j.tenant == tenant]
        return jobs

    def snapshot(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            return self.get(job_id).snapshot()

    def events(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """Events ``since`` (an index into the per-job log) onward."""
        with self._lock:
            self.get(job_id)  # 404 on unknown
            return list(self._events[job_id][since:])

    def active_count(self, tenant: str) -> int:
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.tenant == tenant and not j.terminal
            )

    # ------------------------------------------------------------------ #
    # Event application (the single state-transition choke point)
    # ------------------------------------------------------------------ #

    def apply_event(self, payload: Dict[str, Any]) -> Optional[JobState]:
        """Fold one worker event into the job table; returns the job when
        it just reached a terminal state (for quota release), else None."""
        job_id = str(payload.get("job_id", ""))
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            payload.setdefault("ts", time.time())
            self._events[job_id].append(payload)
            job.events_seen += 1
            event = payload.get("event")
            became_terminal = False
            if event == "job_started" and not job.terminal:
                job.status = "running"
                job.started_unix = float(payload["ts"])
            elif event == "stage_end":
                job.stages.append(
                    {
                        "stage": payload.get("stage"),
                        "status": payload.get("status"),
                        "seconds": payload.get("seconds", 0.0),
                        "bytes": payload.get("bytes", 0),
                    }
                )
                for kind, h in (payload.get("hashes") or {}).items():
                    job.artifact_hashes[kind] = h
            elif event in ("job_done", "job_failed", "job_cancelled"):
                if not job.terminal:
                    became_terminal = True
                job.status = {
                    "job_done": "done",
                    "job_failed": "failed",
                    "job_cancelled": "cancelled",
                }[event]
                job.finished_unix = float(payload["ts"])
                job.error = str(payload.get("error", "")) or job.error
                job.run_id = str(payload.get("run_id", "")) or job.run_id
                for kind, h in (payload.get("artifact_hashes") or {}).items():
                    job.artifact_hashes[kind] = h
                job.counters = dict(payload.get("counters") or {})
                job.executed = int(payload.get("executed", job.executed))
                job.cached = int(payload.get("cached", job.cached))
            return job if became_terminal else None

    def cancel(self, job_id: str) -> JobState:
        """Request cancellation: drop the cross-process sentinel; a job
        still queued is failed fast (the worker skips it on pickup)."""
        job = self.get(job_id)
        if job.terminal:
            return job
        try:
            # circuit-only services may never have spooled a design
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            self.cancel_path(job_id).touch()
        except OSError:
            pass
        if job.status == "queued":
            self.apply_event(
                {"event": "job_cancelled", "job_id": job_id, "error": "cancelled while queued"}
            )
        return job

    def is_cancelled(self, job_id: str) -> bool:
        return self.cancel_path(job_id).is_file()


def job_event(event: str, job_id: str, **extra: Any) -> Dict[str, Any]:
    """A well-formed event payload (shared by workers and the registry)."""
    out: Dict[str, Any] = {"ts": time.time(), "event": event, "job_id": job_id}
    out.update(extra)
    return out


def dumps_event(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=str)

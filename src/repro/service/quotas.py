"""Per-tenant admission control and service counters.

The service is multi-tenant: every submission carries a tenant label
(payload ``tenant`` or ``X-Tenant`` header, ``"anon"`` by default), and
admission is bounded per tenant so one noisy client cannot monopolise
the worker pool. Accounting lives in a dedicated
:class:`~repro.obs.metrics.MetricsRegistry` (never the process-global
``repro.obs`` backend — workers use that for per-job span counting), and
``GET /metrics`` renders it through ``repro.obs.prom``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..obs.metrics import MetricsRegistry


class TenantQuotas:
    """Counting semaphore per tenant plus the service metric families.

    ``max_active`` bounds queued+running jobs per tenant (0 disables the
    bound). :meth:`try_acquire` returns a rejection reason or ``None``
    on admission; every admission must eventually be paired with one
    :meth:`release` (on the job's terminal event).
    """

    def __init__(
        self,
        max_active: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.max_active = int(max_active)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._active: Dict[str, int] = {}

    def try_acquire(self, tenant: str) -> Optional[str]:
        with self._lock:
            active = self._active.get(tenant, 0)
            if self.max_active > 0 and active >= self.max_active:
                self.registry.counter(
                    "service_jobs_rejected_total",
                    tenant=tenant,
                    reason="quota",
                ).inc()
                return (
                    f"tenant {tenant!r} has {active} active jobs "
                    f"(quota {self.max_active})"
                )
            self._active[tenant] = active + 1
            self.registry.counter(
                "service_jobs_submitted_total", tenant=tenant
            ).inc()
            self.registry.gauge(
                "service_jobs_active", tenant=tenant
            ).set(self._active[tenant])
            return None

    def release(self, tenant: str, status: str, seconds: float = 0.0) -> None:
        with self._lock:
            self._active[tenant] = max(0, self._active.get(tenant, 0) - 1)
            self.registry.counter(
                "service_jobs_completed_total", tenant=tenant, status=status
            ).inc()
            self.registry.gauge(
                "service_jobs_active", tenant=tenant
            ).set(self._active[tenant])
            if seconds:
                self.registry.histogram(
                    "service_job_seconds", tenant=tenant
                ).observe(seconds)

    def active(self, tenant: str) -> int:
        with self._lock:
            return self._active.get(tenant, 0)

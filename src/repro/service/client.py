"""Minimal stdlib HTTP client for the routing service.

Shared by the load bench (``repro bench load``), the CI service-smoke
job, and the tests — one connection per request (the server always
answers ``Connection: close``), JSON in/out, and a blocking
:meth:`ServiceClient.wait` that polls a job to its terminal state.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from .jobs import ServiceError, TERMINAL_STATUSES


class ServiceClient:
    """Talk to a :class:`~repro.service.RoutingService` at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0, tenant: str = "") -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("http", ""):
            raise ServiceError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self.tenant = tenant

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        headers = {"Connection": "close"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: Tuple[int, ...] = (200, 202),
    ) -> Dict[str, Any]:
        status, raw = self._request(method, path, body)
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            obj = {"error": raw.decode("utf-8", "replace")[:200]}
        if status not in ok:
            raise ServiceError(
                f"{method} {path} → {status}: {obj.get('error', obj)}",
                status=status,
            )
        return obj

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/jobs", body=payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._json("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or time out)."""
        deadline = time.monotonic() + timeout_s
        while True:
            snap = self.job(job_id)
            if snap["status"] in TERMINAL_STATUSES:
                return snap
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {snap['status']} after {timeout_s}s",
                    status=504,
                )
            time.sleep(poll_s)

    def events(self, job_id: str, wait: bool = True) -> List[Dict[str, Any]]:
        """The job's full event log; with ``wait`` the call streams until
        the job is terminal (mirrors the live progress a UI would show)."""
        suffix = "" if wait else "?wait=0"
        status, raw = self._request("GET", f"/jobs/{job_id}/events{suffix}")
        if status != 200:
            raise ServiceError(f"events → {status}", status=status)
        return [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]

    def artifact(self, job_id: str, kind: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}/artifacts/{kind}")

    def artifact_bytes(self, job_id: str, kind: str) -> bytes:
        """The raw artifact response body — byte-identical across jobs
        that resolved to the same content hash."""
        status, raw = self._request("GET", f"/jobs/{job_id}/artifacts/{kind}")
        if status != 200:
            raise ServiceError(f"artifact {kind} → {status}", status=status)
        return raw

    def metrics(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics → {status}", status=status)
        return raw.decode("utf-8")

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

"""Routing-as-a-service: a stdlib-only async HTTP front-end.

One :class:`RoutingService` owns the whole serving stack:

* an ``asyncio`` HTTP/1.1 server (no third-party framework — requests
  are parsed from the stream reader, responses always ``Connection:
  close``) exposing the job API;
* a bounded worker pool (processes by default, an inline thread for
  ``workers=0``) draining the submission queue through
  :func:`~repro.service.worker.execute_job`;
* the shared content-addressed :class:`~repro.pipeline.ArtifactStore` —
  concurrency-safe since the store grew compare-and-publish + single
  flight, so identical designs across tenants cost one computation;
* per-tenant quotas and a service metrics registry rendered by
  ``repro.obs.prom`` at ``GET /metrics``.

API (all JSON)::

    POST /jobs                      submit {design_text,width,height} or
                                    {circuit,scale,seed}; 202 → {job_id}
    GET  /jobs                      job table (?tenant= filters)
    GET  /jobs/<id>                 state snapshot
    GET  /jobs/<id>/events          ndjson stream, live until terminal
                                    (?wait=0 dumps and closes)
    GET  /jobs/<id>/artifacts/<k>   artifact record for kind <k>
    POST /jobs/<id>/cancel          cooperative cancellation
    GET  /metrics                   Prometheus exposition
    GET  /healthz                   liveness

The server is embeddable (``start_background()`` runs the loop in a
daemon thread and returns once the port is bound — tests and the load
bench use that) or foreground (``serve_forever()`` for ``repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import to_prometheus
from ..pipeline import ALL_STAGES, ArtifactStore, default_cache_dir
from .jobs import JobRegistry, ServiceError, dumps_event
from .quotas import TenantQuotas
from .worker import InlineWorkerPool, WorkerPool

#: Submission keys forwarded into :class:`PipelineConfig` verbatim.
_CONFIG_PASSTHROUGH = (
    "router",
    "workers",
    "guidance",
    "shard",
    "kernel",
    "order",
    "num_layers",
)

_EVENT_POLL_S = 0.05
_MAX_BODY_BYTES = 8 << 20


def _json_bytes(obj: Any) -> bytes:
    return (json.dumps(obj, sort_keys=True, default=str) + "\n").encode("utf-8")


class RoutingService:
    """The multi-tenant routing job service (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        spool_dir: Optional[str] = None,
        max_active_per_tenant: int = 8,
        ledger: bool = True,
        ledger_dir: Optional[str] = None,
        pool_ctx: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the real port once listening
        self.cache_dir = cache_dir or default_cache_dir()
        self.spool_dir = spool_dir or str(Path(self.cache_dir) / "spool")
        self.ledger = ledger
        self.ledger_dir = ledger_dir
        self.store = ArtifactStore(self.cache_dir)
        self.registry = JobRegistry(self.spool_dir)
        self.metrics = MetricsRegistry()
        self.quotas = TenantQuotas(
            max_active=max_active_per_tenant, registry=self.metrics
        )
        if workers <= 0:
            # Inline mode must stay single-threaded: per-job span counting
            # uses the process-global obs backend.
            self.pool: Any = InlineWorkerPool(1, self._on_event)
        else:
            self.pool = WorkerPool(workers, self._on_event, ctx=pool_ctx)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        #: Optional callback invoked (with the service) once the socket
        #: is bound — lets ``repro serve`` print the real port even for
        #: ``--port 0``.
        self.on_listening: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Worker events
    # ------------------------------------------------------------------ #

    def _on_event(self, payload: Dict[str, Any]) -> None:
        terminal = self.registry.apply_event(payload)
        event = payload.get("event")
        if event == "stage_end":
            status = str(payload.get("status", ""))
            name = (
                "service_stage_runs_total"
                if status == "run"
                else "service_stage_cache_hits_total"
            )
            job_id = str(payload.get("job_id", ""))
            try:
                tenant = self.registry.get(job_id).tenant
            except ServiceError:
                tenant = ""
            self.metrics.counter(
                name, tenant=tenant, stage=str(payload.get("stage", ""))
            ).inc()
        if terminal is not None:
            seconds = max(0.0, terminal.finished_unix - terminal.created_unix)
            self.quotas.release(terminal.tenant, terminal.status, seconds)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(self, payload: Dict[str, Any], tenant: str = "") -> Dict[str, Any]:
        """Validate a submission, admit it against the tenant quota, and
        queue the job; returns the initial job snapshot."""
        if not isinstance(payload, dict):
            raise ServiceError("submission body must be a JSON object")
        tenant = str(payload.get("tenant") or tenant or "anon")
        config: Dict[str, Any] = {"cache_dir": self.cache_dir}
        for key in _CONFIG_PASSTHROUGH:
            if key in payload:
                config[key] = payload[key]
        if payload.get("design_text") is not None:
            width, height = payload.get("width"), payload.get("height")
            if not width or not height:
                raise ServiceError(
                    "design_text submissions need width and height (tracks)"
                )
            spooled = self.registry.spool_design(str(payload["design_text"]))
            config.update(
                netlist=str(spooled), width=int(width), height=int(height)
            )
            design_label = f"design:{spooled.stem}"
        elif payload.get("circuit"):
            config.update(
                circuit=str(payload["circuit"]),
                scale=float(payload.get("scale", 0.15)),
                seed=int(payload.get("seed", 2014)),
            )
            design_label = (
                f"{config['circuit']}@{config['scale']}/seed{config['seed']}"
            )
        else:
            raise ServiceError(
                "submission needs design_text (+width/height) or circuit"
            )
        targets = payload.get("targets")
        if targets is not None:
            targets = [str(t) for t in targets]
            unknown = set(targets) - set(ALL_STAGES)
            if unknown:
                raise ServiceError(f"unknown stages {sorted(unknown)}")
        # Validate the config before burning a queue slot.
        from ..pipeline import PipelineConfig

        try:
            PipelineConfig(**config).validate()
        except TypeError as exc:
            raise ServiceError(f"bad submission: {exc}") from None
        reason = self.quotas.try_acquire(tenant)
        if reason is not None:
            raise ServiceError(reason, status=429)
        job = self.registry.create(tenant, design_label)
        task = {
            "job_id": job.job_id,
            "tenant": tenant,
            "config": config,
            "targets": targets,
            "cancel_path": str(self.registry.cancel_path(job.job_id)),
            "ledger": self.ledger,
            "ledger_dir": self.ledger_dir,
            "workload": design_label,
        }
        self.pool.submit(task)
        return job.snapshot()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise ServiceError("malformed request line", status=400) from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _start_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str = "application/json",
        length: Optional[int] = None,
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
        if length is not None:
            head.append(f"Content-Length: {length}")
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))

    def _send_json(
        self, writer: asyncio.StreamWriter, status: int, obj: Any
    ) -> None:
        body = _json_bytes(obj)
        self._start_response(writer, status, length=len(body))
        writer.write(body)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown while a response (e.g. a long-lived event
            # stream) was in flight: drop the connection quietly.
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status_for_log = 500
        method = target = "?"
        try:
            method, target, headers, body = await self._read_request(reader)
            status_for_log = await self._dispatch(
                method, target, headers, body, writer
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            status_for_log = 0  # client went away; nothing to answer
        except ServiceError as exc:
            status_for_log = exc.status
            try:
                self._send_json(writer, exc.status, {"error": str(exc)})
            except ConnectionError:
                pass
        except Exception as exc:  # noqa: BLE001 - server must not die
            try:
                self._send_json(writer, 500, {"error": f"internal: {exc}"})
            except ConnectionError:
                pass
        finally:
            if status_for_log:
                self.metrics.counter(
                    "service_http_requests_total",
                    method=method,
                    code=str(status_for_log),
                ).inc()
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> int:
        path, _, query = target.partition("?")
        params = dict(
            pair.partition("=")[::2] for pair in query.split("&") if pair
        )
        parts = [p for p in path.split("/") if p]

        if path in ("/healthz", "/health"):
            self._send_json(writer, 200, {"ok": True, "jobs": len(self.registry.list())})
            return 200
        if path == "/metrics":
            text = to_prometheus(self.metrics).encode("utf-8")
            self._start_response(
                writer, 200, content_type=PROM_CONTENT_TYPE, length=len(text)
            )
            writer.write(text)
            return 200
        if parts and parts[0] == "jobs":
            return await self._dispatch_jobs(
                method, parts, params, headers, body, writer
            )
        raise ServiceError(f"no such route {path!r}", status=404)

    async def _dispatch_jobs(
        self,
        method: str,
        parts: list,
        params: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> int:
        if len(parts) == 1:
            if method == "POST":
                try:
                    payload = json.loads(body.decode("utf-8") or "{}")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise ServiceError(f"bad JSON body: {exc}") from None
                snapshot = self.submit(
                    payload, tenant=headers.get("x-tenant", "")
                )
                self._send_json(writer, 202, snapshot)
                return 202
            if method == "GET":
                tenant = params.get("tenant") or None
                self._send_json(
                    writer,
                    200,
                    {"jobs": [j.snapshot() for j in self.registry.list(tenant)]},
                )
                return 200
            raise ServiceError("use GET or POST on /jobs", status=405)

        job_id = parts[1]
        if len(parts) == 2:
            if method != "GET":
                raise ServiceError("use GET on /jobs/<id>", status=405)
            self._send_json(writer, 200, self.registry.snapshot(job_id))
            return 200
        if parts[2] == "cancel" and len(parts) == 3:
            if method != "POST":
                raise ServiceError("use POST on /jobs/<id>/cancel", status=405)
            job = self.registry.cancel(job_id)
            self._send_json(writer, 200, job.snapshot())
            return 200
        if parts[2] == "events" and len(parts) == 3:
            if method != "GET":
                raise ServiceError("use GET on /jobs/<id>/events", status=405)
            await self._stream_events(
                writer, job_id, wait=params.get("wait", "1") != "0"
            )
            return 200
        if parts[2] == "artifacts" and len(parts) == 4:
            if method != "GET":
                raise ServiceError("use GET on artifacts", status=405)
            return self._send_artifact(writer, job_id, parts[3])
        raise ServiceError(f"no such route under /jobs/{job_id}", status=404)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str, wait: bool
    ) -> None:
        self.registry.get(job_id)  # 404 before headers go out
        self._start_response(writer, 200, content_type="application/x-ndjson")
        sent = 0
        while True:
            for payload in self.registry.events(job_id, since=sent):
                writer.write((dumps_event(payload) + "\n").encode("utf-8"))
                sent += 1
            await writer.drain()
            job = self.registry.get(job_id)
            if not wait or (job.terminal and sent >= job.events_seen):
                return
            await asyncio.sleep(_EVENT_POLL_S)

    def _send_artifact(
        self, writer: asyncio.StreamWriter, job_id: str, kind: str
    ) -> int:
        job = self.registry.get(job_id)
        h = job.artifact_hashes.get(kind)
        if h is None:
            if not job.terminal:
                raise ServiceError(
                    f"job {job_id} is {job.status}; artifacts appear as "
                    f"stages finish",
                    status=409,
                )
            raise ServiceError(
                f"job {job_id} has no {kind!r} artifact "
                f"(kinds: {sorted(job.artifact_hashes)})",
                status=404,
            )
        art = self.store.load(h)
        if art is None:
            raise ServiceError(
                f"artifact {h} evicted from the store; resubmit the job",
                status=404,
            )
        body = _json_bytes(
            {"kind": art.kind, "hash": art.hash, "payload": art.payload}
        )
        self._start_response(writer, 200, length=len(body))
        writer.write(body)
        return 200

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        if self.on_listening is not None:
            try:
                self.on_listening(self)
            except Exception:  # noqa: BLE001 - cosmetic hook only
                pass
        async with self._server:
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        finally:
            self._ready.set()  # never leave start_background() hanging

    def start_background(self, timeout_s: float = 10.0) -> "RoutingService":
        """Start pool + server in a daemon thread; returns once the port
        is bound (``self.port`` then holds the real port)."""
        if self._thread is not None:
            return self
        self.pool.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServiceError("service failed to start listening", status=500)
        if self._server is None:
            raise ServiceError("service loop exited during startup", status=500)
        return self

    def serve_forever(self) -> None:
        """Foreground serving (``repro serve``); Ctrl-C stops cleanly."""
        self.pool.start()
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass
        finally:
            self.pool.stop()

    def stop(self) -> None:
        if self._loop is not None and self._server is not None:
            server = self._server

            def _close() -> None:
                server.close()
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            try:
                self._loop.call_soon_threadsafe(_close)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.pool.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

"""Routing-as-a-service: async job API over the staged pipeline.

The ``repro.pipeline`` refactor made every stage output content-addressed
— this package turns that into a multi-tenant service: submit a design
(``POST /jobs``), poll or stream its progress, fetch artifacts, scrape
metrics. Identical designs across users coalesce on one computation in
the shared :class:`~repro.pipeline.ArtifactStore`, so heavy duplicate
traffic mostly costs cache lookups.

    from repro.service import RoutingService, ServiceClient

    service = RoutingService(port=0, workers=2).start_background()
    client = ServiceClient(service.url)
    job = client.submit({"circuit": "Test1", "scale": 0.1})
    done = client.wait(job["job_id"])
    report = client.artifact(job["job_id"], "report")
    service.stop()

CLI front-ends: ``repro serve`` (foreground server) and
``repro bench load`` (the concurrency/throughput harness). See
``docs/SERVICE.md``.
"""

from .client import ServiceClient
from .jobs import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobRegistry,
    JobState,
    ServiceError,
)
from .quotas import TenantQuotas
from .server import RoutingService
from .worker import InlineWorkerPool, WorkerPool, execute_job

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "InlineWorkerPool",
    "JobRegistry",
    "JobState",
    "RoutingService",
    "ServiceClient",
    "ServiceError",
    "TenantQuotas",
    "WorkerPool",
    "execute_job",
]

"""Job execution: the pipeline run inside a worker, and the worker pools.

:func:`execute_job` is the one function that turns a queued job into
events — it runs the staged pipeline with a per-job observability
session (so ``stage:<name>`` span counts are exact per job), wires the
engine's progress callbacks into the event channel, polls the
cross-process cancellation sentinel between stages, and records the run
in the ledger. It is process-agnostic: the same code runs

* in a :class:`WorkerPool` — N persistent daemon processes draining a
  shared task queue, events flowing back over a result queue (the
  production shape: jobs survive GIL contention and crash in isolation);
* in an :class:`InlineWorkerPool` — N daemon *threads* in the server
  process (``--service-workers 0`` picks 1 thread; used by tests and
  tiny deployments — no fork, fully deterministic).

Both pools deliver events through a single ``on_event`` callback, which
the server points at :meth:`JobRegistry.apply_event`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from ..errors import PipelineCancelled, ReproError
from .jobs import job_event

#: Wall-clock budget a pool waits for workers to exit on stop().
_STOP_JOIN_S = 5.0


def execute_job(task: Dict[str, Any], emit: Callable[[Dict[str, Any]], None]) -> None:
    """Run one job's pipeline, emitting lifecycle + progress events.

    ``task`` is a plain picklable dict::

        {"job_id", "tenant", "config": {PipelineConfig kwargs},
         "targets": [...] | None, "cancel_path": str,
         "ledger": bool, "ledger_dir": str | None, "workload": str}

    Never raises: every failure mode becomes a ``job_failed`` (or
    ``job_cancelled``) event.
    """
    from .. import obs
    from ..pipeline import ALL_STAGES, Pipeline, PipelineConfig
    from ..pipeline.observe import record_run

    job_id = task["job_id"]
    cancel_path = task.get("cancel_path") or ""

    def cancelled() -> bool:
        return bool(cancel_path) and os.path.exists(cancel_path)

    if cancelled():
        emit(job_event("job_cancelled", job_id, error="cancelled before start"))
        return
    emit(job_event("job_started", job_id, pid=os.getpid()))
    t0 = time.perf_counter()
    outcome = "error"
    run = None
    try:
        config = PipelineConfig(**task["config"])
        targets = tuple(task.get("targets") or ALL_STAGES)
        with obs.session() as ob:
            pipe = Pipeline(config)
            try:
                run = pipe.run(
                    targets=targets,
                    progress=lambda ev: emit(dict(ev, job_id=job_id)),
                    cancel=cancelled,
                )
                outcome = "ok"
            finally:
                wall_s = time.perf_counter() - t0
                route_spans = sum(
                    1 for s in ob.tracer.finished if s.name == "stage:route"
                )
                counters = {
                    entry["metric"]: ob.registry.total(entry["metric"])
                    for entry in ob.registry.snapshot()
                    if entry["kind"] == "counter"
                }
                run_id = ""
                if task.get("ledger", True):
                    try:
                        record = record_run(
                            ob,
                            command="service",
                            workload=str(task.get("workload", "")),
                            config=dict(task["config"]),
                            outcome=outcome,
                            wall_s=wall_s,
                            ledger_dir=task.get("ledger_dir"),
                            meta={"job_id": job_id, "tenant": task.get("tenant", "")},
                        )
                        run_id = record.run_id
                    except Exception:  # telemetry must never fail a job
                        pass
        hashes: Dict[str, str] = {}
        if run is not None:
            for record_ in run.records:
                hashes.update(record_.hashes)
        emit(
            job_event(
                "job_done",
                job_id,
                artifact_hashes=hashes,
                executed=run.executed_count if run is not None else 0,
                cached=run.cached_count if run is not None else 0,
                route_spans=route_spans,
                counters=counters,
                run_id=run_id,
                seconds=round(time.perf_counter() - t0, 6),
            )
        )
    except PipelineCancelled as exc:
        emit(job_event("job_cancelled", job_id, error=str(exc), stage=exc.stage))
    except ReproError as exc:
        emit(job_event("job_failed", job_id, error=str(exc)))
    except Exception as exc:  # noqa: BLE001 - a worker must stay alive
        emit(
            job_event(
                "job_failed",
                job_id,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(limit=20),
            )
        )
    finally:
        if cancel_path:
            try:
                os.unlink(cancel_path)
            except OSError:
                pass


def _worker_main(task_queue, event_queue) -> None:
    """Worker-process loop: drain tasks until the ``None`` sentinel."""
    while True:
        task = task_queue.get()
        if task is None:
            break
        execute_job(task, event_queue.put)


class WorkerPool:
    """Bounded pool of persistent worker *processes* draining one queue.

    Events land on an internal result queue; a drainer thread in the
    server process forwards them to ``on_event`` in arrival order. The
    pool never restarts dead workers silently — a worker death surfaces
    as stuck jobs, which the supervisor can see in the job table.
    """

    def __init__(
        self,
        workers: int,
        on_event: Callable[[Dict[str, Any]], None],
        ctx: Optional[str] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.on_event = on_event
        method = ctx or ("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(method)
        self._tasks = self._ctx.Queue()
        self._events = self._ctx.Queue()
        self._procs: List[Any] = []
        self._drainer: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def start(self) -> "WorkerPool":
        if self._procs:
            return self
        for i in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._events),
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self._drainer = threading.Thread(
            target=self._drain, name="repro-service-drainer", daemon=True
        )
        self._drainer.start()
        return self

    def _drain(self) -> None:
        while not self._stopping.is_set():
            try:
                payload = self._events.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self.on_event(payload)
            except Exception:  # noqa: BLE001 - the drainer must not die
                pass

    def submit(self, task: Dict[str, Any]) -> None:
        self._tasks.put(task)

    def stop(self) -> None:
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + _STOP_JOIN_S
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
        self._stopping.set()
        if self._drainer is not None:
            self._drainer.join(timeout=2.0)
        self._procs = []


class InlineWorkerPool:
    """Thread-based pool with the same surface as :class:`WorkerPool`.

    Jobs run inside the server process — no fork, no pickling — which is
    what tests and single-tenant embedded use want. Still bounded: N
    threads drain one queue.
    """

    def __init__(
        self,
        workers: int,
        on_event: Callable[[Dict[str, Any]], None],
    ) -> None:
        self.workers = max(1, int(workers))
        self.on_event = on_event
        self._tasks: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self._threads: List[threading.Thread] = []

    def start(self) -> "InlineWorkerPool":
        if self._threads:
            return self
        for i in range(self.workers):
            t = threading.Thread(
                target=self._loop, name=f"repro-service-inline-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def _loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                break
            execute_job(task, self.on_event)

    def submit(self, task: Dict[str, Any]) -> None:
        self._tasks.put(task)

    def stop(self) -> None:
        for _ in self._threads:
            self._tasks.put(None)
        for t in self._threads:
            t.join(timeout=_STOP_JOIN_S)
        self._threads = []

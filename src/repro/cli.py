"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``route``
    Route a text netlist on a fresh grid, print the report, optionally
    save JSON/SVG artifacts::

        python -m repro route nets.txt --width 40 --height 40 \
            --out result.json --svg layer0.svg --report

``pipeline``
    The staged flow with content-hash caching: ``run`` executes
    load_design → build_grid → route → decompose → verify → report
    against a ``.repro_cache/`` artifact store (re-runs with an unchanged
    prefix are cache hits), ``show`` prints the plan or the store
    contents, ``clean`` empties the store::

        python -m repro pipeline run nets.txt --width 40 --height 40
        python -m repro pipeline run Test1 --scale 0.2
        python -m repro pipeline show --cache-dir .repro_cache
        python -m repro pipeline clean

``bench``
    Route one of the paper's benchmarks (Test1..Test10) at a given scale,
    with the proposed router or a baseline — or drive the routing service
    with a concurrent mixed workload::

        python -m repro bench Test1 --scale 0.2 --router gao-pan
        python -m repro bench load --clients 8 --jobs 32 --json -

``serve``
    The multi-tenant routing job service: an async HTTP API
    (``POST /jobs``, event streams, artifacts, ``/metrics``) over a
    bounded worker pool and the shared artifact store::

        python -m repro serve --port 8347 --service-workers 2

``scenarios``
    Print the scenario color-rule table (the paper's Table II).

``pipeline clean`` doubles as the cache GC (``--max-age-days`` /
``--max-bytes``); every ``.repro_cache/`` default honours the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .errors import ReproError


def _route_exit_code(result) -> int:
    """Nonzero when anything is wrong with the committed result: an
    unrouted net or a remaining cut conflict."""
    if result.cut_conflicts != 0:
        return 1
    if result.routed_count != len(result.routes):
        return 1
    return 0


def _print_route_outputs(args: argparse.Namespace, run) -> None:
    """The route/pipeline-run shared tail: summary, report, JSON, SVG."""
    from .analysis.report import instrumentation_digest
    from .router import save_result

    result = run.artifact("routing").result()
    print(result.summary())
    if args.report:
        report = run.artifact("report").report()
        # Re-attach the live instrumentation digest (run-local, never
        # part of the cached artifact).
        report.instrumentation = instrumentation_digest()
        print()
        print(report.to_text())
    if args.out:
        path = save_result(result, args.out)
        print(f"result saved to {path}")
    if args.svg:
        from .pipeline import replay_onto_grid
        from .viz import render_routing_svg

        grid = replay_onto_grid(run.artifact("grid").build(), result)
        path = render_routing_svg(
            grid, result.colorings, args.svg, layer=args.svg_layer
        )
        print(f"layer M{args.svg_layer + 1} rendered to {path}")


def _cmd_route(args: argparse.Namespace) -> int:
    """Thin wrapper over the pipeline (in-memory store: the classic
    one-shot behavior, no cache directory side effects)."""
    from .pipeline import MemoryStore, Pipeline, PipelineConfig, observed_command

    config = PipelineConfig(
        netlist=args.netlist,
        width=args.width,
        height=args.height,
        num_layers=args.layers,
        workers=args.workers,
        guidance=args.guidance,
        shard=args.shard,
        kernel=args.kernel,
    )
    with observed_command(args, command="route", netlist=args.netlist) as oc:
        pipe = Pipeline(config, store=MemoryStore())
        targets = ("report",) if args.report else ("route",)
        run = pipe.run(
            targets=targets, context={"want_router_trace": bool(args.trace)}
        )
        oc.router_trace = run.context.get("router_trace")
        _print_route_outputs(args, run)
        result = run.artifact("routing").result()
    return _route_exit_code(result)


def _cmd_pipeline_run(args: argparse.Namespace) -> int:
    from .pipeline import ALL_STAGES, Pipeline, observed_command

    config = _pipeline_config_from_args(args)
    with observed_command(
        args, command="pipeline run", design=args.design
    ) as oc:
        pipe = Pipeline(config)
        run = pipe.run(
            targets=ALL_STAGES,
            force=args.force,
            context={"want_router_trace": bool(args.trace)},
        )
        oc.router_trace = run.context.get("router_trace")
        print(run.to_text())
        _print_route_outputs(args, run)
        verify = run.artifact("verify")
        layers = verify.layer_reports()
        conflicts = sum(entry["cut_conflicts"] for entry in layers)
        hard = sum(entry["hard_overlay_count"] for entry in layers)
        print(
            f"decomposition: {'ok' if verify.ok else 'NOT ok'} — "
            f"{len(layers)} layers verified, {conflicts} cut conflicts, "
            f"{hard} hard overlays"
        )
        result = run.artifact("routing").result()
    return _route_exit_code(result)


def _cmd_pipeline_show(args: argparse.Namespace) -> int:
    from .pipeline import ALL_STAGES, ArtifactStore, Pipeline

    if args.design:
        pipe = Pipeline(_pipeline_config_from_args(args))
        for record in pipe.plan(targets=ALL_STAGES):
            print(record.describe())
        return 0
    cache_dir = _resolve_cache_dir(args)
    store = ArtifactStore(cache_dir)
    entries = store.entries()
    if not entries:
        print(f"{cache_dir}: empty")
        return 0
    total = 0
    for entry in entries:
        total += entry.bytes
        hits = f"{entry.hits:4d}x" if entry.hits else "     "
        print(
            f"{entry.kind:10s} {entry.stage:12s} {entry.bytes:10d} B {hits} {entry.hash}"
        )
    print(f"{len(entries)} artifacts, {total} bytes in {cache_dir}")
    return 0


def _cmd_pipeline_clean(args: argparse.Namespace) -> int:
    from .pipeline import ArtifactStore

    cache_dir = _resolve_cache_dir(args)
    store = ArtifactStore(cache_dir)
    if args.max_age_days is not None or args.max_bytes is not None:
        count = store.gc(
            max_age_days=args.max_age_days, max_bytes=args.max_bytes
        )
        print(f"gc removed {count} artifacts from {cache_dir}")
        return 0
    count = store.clean()
    print(f"removed {count} artifacts from {cache_dir}")
    return 0


def _resolve_cache_dir(args: argparse.Namespace) -> str:
    """``--cache-dir`` wins; otherwise ``$REPRO_CACHE_DIR`` or the
    ``.repro_cache`` default."""
    from .pipeline import default_cache_dir

    return getattr(args, "cache_dir", None) or default_cache_dir()


def _pipeline_config_from_args(args: argparse.Namespace):
    """Resolve the positional ``design`` into a netlist-file or benchmark
    config."""
    from .pipeline import PipelineConfig

    design = args.design
    if Path(design).exists():
        return PipelineConfig(
            netlist=design,
            width=args.width,
            height=args.height,
            num_layers=args.layers,
            router=args.router,
            workers=args.workers,
            guidance=args.guidance,
            shard=args.shard,
            kernel=args.kernel,
            cache_dir=_resolve_cache_dir(args),
        )
    if design.lower().startswith("test"):
        return PipelineConfig(
            circuit=design,
            scale=args.scale,
            seed=args.seed,
            num_layers=args.layers,
            router=args.router,
            workers=args.workers,
            guidance=args.guidance,
            shard=args.shard,
            kernel=args.kernel,
            cache_dir=_resolve_cache_dir(args),
        )
    raise ReproError(
        f"design {design!r} is neither an existing netlist file nor a "
        f"benchmark name (Test1..Test10)"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import RoutingService

    service = RoutingService(
        host=args.host,
        port=args.port,
        workers=args.service_workers,
        cache_dir=getattr(args, "cache_dir", None),
        spool_dir=args.spool_dir,
        max_active_per_tenant=args.max_active_per_tenant,
        ledger=not args.no_ledger,
        ledger_dir=args.ledger_dir,
    )
    mode = (
        f"{args.service_workers} worker processes"
        if args.service_workers > 0
        else "1 inline worker thread"
    )
    print(
        f"routing service: cache {service.cache_dir}, spool "
        f"{service.spool_dir}, {mode}",
        file=sys.stderr,
    )

    service.on_listening = lambda s: print(
        f"serving at {s.url} (POST /jobs)", file=sys.stderr
    )
    service.serve_forever()
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    from .bench.load import report_to_json, run_load

    report = run_load(
        url=args.url,
        clients=args.clients,
        jobs=args.jobs,
        duplicate_fraction=args.duplicates,
        circuit=args.load_circuit,
        scale=args.scale,
        seed=args.seed,
        timeout_s=args.timeout,
        service_workers=args.service_workers,
        cache_dir=getattr(args, "cache_dir", None),
    )
    print(report.to_text())
    if args.json:
        text = report_to_json(report)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n", encoding="utf-8")
            print(f"load report written to {args.json}")
    return 0 if report.failed == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
    from .bench import run_baseline, run_proposed, rows_to_table
    from .bench.workloads import spec_by_name
    from .pipeline import observed_command

    if args.circuit == "load":
        return _cmd_bench_load(args)
    spec = spec_by_name(args.circuit)
    with observed_command(
        args,
        command="bench",
        workload=f"{spec.name}@{args.scale}",
        circuit=spec.name,
        scale=args.scale,
        router=args.router,
    ):
        if args.router == "ours":
            row = run_proposed(
                spec,
                scale=args.scale,
                seed=args.seed,
                workers=args.workers,
                shard=args.shard,
                kernel=args.kernel,
            )
        else:
            factory = {
                "gao-pan": GaoPanTrimRouter,
                "cut16": CutNoMergeRouter,
                "du": DuTrimRouter,
            }[args.router]
            row = run_baseline(
                factory, args.router, spec, scale=args.scale, seed=args.seed
            )
        print(rows_to_table([row], caption=f"{spec.name} @ scale {args.scale}"))
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    from .obs.ledger import Ledger

    with Ledger(args.ledger_dir) as ledger:
        records = ledger.history(
            limit=args.limit,
            workload=args.workload,
            command=args.filter_command,
        )
        root = ledger.root
    if not records:
        print(f"no runs recorded in {root}")
        return 0
    for record in records:
        print(record.one_line())
    return 0


def _cmd_obs_show(args: argparse.Namespace) -> int:
    import json

    from .obs.ledger import Ledger

    with Ledger(args.ledger_dir) as ledger:
        record = ledger.get(args.run_id)
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from .obs.ledger import DiffThresholds, Ledger, diff_runs

    with Ledger(args.ledger_dir) as ledger:
        a = ledger.get(args.run_a)
        b = ledger.get(args.run_b)
    diff = diff_runs(a, b, DiffThresholds())
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.to_text())
    if args.gate and diff.verdict == "regression":
        return 1
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from .obs import collapsed_stacks

    lines = collapsed_stacks(args.logfile)
    if not lines:
        print(f"{args.logfile}: no spans to fold", file=sys.stderr)
        return 1
    for line in lines:
        print(line)
    return 0


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    from .obs import validate_run_jsonl

    problems = validate_run_jsonl(args.logfile)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.logfile}: INVALID ({len(problems)} problems)", file=sys.stderr)
        return 1
    print(f"{args.logfile}: OK")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from .core.scenarios import table2_rows

    print("Table II — color rules per potential overlay scenario")
    print(f"{'type':5s} {'rule':>9s} {'minSO':>6s} {'maxSO':>6s}")
    for row in table2_rows():
        print(f"{row[0]:5s} {row[1]:>9s} {row[2]:>6s} {row[3]:>6s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overlay-aware SADP-cut detailed router (DAC'14 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route a text netlist")
    route.add_argument("netlist", help="netlist file (see repro.netlist.io)")
    route.add_argument("--width", type=int, required=True, help="grid width in tracks")
    route.add_argument("--height", type=int, required=True, help="grid height in tracks")
    route.add_argument("--layers", type=int, default=3, help="routing layers (default 3)")
    _add_output_flags(route)
    _add_workers_flag(route)
    _add_shard_flag(route)
    _add_guidance_flag(route)
    _add_kernel_flag(route)
    _add_obs_flags(route)
    route.set_defaults(func=_cmd_route)

    pipeline = sub.add_parser(
        "pipeline", help="staged pipeline with artifact caching"
    )
    psub = pipeline.add_subparsers(dest="pipeline_command", required=True)

    prun = psub.add_parser(
        "run", help="run the full staged flow (cache-hit on unchanged prefixes)"
    )
    prun.add_argument(
        "design", help="netlist file, or a benchmark name (Test1..Test10)"
    )
    prun.add_argument("--width", type=int, help="grid width in tracks (netlist designs)")
    prun.add_argument("--height", type=int, help="grid height in tracks (netlist designs)")
    prun.add_argument("--layers", type=int, default=3, help="routing layers (default 3)")
    prun.add_argument("--scale", type=float, default=0.15, help="benchmark scale (0, 1]")
    prun.add_argument("--seed", type=int, default=2014, help="benchmark seed")
    prun.add_argument(
        "--router",
        choices=("ours", "gao-pan", "cut16", "du"),
        default="ours",
        help="which router the route stage uses",
    )
    prun.add_argument(
        "--force", action="store_true", help="re-execute every stage (refresh the cache)"
    )
    _add_cache_flag(prun)
    _add_output_flags(prun)
    _add_workers_flag(prun)
    _add_shard_flag(prun)
    _add_guidance_flag(prun)
    _add_kernel_flag(prun)
    _add_obs_flags(prun)
    prun.set_defaults(func=_cmd_pipeline_run)

    pshow = psub.add_parser(
        "show", help="show the stage plan for a design, or the store contents"
    )
    pshow.add_argument(
        "design",
        nargs="?",
        help="netlist file or benchmark name (omit to list the store)",
    )
    pshow.add_argument("--width", type=int, help="grid width in tracks (netlist designs)")
    pshow.add_argument("--height", type=int, help="grid height in tracks (netlist designs)")
    pshow.add_argument("--layers", type=int, default=3)
    pshow.add_argument("--scale", type=float, default=0.15)
    pshow.add_argument("--seed", type=int, default=2014)
    pshow.add_argument(
        "--router", choices=("ours", "gao-pan", "cut16", "du"), default="ours"
    )
    pshow.set_defaults(workers=1, guidance="auto", shard="auto", kernel="auto")
    _add_cache_flag(pshow)
    pshow.set_defaults(func=_cmd_pipeline_show)

    pclean = psub.add_parser(
        "clean", help="delete cached artifacts (all, or by GC policy)"
    )
    pclean.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="N",
        help="GC: drop entries not used within N days instead of wiping",
    )
    pclean.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="B",
        help="GC: evict least-recently-used entries until the store "
        "fits B bytes",
    )
    _add_cache_flag(pclean)
    pclean.set_defaults(func=_cmd_pipeline_clean)

    bench = sub.add_parser(
        "bench",
        help="run a paper benchmark, or 'load' for the service load harness",
    )
    bench.add_argument(
        "circuit",
        help="Test1..Test10, or 'load' to drive the routing service "
        "with concurrent clients",
    )
    bench.add_argument("--scale", type=float, default=0.15, help="instance scale (0, 1]")
    bench.add_argument("--seed", type=int, default=2014)
    bench.add_argument(
        "--router",
        choices=("ours", "gao-pan", "cut16", "du"),
        default="ours",
        help="which router to run",
    )
    _add_workers_flag(bench)
    _add_shard_flag(bench)
    _add_kernel_flag(bench)
    _add_obs_flags(bench)
    load_group = bench.add_argument_group("bench load")
    load_group.add_argument(
        "--url",
        default=None,
        help="target a running service (default: start one internally)",
    )
    load_group.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads"
    )
    load_group.add_argument(
        "--jobs", type=int, default=16, help="total jobs to submit"
    )
    load_group.add_argument(
        "--duplicates",
        type=float,
        default=0.5,
        help="fraction of jobs submitting the identical design (dedup mix)",
    )
    load_group.add_argument(
        "--load-circuit",
        default="Test1",
        help="benchmark the load mix is built from (default Test1)",
    )
    load_group.add_argument(
        "--timeout", type=float, default=600.0, help="per-job wait budget (s)"
    )
    load_group.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="worker processes for the internally-started service",
    )
    load_group.add_argument(
        "--json",
        metavar="FILE",
        help="write the machine-readable load report ('-' for stdout)",
    )
    load_group.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store for the internal service "
        "(default $REPRO_CACHE_DIR or .repro_cache)",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the routing job service (HTTP + worker pool)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8347, help="listen port (0 picks a free one)"
    )
    serve.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes draining the job queue "
        "(0 = one inline worker thread)",
    )
    serve.add_argument(
        "--spool-dir",
        default=None,
        help="where submitted design texts land (default <cache>/spool)",
    )
    serve.add_argument(
        "--max-active-per-tenant",
        type=int,
        default=8,
        metavar="N",
        help="per-tenant quota on queued+running jobs (0 = unlimited)",
    )
    serve.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record completed jobs in the run ledger",
    )
    _add_cache_flag(serve)
    _add_ledger_dir_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    scen = sub.add_parser("scenarios", help="print the Table II color rules")
    scen.set_defaults(func=_cmd_scenarios)

    obs_parser = sub.add_parser(
        "obs", help="inspect the run ledger and observability artifacts"
    )
    osub = obs_parser.add_subparsers(dest="obs_command", required=True)

    ohistory = osub.add_parser("history", help="list recorded runs, newest first")
    ohistory.add_argument("--limit", type=int, default=20, help="max rows (default 20)")
    ohistory.add_argument("--workload", help="filter by workload (exact match)")
    ohistory.add_argument(
        "--command", dest="filter_command", help="filter by command (route/bench/...)"
    )
    _add_ledger_dir_flag(ohistory)
    ohistory.set_defaults(func=_cmd_obs_history)

    oshow = osub.add_parser("show", help="dump one run record as JSON")
    oshow.add_argument("run_id", help="run id (unique prefix accepted)")
    _add_ledger_dir_flag(oshow)
    oshow.set_defaults(func=_cmd_obs_show)

    odiff = osub.add_parser(
        "diff", help="compare run B against run A: phases, counters, RSS, verdict"
    )
    odiff.add_argument("run_a", help="baseline run id (unique prefix accepted)")
    odiff.add_argument("run_b", help="candidate run id (unique prefix accepted)")
    odiff.add_argument("--json", action="store_true", help="machine-readable output")
    odiff.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 on a regression verdict (for CI)",
    )
    _add_ledger_dir_flag(odiff)
    odiff.set_defaults(func=_cmd_obs_diff)

    oflame = osub.add_parser(
        "flame",
        help="fold a JSONL run log into collapsed stacks "
        "(pipe into flamegraph.pl or paste into speedscope)",
    )
    oflame.add_argument("logfile", help="run log written by --trace")
    oflame.set_defaults(func=_cmd_obs_flame)

    validate = sub.add_parser(
        "validate-trace", help="check a JSONL run log against the schema"
    )
    validate.add_argument("logfile", help="run log written by --trace")
    validate.set_defaults(func=_cmd_validate_trace)
    return parser


def _add_cache_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store directory "
        "(default .repro_cache, or $REPRO_CACHE_DIR)",
    )


def _add_output_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--out", help="save the routing result as JSON")
    sub_parser.add_argument("--svg", help="render a routed layer as SVG")
    sub_parser.add_argument("--svg-layer", type=int, default=0, help="layer to render")
    sub_parser.add_argument(
        "--report", action="store_true", help="print the full analysis report"
    )


def _parse_workers(value: str):
    """``--workers N`` or ``--workers auto`` (scheduler-predicted)."""
    if value == "auto":
        return "auto"
    return int(value)


def _add_workers_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help="route independent nets in parallel with N workers, or "
        "'auto' to let the batch scheduler predict whether batching "
        "pays (results are bit-identical to --workers 1 either way)",
    )


def _add_shard_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--shard",
        choices=("off", "auto", "on"),
        default="auto",
        help="region-sharded parallel routing: partition the die into "
        "halo-separated tiles and route interior nets off the main "
        "process (bit-identical results in every mode; 'auto' engages "
        "only when enough nets are tile-interior)",
    )


def _add_guidance_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--guidance",
        choices=("off", "auto", "on"),
        default="auto",
        help="future-cost corridor guidance for the A* fast path "
        "(bit-identical results in every mode; 'auto' builds the map "
        "only for searches that grow past the trigger)",
    )


def _add_kernel_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--kernel",
        choices=("python", "auto", "numba"),
        default="auto",
        help="A* inner-loop implementation: 'python' is the interpreted "
        "fast path, 'numba' the compiled kernel (bit-identical results; "
        "falls back to an interpreted run of the same code when numba "
        "is not installed), 'auto' uses the kernel iff numba imports",
    )


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print the per-phase timing table",
    )
    sub_parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="enable observability and write the merged JSONL run log",
    )
    sub_parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this run in the run ledger",
    )
    sub_parser.add_argument(
        "--prom-port",
        type=int,
        metavar="PORT",
        help="serve Prometheus metrics on 127.0.0.1:PORT/metrics "
        "for the duration of the command (0 picks a free port)",
    )
    _add_ledger_dir_flag(sub_parser)


def _add_ledger_dir_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="run ledger directory (default .repro_runs, or $REPRO_LEDGER_DIR)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

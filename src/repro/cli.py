"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``route``
    Route a text netlist on a fresh grid, print the report, optionally
    save JSON/SVG artifacts::

        python -m repro route nets.txt --width 40 --height 40 \
            --out result.json --svg layer0.svg --report

``bench``
    Route one of the paper's benchmarks (Test1..Test10) at a given scale,
    with the proposed router or a baseline::

        python -m repro bench Test1 --scale 0.2 --router gao-pan

``scenarios``
    Print the scenario color-rule table (the paper's Table II).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ReproError


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable observability when ``--metrics`` / ``--trace`` ask for it."""
    wants = bool(getattr(args, "metrics", False) or getattr(args, "trace", None))
    if wants:
        from . import obs

        obs.enable()
    return wants


def _obs_finish(args: argparse.Namespace, router_trace=None, **meta) -> None:
    """Print the summary table and/or export the JSONL run log, then
    switch observability back off."""
    from . import obs

    try:
        if getattr(args, "metrics", False):
            ob = obs.get_active()
            print()
            print(obs.phase_table())
            if ob is not None:
                print()
                print(ob.registry.to_text())
        trace_path = getattr(args, "trace", None)
        if trace_path:
            path = obs.export_run_jsonl(trace_path, router_trace=router_trace, meta=meta)
            print(f"run log written to {path}")
    finally:
        obs.disable()


def _cmd_route(args: argparse.Namespace) -> int:
    from .analysis import analyze
    from .grid import RoutingGrid, default_layer_stack
    from .netlist import read_design
    from .router import RouterTrace, SadpRouter, save_result
    from .viz import render_routing_svg

    observing = _obs_begin(args)
    blockages, netlist = read_design(args.netlist)
    grid = RoutingGrid(
        width=args.width,
        height=args.height,
        layers=default_layer_stack(args.layers),
    )
    for layer, rect in blockages:
        targets = range(grid.num_layers) if layer < 0 else (layer,)
        for l in targets:
            grid.block(l, rect)
    router = SadpRouter(grid, netlist, workers=args.workers)
    trace = RouterTrace(router) if args.trace else None
    result = router.route_all()
    print(result.summary())
    if args.report:
        print()
        print(analyze(router, result).to_text())
    if args.out:
        path = save_result(result, args.out)
        print(f"result saved to {path}")
    if args.svg:
        path = render_routing_svg(grid, result.colorings, args.svg, layer=args.svg_layer)
        print(f"layer M{args.svg_layer + 1} rendered to {path}")
    if observing:
        _obs_finish(args, router_trace=trace, command="route", netlist=args.netlist)
    return 0 if result.cut_conflicts == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .baselines import CutNoMergeRouter, DuTrimRouter, GaoPanTrimRouter
    from .bench import run_baseline, run_proposed, rows_to_table
    from .bench.workloads import spec_by_name

    observing = _obs_begin(args)
    spec = spec_by_name(args.circuit)
    if args.router == "ours":
        row = run_proposed(
            spec, scale=args.scale, seed=args.seed, workers=args.workers
        )
    else:
        factory = {
            "gao-pan": GaoPanTrimRouter,
            "cut16": CutNoMergeRouter,
            "du": DuTrimRouter,
        }[args.router]
        row = run_baseline(factory, args.router, spec, scale=args.scale, seed=args.seed)
    print(rows_to_table([row], caption=f"{spec.name} @ scale {args.scale}"))
    if observing:
        _obs_finish(
            args,
            command="bench",
            circuit=spec.name,
            scale=args.scale,
            router=args.router,
        )
    return 0


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    from .obs import validate_run_jsonl

    problems = validate_run_jsonl(args.logfile)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.logfile}: INVALID ({len(problems)} problems)", file=sys.stderr)
        return 1
    print(f"{args.logfile}: OK")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from .core.scenarios import table2_rows

    print("Table II — color rules per potential overlay scenario")
    print(f"{'type':5s} {'rule':>9s} {'minSO':>6s} {'maxSO':>6s}")
    for row in table2_rows():
        print(f"{row[0]:5s} {row[1]:>9s} {row[2]:>6s} {row[3]:>6s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overlay-aware SADP-cut detailed router (DAC'14 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route a text netlist")
    route.add_argument("netlist", help="netlist file (see repro.netlist.io)")
    route.add_argument("--width", type=int, required=True, help="grid width in tracks")
    route.add_argument("--height", type=int, required=True, help="grid height in tracks")
    route.add_argument("--layers", type=int, default=3, help="routing layers (default 3)")
    route.add_argument("--out", help="save the routing result as JSON")
    route.add_argument("--svg", help="render a routed layer as SVG")
    route.add_argument("--svg-layer", type=int, default=0, help="layer to render")
    route.add_argument("--report", action="store_true", help="print the full analysis report")
    _add_workers_flag(route)
    _add_obs_flags(route)
    route.set_defaults(func=_cmd_route)

    bench = sub.add_parser("bench", help="run a paper benchmark")
    bench.add_argument("circuit", help="Test1..Test10")
    bench.add_argument("--scale", type=float, default=0.15, help="instance scale (0, 1]")
    bench.add_argument("--seed", type=int, default=2014)
    bench.add_argument(
        "--router",
        choices=("ours", "gao-pan", "cut16", "du"),
        default="ours",
        help="which router to run",
    )
    _add_workers_flag(bench)
    _add_obs_flags(bench)
    bench.set_defaults(func=_cmd_bench)

    scen = sub.add_parser("scenarios", help="print the Table II color rules")
    scen.set_defaults(func=_cmd_scenarios)

    validate = sub.add_parser(
        "validate-trace", help="check a JSONL run log against the schema"
    )
    validate.add_argument("logfile", help="run log written by --trace")
    validate.set_defaults(func=_cmd_validate_trace)
    return parser


def _add_workers_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="route independent nets in parallel with N workers "
        "(results are bit-identical to --workers 1)",
    )


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print the per-phase timing table",
    )
    sub_parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="enable observability and write the merged JSONL run log",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The SADP cut-process design-rule set (Section II-B of the paper).

Seven rules govern the process::

    w_line     minimum metal line width
    w_spacer   spacer width == minimum line-to-line spacing (grid design)
    w_cut      minimum cut-pattern width
    w_core     minimum core-pattern width
    d_cut      minimum cut-to-cut distance
    d_core     minimum core-to-core distance
    d_overlap  length a cut pattern overlaps a spacer

and must satisfy the paper's Eqs. (1)-(3)::

    (1)  w_line == w_spacer
    (2)  w_cut == w_core  <  d_cut == d_core
    (3)  d_core < w_line + 2*w_spacer - 2*d_overlap

Violating rule sets raise :class:`~repro.errors.DesignRuleError` at
construction. The default instance is the paper's 10 nm-node setting:
``w_line = w_spacer = w_cut = w_core = 20 nm`` and
``d_cut = d_core = 30 nm``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import DesignRuleError


@dataclass(frozen=True)
class DesignRules:
    """Immutable, validated SADP cut-process rule set (all values in nm)."""

    w_line: int = 20
    w_spacer: int = 20
    w_cut: int = 20
    w_core: int = 20
    d_cut: int = 30
    d_core: int = 30
    d_overlap: int = 5

    def __post_init__(self) -> None:
        values = {
            "w_line": self.w_line,
            "w_spacer": self.w_spacer,
            "w_cut": self.w_cut,
            "w_core": self.w_core,
            "d_cut": self.d_cut,
            "d_core": self.d_core,
        }
        for name, value in values.items():
            if value <= 0:
                raise DesignRuleError(f"{name} must be positive, got {value}")
        if self.d_overlap < 0:
            raise DesignRuleError(f"d_overlap must be non-negative, got {self.d_overlap}")
        # Eq. (1)
        if self.w_line != self.w_spacer:
            raise DesignRuleError(
                f"Eq.(1) violated: w_line ({self.w_line}) != w_spacer ({self.w_spacer})"
            )
        # Eq. (2)
        if self.w_cut != self.w_core:
            raise DesignRuleError(
                f"Eq.(2) violated: w_cut ({self.w_cut}) != w_core ({self.w_core})"
            )
        if self.d_cut != self.d_core:
            raise DesignRuleError(
                f"Eq.(2) violated: d_cut ({self.d_cut}) != d_core ({self.d_core})"
            )
        if not self.w_cut < self.d_cut:
            raise DesignRuleError(
                f"Eq.(2) violated: w_cut ({self.w_cut}) must be < d_cut ({self.d_cut})"
            )
        # Eq. (3)
        bound = self.w_line + 2 * self.w_spacer - 2 * self.d_overlap
        if not self.d_core < bound:
            raise DesignRuleError(
                f"Eq.(3) violated: d_core ({self.d_core}) must be < "
                f"w_line + 2*w_spacer - 2*d_overlap ({bound})"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def pitch(self) -> int:
        """Track pitch of the routing grid: one wire plus one spacer."""
        return self.w_line + self.w_spacer

    @property
    def d_indep(self) -> float:
        """Independence distance of Theorem 1.

        Two patterns farther apart than ``sqrt(2) * (w_line + 2*w_spacer)``
        never overlay each other regardless of color assignment.
        """
        return math.sqrt(2.0) * (self.w_line + 2 * self.w_spacer)

    @property
    def d_indep_tracks(self) -> int:
        """Independence distance expressed as a track-difference bound.

        From the Theorem 2 proof: aligned pairs (Xmin == 0 or Ymin == 0) are
        independent once the nonzero track difference reaches 3; diagonal
        pairs once both differences reach 2. This property returns 3, the
        radius used for neighbour queries (a superset of the dependent set;
        the relation classifier then filters exactly).
        """
        return 3

    @property
    def overlay_unit_nm(self) -> int:
        """One 'unit' of side overlay (the paper counts units of w_line)."""
        return self.w_line

    def mergeable_core_gap(self, gap_nm: int) -> bool:
        """True when two core patterns at ``gap_nm`` must be merged.

        Core patterns closer than ``d_core`` cannot coexist separately; the
        merge technique (Fig. 2) fuses them into one core pattern that is
        later split by a cut.
        """
        return 0 <= gap_nm < self.d_core

    def scaled(self, factor: int) -> "DesignRules":
        """A rule set with every length multiplied by ``factor``.

        Useful for rasterisation-resolution experiments; the Eq. (1)-(3)
        relations are scale invariant so the result is always valid.
        """
        if factor <= 0:
            raise DesignRuleError(f"scale factor must be positive, got {factor}")
        return DesignRules(
            w_line=self.w_line * factor,
            w_spacer=self.w_spacer * factor,
            w_cut=self.w_cut * factor,
            w_core=self.w_core * factor,
            d_cut=self.d_cut * factor,
            d_core=self.d_core * factor,
            d_overlap=self.d_overlap * factor,
        )


#: The paper's experimental rule set (10 nm node).
PAPER_10NM_RULES = DesignRules()

"""Geometric design-rule checks on rectangle layouts (nm coordinates).

These are the polygon-level checks used by the decomposition verifier and
the tests; the bitmap engine has its own pixel-level equivalents. Checks
report :class:`DrcViolation` records rather than raising, because callers
(the cut-conflict analysis in particular) must distinguish violations over
target patterns (real conflicts) from violations over spacers (ignorable
per Ma et al. [12]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geometry import Rect


@dataclass(frozen=True)
class DrcViolation:
    """One rule violation: which rule, where, and the offending value."""

    rule: str
    location: Rect
    value: int
    limit: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DRC<{self.rule} {self.value}<{self.limit} at {self.location}>"


def check_min_width(shapes: Sequence[Rect], min_width: int, rule: str = "min_width") -> List[DrcViolation]:
    """Flag rectangles whose short side is below ``min_width``."""
    violations = []
    for r in shapes:
        short = min(r.width, r.height)
        if short < min_width:
            violations.append(DrcViolation(rule, r, short, min_width))
    return violations


def check_min_spacing(
    shapes: Sequence[Rect],
    min_spacing: int,
    rule: str = "min_spacing",
    restrict_to: Optional[Sequence[Rect]] = None,
) -> List[DrcViolation]:
    """Flag pairs of rectangles closer than ``min_spacing`` (Euclidean gap).

    When ``restrict_to`` is given, a violation is only reported if its
    violation region (hull of the gap) intersects one of those rectangles —
    this implements the "cut conflicts only count over target patterns"
    semantics of Section II-B.
    """
    violations = []
    limit_sq = min_spacing * min_spacing
    for i, a in enumerate(shapes):
        for b in shapes[i + 1 :]:
            if a.overlaps(b) or a.touches(b):
                continue  # merged/abutting shapes are one pattern, not a spacing pair
            gap_sq = a.euclidean_gap_sq(b)
            if gap_sq >= limit_sq:
                continue
            region = _gap_region(a, b)
            if restrict_to is not None and not any(
                region.overlaps(t) for t in restrict_to
            ):
                continue
            violations.append(
                DrcViolation(rule, region, int(gap_sq ** 0.5), min_spacing)
            )
    return violations


def _gap_region(a: Rect, b: Rect) -> Rect:
    """The rectangle spanning the gap between two disjoint rectangles."""
    xs = sorted([a.xlo, a.xhi, b.xlo, b.xhi])
    ys = sorted([a.ylo, a.yhi, b.ylo, b.yhi])
    xlo, xhi = xs[1], xs[2]
    ylo, yhi = ys[1], ys[2]
    # Degenerate (aligned) gaps get widened to 1 unit so Rect stays valid.
    if xlo >= xhi:
        xlo, xhi = xlo, xlo + 1
    if ylo >= yhi:
        ylo, yhi = ylo, ylo + 1
    return Rect(min(xlo, xhi - 1), min(ylo, yhi - 1), xhi, yhi)

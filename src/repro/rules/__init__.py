"""SADP cut-process design rules and nm-level rule checking."""

from .design_rules import DesignRules
from .drc import DrcViolation, check_min_width, check_min_spacing

__all__ = ["DesignRules", "DrcViolation", "check_min_width", "check_min_spacing"]

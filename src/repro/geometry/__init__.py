"""Manhattan geometry substrate.

Everything the router and the SADP decomposition engine need to talk about
shapes: integer points, axis-aligned rectangles, rectilinear polygons with
fragmentation into rectangles (the primitive behind Theorem 3 of the paper),
1-D interval arithmetic, wire segments, and a uniform-bucket spatial index
for neighbour queries.

All coordinates are integers; callers choose the unit (tracks or nm).
"""

from .point import Point
from .interval import Interval, IntervalSet
from .rect import Rect
from .segment import Segment, points_to_segments
from .polygon import RectilinearPolygon, decompose_rectilinear
from .spatial import GridIndex

__all__ = [
    "Point",
    "Interval",
    "IntervalSet",
    "Rect",
    "Segment",
    "points_to_segments",
    "RectilinearPolygon",
    "decompose_rectilinear",
    "GridIndex",
]

"""Half-open 1-D integer intervals and interval sets.

Overlay metrology reduces to 1-D bookkeeping along pattern boundaries:
"which sections of this edge are protected by a spacer?" is an interval
subtraction. :class:`Interval` is a single ``[lo, hi)`` span;
:class:`IntervalSet` is a normalised disjoint union supporting the boolean
operations the decomposition engine needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from ..errors import GeometryError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[lo, hi)`` with ``lo < hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise GeometryError(f"empty interval [{self.lo}, {self.hi})")

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= value < self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the interiors intersect (touching endpoints do not count)."""
        return self.lo < other.hi and other.lo < self.hi

    def touches_or_overlaps(self, other: "Interval") -> bool:
        """True when the closures intersect (shared endpoint counts)."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo < hi else None

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def gap_to(self, other: "Interval") -> int:
        """Distance between the two intervals; 0 when they touch or overlap."""
        if self.touches_or_overlaps(other):
            return 0
        return other.lo - self.hi if other.lo >= self.hi else self.lo - other.hi

    def shifted(self, delta: int) -> "Interval":
        return Interval(self.lo + delta, self.hi + delta)

    def expanded(self, amount: int) -> "Interval":
        """Dilate both ends by ``amount`` (may not empty the interval)."""
        if 2 * amount <= -self.length:
            raise GeometryError(f"expanding {self} by {amount} empties it")
        return Interval(self.lo - amount, self.hi + amount)


class IntervalSet:
    """A normalised (sorted, disjoint, non-touching) set of intervals.

    Supports union, subtraction and intersection in O(n + m), which is all
    the boundary-coverage bookkeeping needs. Adjacent intervals are merged,
    so ``total_length`` is well defined and iteration order is canonical.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: List[Interval] = self._normalise(list(intervals))

    @staticmethod
    def _normalise(ivs: List[Interval]) -> List[Interval]:
        if not ivs:
            return []
        ivs.sort()
        merged = [ivs[0]]
        for iv in ivs[1:]:
            last = merged[-1]
            if iv.lo <= last.hi:
                if iv.hi > last.hi:
                    merged[-1] = Interval(last.lo, iv.hi)
            else:
                merged.append(iv)
        return merged

    @classmethod
    def _wrap(cls, ivs: List[Interval]) -> "IntervalSet":
        out = cls.__new__(cls)
        out._ivs = ivs
        return out

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(tuple(self._ivs))

    @property
    def total_length(self) -> int:
        return sum(iv.length for iv in self._ivs)

    def spans(self) -> List[Tuple[int, int]]:
        """The intervals as plain (lo, hi) tuples."""
        return [(iv.lo, iv.hi) for iv in self._ivs]

    def contains(self, value: int) -> bool:
        # Binary search over the sorted spans.
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._ivs[mid]
            if value < iv.lo:
                hi = mid
            elif value >= iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self._ivs) + list(other._ivs))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference self - other."""
        result: List[Interval] = []
        cut = list(other._ivs)
        j = 0
        for iv in self._ivs:
            lo = iv.lo
            while j < len(cut) and cut[j].hi <= lo:
                j += 1
            k = j
            while k < len(cut) and cut[k].lo < iv.hi:
                c = cut[k]
                if c.lo > lo:
                    result.append(Interval(lo, c.lo))
                lo = max(lo, c.hi)
                if c.hi >= iv.hi:
                    break
                k += 1
            if lo < iv.hi:
                result.append(Interval(lo, iv.hi))
        return IntervalSet._wrap(result)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Interval] = []
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            ix = a[i].intersection(b[j])
            if ix is not None:
                result.append(ix)
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet._wrap(result)

    def max_run_length(self) -> int:
        """Length of the longest single interval (0 when empty).

        Hard-overlay classification needs the longest *contiguous* uncovered
        boundary run, not the total.
        """
        return max((iv.length for iv in self._ivs), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalSet({self.spans()})"

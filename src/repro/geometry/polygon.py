"""Rectilinear polygons and their fragmentation into rectangles.

Theorem 3 of the paper extends the pairwise overlay-scenario analysis from
rectangles to arbitrary rectilinear polygons by *fragmenting* every polygon
into rectangles first: fragments of the same polygon never overlay each
other, fragments of different polygons follow the rectangle scenario table.

A :class:`RectilinearPolygon` is stored as a canonical set of disjoint
rectangles produced by a y-slab sweep, so two polygons describing the same
point set compare equal regardless of how they were assembled.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import GeometryError
from .interval import Interval, IntervalSet
from .point import Point
from .rect import Rect


def _slab_decompose(rects: Sequence[Rect]) -> List[Rect]:
    """Decompose a union of rectangles into disjoint maximal y-slab rects.

    Classic sweep: cut the plane at every distinct y coordinate, compute the
    covered x-intervals inside each slab, then merge vertically adjacent
    slabs with identical x-coverage. Output is canonical for a given point
    set and runs in O(R^2) which is ample for mask-sized inputs.
    """
    if not rects:
        return []
    ys = sorted({r.ylo for r in rects} | {r.yhi for r in rects})
    slabs: List[Tuple[int, int, IntervalSet]] = []
    for ylo, yhi in zip(ys, ys[1:]):
        cover = IntervalSet(
            Interval(r.xlo, r.xhi) for r in rects if r.ylo <= ylo and r.yhi >= yhi
        )
        if cover:
            slabs.append((ylo, yhi, cover))
    # Merge vertically contiguous slabs with identical coverage.
    merged: List[Tuple[int, int, IntervalSet]] = []
    for slab in slabs:
        if merged and merged[-1][1] == slab[0] and merged[-1][2] == slab[2]:
            merged[-1] = (merged[-1][0], slab[1], slab[2])
        else:
            merged.append(slab)
    out: List[Rect] = []
    for ylo, yhi, cover in merged:
        for iv in cover:
            out.append(Rect(iv.lo, ylo, iv.hi, yhi))
    out.sort()
    return out


def decompose_rectilinear(rects: Iterable[Rect]) -> List[Rect]:
    """Fragment a (possibly overlapping) union of rectangles into disjoint ones."""
    return _slab_decompose(list(rects))


class RectilinearPolygon:
    """A connected or disconnected rectilinear region, canonically fragmented.

    The constructor accepts any covering set of rectangles; overlapping
    inputs are fine. Equality and hashing use the canonical fragmentation.
    """

    __slots__ = ("_fragments", "_bbox")

    def __init__(self, rects: Iterable[Rect]) -> None:
        fragments = _slab_decompose(list(rects))
        if not fragments:
            raise GeometryError("rectilinear polygon must cover at least one cell")
        self._fragments: Tuple[Rect, ...] = tuple(fragments)
        self._bbox = fragments[0]
        for r in fragments[1:]:
            self._bbox = self._bbox.hull(r)

    @property
    def fragments(self) -> Tuple[Rect, ...]:
        """The canonical disjoint rectangle fragmentation (Theorem 3)."""
        return self._fragments

    @property
    def bbox(self) -> Rect:
        return self._bbox

    @property
    def area(self) -> int:
        return sum(r.area for r in self._fragments)

    def contains_point(self, p: Point) -> bool:
        return any(r.contains_point(p) for r in self._fragments)

    def overlaps(self, other: "RectilinearPolygon") -> bool:
        if not self._bbox.overlaps(other._bbox):
            return False
        return any(
            a.overlaps(b) for a in self._fragments for b in other._fragments
        )

    def gap_to(self, other: "RectilinearPolygon") -> int:
        """Minimum Chebyshev-style rectilinear gap between the two regions.

        Returns the minimum over fragment pairs of ``max(gap_x, gap_y)``;
        0 when the regions touch or overlap.
        """
        best = None
        for a in self._fragments:
            for b in other._fragments:
                g = max(a.gap_x(b), a.gap_y(b))
                best = g if best is None else min(best, g)
        assert best is not None
        return best

    def translated(self, dx: int, dy: int) -> "RectilinearPolygon":
        return RectilinearPolygon(r.translated(dx, dy) for r in self._fragments)

    def is_connected(self) -> bool:
        """True when the fragments form one edge-connected region."""
        n = len(self._fragments)
        if n <= 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for j in range(n):
                if j not in seen and self._touch(self._fragments[i], self._fragments[j]):
                    seen.add(j)
                    stack.append(j)
        return len(seen) == n

    @staticmethod
    def _touch(a: Rect, b: Rect) -> bool:
        """Edge (not corner-only) adjacency between disjoint fragments."""
        share_x = a.x_interval.overlaps(b.x_interval)
        share_y = a.y_interval.overlaps(b.y_interval)
        if share_x and (a.yhi == b.ylo or b.yhi == a.ylo):
            return True
        if share_y and (a.xhi == b.xlo or b.xhi == a.xlo):
            return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectilinearPolygon):
            return NotImplemented
        return self._fragments == other._fragments

    def __hash__(self) -> int:
        return hash(self._fragments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectilinearPolygon({len(self._fragments)} fragments, bbox={self._bbox})"

"""Axis-aligned integer rectangles.

:class:`Rect` is the workhorse shape of the library: wires, pins, blockages,
mask patterns and polygon fragments are all rectangles. The half-open
convention ``[xlo, xhi) x [ylo, yhi)`` makes tiling exact (no double-counted
boundary pixels in the bitmap engine) and keeps areas integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..errors import GeometryError
from .interval import Interval
from .point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """Half-open axis-aligned rectangle ``[xlo, xhi) x [ylo, yhi)``."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if self.xlo >= self.xhi or self.ylo >= self.yhi:
            raise GeometryError(
                f"degenerate rect [{self.xlo},{self.xhi}) x [{self.ylo},{self.yhi})"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Bounding box of two points, inflated to at least 1x1."""
        xlo, xhi = min(a.x, b.x), max(a.x, b.x) + 1
        ylo, yhi = min(a.y, b.y), max(a.y, b.y) + 1
        return cls(xlo, ylo, xhi, yhi)

    @classmethod
    def from_center(cls, center: Point, half_w: int, half_h: int) -> "Rect":
        """Rectangle of size (2*half_w) x (2*half_h) centred on ``center``."""
        return cls(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    # ------------------------------------------------------------------ #
    # Basic measures
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        return self.yhi - self.ylo

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def x_interval(self) -> Interval:
        return Interval(self.xlo, self.xhi)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.ylo, self.yhi)

    @property
    def is_horizontal(self) -> bool:
        """Wider than tall (squares count as horizontal)."""
        return self.width >= self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.xlo + self.xhi) / 2, (self.ylo + self.yhi) / 2)

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corner lattice points (closed convention), CCW from SW."""
        return (
            Point(self.xlo, self.ylo),
            Point(self.xhi, self.ylo),
            Point(self.xhi, self.yhi),
            Point(self.xlo, self.yhi),
        )

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #

    def contains_point(self, p: Point) -> bool:
        return self.xlo <= p.x < self.xhi and self.ylo <= p.y < self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the interiors intersect."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def touches(self, other: "Rect") -> bool:
        """True when closures intersect but interiors do not (edge/corner abutment)."""
        closed = (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )
        return closed and not self.overlaps(other)

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #

    def gap_x(self, other: "Rect") -> int:
        """Horizontal gap between projections (0 when they overlap in x)."""
        return self.x_interval.gap_to(other.x_interval)

    def gap_y(self, other: "Rect") -> int:
        """Vertical gap between projections (0 when they overlap in y)."""
        return self.y_interval.gap_to(other.y_interval)

    def euclidean_gap_sq(self, other: "Rect") -> int:
        """Squared Euclidean boundary-to-boundary distance."""
        gx, gy = self.gap_x(other), self.gap_y(other)
        return gx * gx + gy * gy

    def manhattan_gap(self, other: "Rect") -> int:
        return self.gap_x(other) + self.gap_y(other)

    # ------------------------------------------------------------------ #
    # Constructive ops
    # ------------------------------------------------------------------ #

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        xlo, xhi = max(self.xlo, other.xlo), min(self.xhi, other.xhi)
        ylo, yhi = max(self.ylo, other.ylo), min(self.yhi, other.yhi)
        if xlo < xhi and ylo < yhi:
            return Rect(xlo, ylo, xhi, yhi)
        return None

    def hull(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def inflated(self, amount: int) -> "Rect":
        """Dilate (erode when negative) every side by ``amount``."""
        return Rect(
            self.xlo - amount, self.ylo - amount, self.xhi + amount, self.yhi + amount
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def scaled(self, factor: int) -> "Rect":
        """Scale all coordinates by a positive integer factor."""
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return Rect(
            self.xlo * factor, self.ylo * factor, self.xhi * factor, self.yhi * factor
        )

    def subtract(self, other: "Rect") -> Tuple["Rect", ...]:
        """Set difference self - other as up to four disjoint rectangles."""
        ix = self.intersection(other)
        if ix is None:
            return (self,)
        pieces = []
        if self.ylo < ix.ylo:  # bottom slab
            pieces.append(Rect(self.xlo, self.ylo, self.xhi, ix.ylo))
        if ix.yhi < self.yhi:  # top slab
            pieces.append(Rect(self.xlo, ix.yhi, self.xhi, self.yhi))
        if self.xlo < ix.xlo:  # left slab (middle band only)
            pieces.append(Rect(self.xlo, ix.ylo, ix.xlo, ix.yhi))
        if ix.xhi < self.xhi:  # right slab (middle band only)
            pieces.append(Rect(ix.xhi, ix.ylo, self.xhi, ix.yhi))
        return tuple(pieces)

    def cells(self) -> Iterator[Point]:
        """Iterate the unit lattice cells covered by the rectangle."""
        for x in range(self.xlo, self.xhi):
            for y in range(self.ylo, self.yhi):
                yield Point(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect({self.xlo},{self.ylo},{self.xhi},{self.yhi})"

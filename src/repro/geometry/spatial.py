"""Uniform-bucket spatial index for neighbour queries.

Scenario detection asks, after each net is routed: "which existing
rectangles lie within the independence distance of this new rectangle?"
(Theorem 1). A uniform grid of buckets answers that in expected O(1) per
query for routing-style workloads where shapes are small and evenly spread.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, Iterator, List, Set, Tuple, TypeVar

from ..errors import GeometryError
from .rect import Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Maps rectangles to arbitrary payloads; queries by region.

    Items may be inserted and removed (rip-up & reroute removes a net's
    shapes). The same payload may be registered under several rectangles.
    """

    def __init__(self, bucket_size: int = 8) -> None:
        if bucket_size <= 0:
            raise GeometryError(f"bucket size must be positive, got {bucket_size}")
        self._bucket = bucket_size
        self._cells: Dict[Tuple[int, int], List[Tuple[Rect, T]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _keys(self, rect: Rect) -> Iterator[Tuple[int, int]]:
        b = self._bucket
        for bx in range(rect.xlo // b, (rect.xhi - 1) // b + 1):
            for by in range(rect.ylo // b, (rect.yhi - 1) // b + 1):
                yield bx, by

    def insert(self, rect: Rect, item: T) -> None:
        for key in self._keys(rect):
            self._cells[key].append((rect, item))
        self._count += 1

    def remove(self, rect: Rect, item: T) -> bool:
        """Remove one (rect, item) registration; returns False if absent."""
        entry = (rect, item)
        present = False
        for key in self._keys(rect):
            bucket = self._cells.get(key)
            if bucket and entry in bucket:
                bucket.remove(entry)
                present = True
                if not bucket:
                    del self._cells[key]
        if present:
            self._count -= 1
        return present

    def query(self, region: Rect) -> List[Tuple[Rect, T]]:
        """All (rect, item) pairs whose rect overlaps ``region`` (deduplicated)."""
        b = self._bucket
        bx_lo, bx_hi = region.xlo // b, (region.xhi - 1) // b
        by_lo, by_hi = region.ylo // b, (region.yhi - 1) // b
        if bx_lo == bx_hi and by_lo == by_hi:
            # Single-bucket region (the common case for cut/wire-sized
            # queries): every entry appears at most once, skip the
            # dedup-set bookkeeping.
            bucket = self._cells.get((bx_lo, by_lo))
            if not bucket:
                return []
            return [(rect, item) for rect, item in bucket if rect.overlaps(region)]
        seen: Set[Tuple[Rect, int]] = set()
        out: List[Tuple[Rect, T]] = []
        for bx in range(bx_lo, bx_hi + 1):
            for by in range(by_lo, by_hi + 1):
                for rect, item in self._cells.get((bx, by), ()):
                    if rect.overlaps(region):
                        ident = (rect, id(item))
                        if ident in seen:
                            continue
                        seen.add(ident)
                        out.append((rect, item))
        return out

    def neighbours(self, rect: Rect, distance: int) -> List[Tuple[Rect, T]]:
        """All entries whose rect lies strictly within ``distance`` of ``rect``.

        Distance is the rectilinear gap ``max(gap_x, gap_y)`` — the metric
        the track-difference scenario tuples are built on. The query shape
        itself (identical rect+item) is *not* filtered; callers exclude
        self-hits by payload.
        """
        region = rect.inflated(distance)
        out = []
        for other, item in self.query(region):
            if max(rect.gap_x(other), rect.gap_y(other)) < distance:
                out.append((other, item))
        return out

    def items(self) -> Iterator[Tuple[Rect, T]]:
        """Iterate all registrations (each exactly once).

        Registrations spanning several buckets are deduplicated by identity
        of their first bucket.
        """
        emitted: Set[Tuple[int, int, int]] = set()
        for key, bucket in self._cells.items():
            for rect, item in bucket:
                first_key = next(self._keys(rect))
                if key != first_key:
                    continue
                yield rect, item

    def clear(self) -> None:
        self._cells.clear()
        self._count = 0

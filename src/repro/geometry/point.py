"""Integer 2-D points with Manhattan-metric helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Point:
    """An integer lattice point.

    Ordering is lexicographic (x, then y), which gives deterministic
    iteration orders throughout the library.
    """

    x: int
    y: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def scaled(self, factor: int) -> "Point":
        """Component-wise scaling by an integer factor."""
        return Point(self.x * factor, self.y * factor)

    def manhattan(self, other: "Point") -> int:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev(self, other: "Point") -> int:
        """Chebyshev (L-infinity) distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def euclidean_sq(self, other: "Point") -> int:
        """Squared Euclidean distance (kept integral on purpose)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: int, dy: int) -> "Point":
        """A copy shifted by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def is_aligned_with(self, other: "Point") -> bool:
        """True when the two points share a row or a column."""
        return self.x == other.x or self.y == other.y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y})"


#: The four Manhattan unit steps, in deterministic order E, W, N, S.
MANHATTAN_STEPS = (Point(1, 0), Point(-1, 0), Point(0, 1), Point(0, -1))

"""Wire segments in track coordinates.

A routed net is a set of :class:`Segment` objects (plus vias). A segment
lives on one layer, runs horizontally or vertically along a track, and
covers an inclusive range of grid points. Segments convert to rectangles
for scenario detection and to nm shapes for decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import GeometryError
from .point import Point
from .rect import Rect


@dataclass(frozen=True, order=True)
class Segment:
    """An axis-parallel run of grid points on one routing layer.

    ``a`` and ``b`` are inclusive endpoints; a degenerate segment with
    ``a == b`` represents a single grid point (e.g. an isolated pin stub).
    """

    layer: int
    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise GeometryError(f"segment {self.a}->{self.b} is not axis-parallel")
        # Canonicalise endpoint order for deterministic hashing/eq.
        if self.b < self.a:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    @property
    def horizontal(self) -> bool:
        """True for horizontal (constant-y) segments; points count as horizontal."""
        return self.a.y == self.b.y

    @property
    def is_point(self) -> bool:
        return self.a == self.b

    @property
    def length(self) -> int:
        """Number of grid *steps* spanned (0 for a point)."""
        return self.a.manhattan(self.b)

    def points(self) -> Iterator[Point]:
        """All grid points on the segment, in order."""
        if self.horizontal:
            for x in range(self.a.x, self.b.x + 1):
                yield Point(x, self.a.y)
        else:
            for y in range(self.a.y, self.b.y + 1):
                yield Point(self.a.x, y)

    def to_rect(self) -> Rect:
        """Grid-cell footprint as a half-open rectangle (1 track wide)."""
        return Rect(self.a.x, self.a.y, self.b.x + 1, self.b.y + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Seg(L{self.layer} {self.a}->{self.b})"


def points_to_segments(layer: int, pts: List[Point]) -> List[Segment]:
    """Compress an ordered grid-point path into maximal straight segments.

    The input is the backtraced A* path (adjacent points differ by one
    Manhattan step). Consecutive collinear steps merge into one segment;
    direction changes start a new one. A single point becomes one degenerate
    segment.
    """
    if not pts:
        return []
    if len(pts) == 1:
        return [Segment(layer, pts[0], pts[0])]
    segments: List[Segment] = []
    run_start = pts[0]
    prev = pts[0]
    direction = None
    for cur in pts[1:]:
        step = (cur.x - prev.x, cur.y - prev.y)
        if abs(step[0]) + abs(step[1]) != 1:
            raise GeometryError(f"path points {prev}->{cur} are not adjacent")
        if direction is None:
            direction = step
        elif step != direction:
            segments.append(Segment(layer, run_start, prev))
            run_start = prev
            direction = step
        prev = cur
    segments.append(Segment(layer, run_start, prev))
    return segments

"""Routing result records and aggregate metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..color import Color
from ..geometry import Segment
from ..grid import Via


@dataclass
class NetRoute:
    """The committed route of one net."""

    net_id: int
    segments: List[Segment] = field(default_factory=list)
    vias: List[Via] = field(default_factory=list)
    success: bool = False
    ripups: int = 0

    @property
    def wirelength(self) -> int:
        return sum(seg.length for seg in self.segments)

    @property
    def via_count(self) -> int:
        return len(self.vias)


@dataclass
class RoutingResult:
    """Everything the evaluation section reports, for one run.

    ``colorings`` maps layer -> net -> color; overlay figures are both in
    abstract units (1 unit = w_line) and nm. ``cut_conflicts`` counts the
    type A + type B conflicts remaining in the committed result — zero for
    the proposed router by construction (contribution 5 of the paper).
    """

    routes: Dict[int, NetRoute] = field(default_factory=dict)
    colorings: Dict[int, Dict[int, Color]] = field(default_factory=dict)
    overlay_units: float = 0.0
    overlay_nm: float = 0.0
    hard_overlays: int = 0
    cut_conflicts: int = 0
    total_ripups: int = 0
    color_flips: int = 0
    cpu_seconds: float = 0.0

    @property
    def routed_count(self) -> int:
        return sum(1 for r in self.routes.values() if r.success)

    @property
    def routability(self) -> float:
        """Fraction of nets successfully routed (the paper's 'Rout. %')."""
        if not self.routes:
            return 0.0
        return self.routed_count / len(self.routes)

    @property
    def total_wirelength(self) -> int:
        return sum(r.wirelength for r in self.routes.values() if r.success)

    @property
    def total_vias(self) -> int:
        return sum(r.via_count for r in self.routes.values() if r.success)

    def summary(self) -> str:
        """One-line human-readable digest (used by the examples)."""
        return (
            f"routed {self.routed_count}/{len(self.routes)} "
            f"({self.routability * 100:.1f}%), "
            f"overlay {self.overlay_nm:.0f} nm ({self.overlay_units:.0f} units), "
            f"{self.cut_conflicts} cut conflicts, "
            f"wl {self.total_wirelength}, vias {self.total_vias}, "
            f"{self.cpu_seconds:.2f}s"
        )

"""The overall overlay-aware detailed routing flow (Fig. 18/19).

For every net, in routing order::

    repeat
        path      <- overlay-aware A* (Eq. 5 costs + transient penalties)
        scenarios <- update per-layer overlay constraint graphs
        if hard odd cycle or unavoidable cut conflict:
            rip up, penalise the offending cells, retry (<= B times)
    pseudo-color the net
    if the net's induced side overlay > f_threshold: color flipping

and after all nets are routed, one full-layout color flipping pass.

The committed result is guaranteed free of hard overlays and cut
conflicts; remaining (non-hard) side overlays are minimised by the
constraint-graph coloring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..color import Color
from ..core import (
    ConstraintEdge,
    CutConflictChecker,
    DetectedScenario,
    OverlayConstraintGraph,
    ScenarioDetector,
    ScenarioType,
    flip_colors,
    make_constraint_graph,
    make_detector,
    pseudo_color,
)
from ..core.cut_conflict import CriticalCut
from ..geometry import Point, Segment
from ..grid import CellState, Direction, RoutingGrid
from ..netlist import Net, Netlist
from .astar import (
    AStarRouter,
    PrecomputedAttempt,
    SearchRequest,
    SearchResult,
    extend_with_taps,
)
from .cost import CostParams, PAPER_PARAMS
from .overlay_cache import OverlayCostCache
from .result import NetRoute, RoutingResult


class SadpRouter:
    """Overlay-aware SADP-cut detailed router (the paper's algorithm)."""

    def __init__(
        self,
        grid: RoutingGrid,
        netlist: Netlist,
        params: CostParams = PAPER_PARAMS,
        enable_flipping: bool = True,
        enable_t2b_penalty: bool = True,
        enable_merge: bool = True,
        order: str = "hpwl",
        workers=1,
        executor: str = "process",
        guidance: str = "auto",
        shard: str = "auto",
        kernel: str = "auto",
        core: str = "vector",
    ) -> None:
        self.grid = grid
        self.netlist = netlist
        self.params = params
        self.enable_flipping = enable_flipping
        self.enable_t2b_penalty = enable_t2b_penalty
        #: Net-ordering strategy (see Netlist.ordered_for_routing).
        self.order = order
        #: Parallel batch routing: number of workers for the speculative
        #: attempt-0 searches (1 = the plain sequential flow) and the
        #: executor kind ("process" | "thread" | "serial"). Bit-identical
        #: to sequential for every value — see repro.router.parallel.
        #: ``workers="auto"`` predicts the batched-net fraction from the
        #: scheduler before routing and picks serial or parallel per run.
        self.workers = workers if workers == "auto" else max(1, int(workers))
        self.executor = executor
        #: Future-cost corridor guidance for the A* fast path
        #: ("off" | "auto" | "on") — bit-identical results for every
        #: value; see repro.router.guidance.
        if guidance not in ("off", "auto", "on"):
            raise ValueError(f"unknown guidance mode: {guidance!r}")
        self.guidance = guidance
        #: Region-sharded routing ("off" | "auto" | "on") — with multiple
        #: workers, "auto" prefers the active shard decomposition over
        #: the passive batch scheduler whenever the shard plan clears the
        #: engagement bar; "on" forces it (minimal 2x2 tiling if needed);
        #: "off" keeps the PR-3 batch path. Bit-identical results for
        #: every value — see repro.router.sharding.
        if shard not in ("off", "auto", "on"):
            raise ValueError(f"unknown shard mode: {shard!r}")
        self.shard = shard
        #: A* inner-loop implementation ("python" | "auto" | "numba") —
        #: "auto" runs the compiled kernel exactly when numba is
        #: importable and the plain fast path otherwise. Bit-identical
        #: results for every value — see repro.router.kernel.
        if kernel not in ("python", "auto", "numba"):
            raise ValueError(f"unknown kernel mode: {kernel!r}")
        self.kernel = kernel
        #: Constraint-engine backend ("vector" | "object") — "vector" runs
        #: the SoA edge store, batched scenario detection, and vectorized
        #: coloring; "object" is the bit-exact per-object reference path.
        #: Results are identical for both values (gated in CI).
        if core not in ("vector", "object"):
            raise ValueError(f"unknown core backend: {core!r}")
        self.core = core
        #: ShardPlan computed by :meth:`_resolve_workers` when the run
        #: goes sharded (reused by dispatch to avoid re-planning).
        self._shard_plan = None
        #: ParallelStats of the last route_all (None for sequential runs).
        self.parallel_stats = None
        #: ``workers="auto"`` rationale dict (the ``parallel_decision``
        #: trace attributes); None until :meth:`_resolve_workers` runs.
        self._auto_rationale = None
        #: Ablation knob for contribution 1: with the merge technique
        #: disabled, abutting tips (type 1-b) cannot be merged-and-cut —
        #: every 1-b scenario forces a rip-up, as in the trim process.
        self.enable_merge = enable_merge

        detector_backend = "vector" if core == "vector" else "object"
        graph_backend = "soa" if core == "vector" else "object"
        self.detector = make_detector(grid.num_layers, backend=detector_backend)
        self.graphs: List[OverlayConstraintGraph] = [
            make_constraint_graph(graph_backend) for _ in range(grid.num_layers)
        ]
        self.colorings: List[Dict[int, Color]] = [
            {} for _ in range(grid.num_layers)
        ]
        self.checker = CutConflictChecker(grid.rules, grid.num_layers)
        self._scenarios_by_net: Dict[int, List[DetectedScenario]] = {}
        self._penalties: Dict[Tuple[int, int, int], float] = {}
        self._flip_count = 0
        self._active_net = -1
        self._blockers: Set[int] = set()
        self._committed: Set[int] = set()
        self._evicted_routes: Dict[int, NetRoute] = {}

        #: Memoised Eq. (5) cost grids, invalidated incrementally through
        #: the grid's change-listener hook as commits/rip-ups/evictions
        #: touch occupancy — retries of a net only pay for the cells that
        #: actually changed, not a full re-vectorisation.
        self.overlay_cache: Optional[OverlayCostCache] = (
            OverlayCostCache(grid, params.gamma, params.delta_tip)
            if enable_t2b_penalty
            else None
        )
        self.engine = AStarRouter(
            grid,
            params,
            penalty_map=self._penalties,
            overlay_terms=(
                (params.gamma, params.delta_tip) if enable_t2b_penalty else None
            ),
            overlay_cache=self.overlay_cache,
            guidance=guidance,
            kernel=kernel,
        )
        self._reserve_pins()

    def _reserve_pins(self) -> None:
        """Claim every pin candidate cell for its net before routing.

        Without reservation an early net may route straight across a later
        net's only pin location, making that net unroutable for no reason.
        """
        self._pin_cells: Dict[int, List[Tuple[int, Point]]] = {}
        for net in self.netlist:
            cells = []
            for pin in (net.source, net.target, *net.taps):
                for p in pin.candidates:
                    if self.grid.in_bounds(pin.layer, p) and self.grid.is_free(
                        pin.layer, p
                    ):
                        self.grid.occupy(pin.layer, p, net.net_id)
                        cells.append((pin.layer, p))
            self._pin_cells[net.net_id] = cells

    # ------------------------------------------------------------------ #
    # Cost probes
    # ------------------------------------------------------------------ #

    def _overlay_probe(self, layer: int, pt: Point) -> float:
        """Eq. (5)'s overlay term for occupying ``pt``: ``gamma`` when it
        creates a type 2-b scenario (tip-to-tip at track distance 2 along
        the preferred direction) with another net, plus the soft
        ``delta_tip`` for a direct tip abutment (see CostParams)."""
        grid = self.grid
        if grid.layer_direction(layer) is Direction.HORIZONTAL:
            ahead = ((pt.x + 2, pt.y, pt.x + 1, pt.y), (pt.x - 2, pt.y, pt.x - 1, pt.y))
        else:
            ahead = ((pt.x, pt.y + 2, pt.x, pt.y + 1), (pt.x, pt.y - 2, pt.x, pt.y - 1))
        cost = 0.0
        own = self._active_net
        for fx, fy, mx, my in ahead:
            far = Point(fx, fy)
            mid = Point(mx, my)
            if not grid.in_bounds(layer, mid):
                continue
            mid_owner = grid.owner(layer, mid)
            if mid_owner >= 0 and mid_owner != own:
                cost += self.params.delta_tip  # abutting tip (type 1-b)
                continue
            if (
                mid_owner == int(CellState.FREE)
                and grid.in_bounds(layer, far)
                and grid.owner(layer, far) >= 0
                and grid.owner(layer, far) != own
            ):
                cost += self.params.gamma  # type 2-b
        return cost

    def _penalty_probe(self, layer: int, pt: Point) -> float:
        return self._penalties.get((layer, pt.x, pt.y), 0.0)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    #: Rounds of the post-routing conflict-repair loop.
    MAX_REPAIR_ROUNDS = 4

    def route_all(self) -> RoutingResult:
        """Route every net and return the fully colored result.

        Wall time comes from the ``route_all`` stopwatch span — identical
        semantics to the old ``time.perf_counter`` pair, but the same
        measurement now lands in the run log when observability is on.
        """
        with obs.stopwatch("route_all", nets=len(self.netlist)) as sw:
            result = self._route_all()
        result.cpu_seconds = sw.duration_s
        return result

    def _route_all(self) -> RoutingResult:
        result = RoutingResult()
        ordered = list(self.netlist.ordered_for_routing(self.order))
        workers, mode, auto_choice = self._resolve_workers(ordered)
        if mode == "sharded" and len(ordered) > 1:
            from .parallel import ShardedRouter

            runner = ShardedRouter(
                self,
                workers=workers,
                plan=self._shard_plan,
                executor=self.executor,
            )
            if auto_choice is not None:
                runner.stats.auto_decision = auto_choice[0]
                runner.stats.predicted_interior_fraction = auto_choice[1]
            runner.stats.decision_trace = self._auto_rationale or {}
            runner.route(ordered, result)
            self.parallel_stats = runner.stats
        elif mode == "batch" and workers > 1 and len(ordered) > 1:
            from .parallel import ParallelRouter

            runner = ParallelRouter(
                self, workers=workers, executor=self.executor
            )
            if auto_choice is not None:
                runner.stats.auto_decision = auto_choice[0]
                runner.stats.predicted_batched_fraction = auto_choice[1]
                runner.stats.decision_trace = self._auto_rationale or {}
            runner.route(ordered, result)
            self.parallel_stats = runner.stats
        else:
            if auto_choice is not None:
                from .parallel import ParallelStats, emit_decision_event

                self.parallel_stats = ParallelStats(
                    workers=1,
                    executor="serial",
                    mode="serial",
                    auto_decision=auto_choice[0],
                    predicted_batched_fraction=auto_choice[1],
                    decision_trace=self._auto_rationale or {},
                )
                emit_decision_event(self.parallel_stats.decision_trace)
            for net in ordered:
                result.routes[net.net_id] = self.route_net(net)
        result.routes.update(self._evicted_routes)
        self._evicted_routes.clear()
        self._rescue_pass(result)
        # Endgame fixpoint: full-layout flipping (Fig. 19 line 16) can
        # re-introduce a type B pattern, and repair's reroutes only get
        # greedy colors — so alternate flip and repair until both the
        # conflict set and the hard constraints are clean.
        for round_idx in range(self.MAX_REPAIR_ROUNDS + 1):
            self._final_flip()
            self._refresh_all_cuts()
            conflicts = self._unique_conflicts()
            if not conflicts:
                break
            self._repair_round(
                result, conflicts, last_round=(round_idx == self.MAX_REPAIR_ROUNDS)
            )
        else:
            # Ran out of rounds: the last repair force-unrouted the
            # offenders; re-run the global coloring on what remains, and
            # if that flip re-creates a conflict, trade the offender for
            # routability outright — the zero-conflict guarantee is
            # unconditional.
            for _ in range(self.MAX_REPAIR_ROUNDS + 1):
                self._final_flip()
                self._refresh_all_cuts()
                conflicts = self._unique_conflicts()
                if not conflicts:
                    break
                for conflict in conflicts:
                    net_id = max(
                        set(conflict.first.nets) | set(conflict.second.nets)
                    )
                    if net_id in self._committed:
                        self.rip_up_net(net_id)
                        result.routes[net_id] = NetRoute(net_id=net_id)
        result.routes.update(self._evicted_routes)
        self._evicted_routes.clear()
        result.colorings = {
            layer: dict(coloring) for layer, coloring in enumerate(self.colorings)
        }
        self._collect_metrics(result)
        result.total_ripups = sum(r.ripups for r in result.routes.values())
        result.color_flips = self._flip_count
        return result

    def _resolve_workers(self, ordered: Sequence[Net]):
        """Concrete worker count, parallel mode, and the auto decision.

        Returns ``(workers, mode, auto_choice)`` where ``mode`` is
        ``"sharded"`` (region decomposition, repro.router.sharding) or
        ``"batch"`` (PR-3 halo-disjoint batching; also the label for the
        plain sequential flow when ``workers`` resolves to 1), and
        ``auto_choice`` is ``None`` for explicit worker settings or
        ``(decision, predicted_fraction)`` for ``workers="auto"``.

        ``workers="auto"`` dry-runs the shard planner first — the active
        decomposition engages whenever the plan clears the interior-net
        bar (:func:`~repro.router.sharding.should_shard`) — and only then
        the batch scheduler; when neither predicts enough off-main-process
        work, the run stays serial. Both dry-runs are pure geometry over
        pin windows and their evidence lands in ``_auto_rationale``.
        """
        if self.workers != "auto":
            self._auto_rationale = None
            workers = self.workers
            if self.shard == "off" or len(ordered) < 2 or (
                workers <= 1 and self.shard != "on"
            ):
                return workers, "batch", None
            from .sharding import plan_shards, should_shard

            plan = plan_shards(
                ordered,
                self.params.search_margin,
                self.grid.width,
                self.grid.height,
                force=(self.shard == "on"),
            )
            if self.shard == "on" or should_shard(plan):
                self._shard_plan = plan
                return workers, "sharded", None
            return workers, "batch", None
        import os

        from .parallel import (
            AUTO_MIN_BATCHED_FRACTION,
            BatchScheduler,
            predict_batch_plan,
        )
        from .sharding import (
            SHARD_MIN_INTERIOR_FRACTION,
            SHARD_MIN_INTERIOR_NETS,
            plan_shards,
            should_shard,
        )

        workers = min(4, os.cpu_count() or 1)
        if workers < 2 or len(ordered) < 2:
            self._auto_rationale = {
                "decision": "serial",
                "predicted_batched_fraction": 0.0,
                "threshold": AUTO_MIN_BATCHED_FRACTION,
                "nets": len(ordered),
                "workers_considered": workers,
                "reason": (
                    "single-core host" if workers < 2 else "netlist too small"
                ),
            }
            return 1, "batch", ("serial", 0.0)
        splan = plan_shards(
            ordered,
            self.params.search_margin,
            self.grid.width,
            self.grid.height,
        )
        shard_info = {
            "shard_min_interior_fraction": SHARD_MIN_INTERIOR_FRACTION,
            "shard_min_interior_nets": SHARD_MIN_INTERIOR_NETS,
            **{f"shard_{k}": v for k, v in splan.to_dict().items()},
        }
        if self.shard != "off" and should_shard(splan):
            fraction = splan.interior_fraction
            self._auto_rationale = {
                "decision": "sharded",
                "workers_considered": workers,
                "reason": (
                    f"predicted interior fraction {fraction:.3f} >= "
                    f"{SHARD_MIN_INTERIOR_FRACTION} with "
                    f"{splan.interior_nets} interior nets >= "
                    f"{SHARD_MIN_INTERIOR_NETS}"
                ),
                **shard_info,
            }
            self._shard_plan = splan
            return workers, "sharded", ("sharded", fraction)
        scheduler = BatchScheduler(
            self.params,
            self.grid.rules,
            self.grid.width,
            self.grid.height,
            max_batch=max(2 * workers, 2),
            lookahead=max(8 * workers, 16),
        )
        plan = predict_batch_plan(scheduler, ordered)
        fraction = plan.batched_fraction
        decision = (
            "serial" if fraction < AUTO_MIN_BATCHED_FRACTION else "parallel"
        )
        self._auto_rationale = {
            "decision": decision,
            "threshold": AUTO_MIN_BATCHED_FRACTION,
            "workers_considered": workers,
            "reason": (
                f"predicted batched fraction {fraction:.3f} "
                f"{'<' if decision == 'serial' else '>='} threshold "
                f"{AUTO_MIN_BATCHED_FRACTION}; shard plan below its "
                "engagement bar"
                if self.shard != "off"
                else f"predicted batched fraction {fraction:.3f} "
                f"{'<' if decision == 'serial' else '>='} threshold "
                f"{AUTO_MIN_BATCHED_FRACTION}; sharding disabled"
            ),
            **shard_info,
            **plan.to_dict(),
        }
        if decision == "serial":
            return 1, "batch", ("serial", fraction)
        return workers, "batch", ("parallel", fraction)

    def route_net(
        self,
        net: Net,
        preserve_penalties: bool = False,
        allow_chain: bool = True,
        precomputed: Optional[PrecomputedAttempt] = None,
    ) -> NetRoute:
        """Route one net with the rip-up & reroute loop of Fig. 19.

        When the loop exhausts its budget because of conflicts with one
        specific committed neighbour (typically a pin-adjacent trap), a
        depth-one *chained* rip-up evicts that neighbour, routes this net,
        and reroutes the evicted one.

        ``precomputed`` injects a speculative attempt-0 search outcome
        (from the parallel batch router) consumed in place of the loop's
        first search; every later attempt, commit and rip-up decision
        runs unchanged on the live grid.
        """
        ob = obs.get_active()
        if ob is None:
            return self._route_net(net, preserve_penalties, allow_chain, precomputed)
        with ob.tracer.span("route_net", net_id=net.net_id) as sp:
            route = self._route_net(net, preserve_penalties, allow_chain, precomputed)
        sp.attrs["success"] = route.success
        sp.attrs["ripups"] = route.ripups
        ob.registry.histogram("route_net_seconds").observe(sp.duration_s)
        ob.registry.counter(
            "nets_routed_total", success="yes" if route.success else "no"
        ).inc()
        return route

    def _route_net(
        self,
        net: Net,
        preserve_penalties: bool = False,
        allow_chain: bool = True,
        precomputed: Optional[PrecomputedAttempt] = None,
    ) -> NetRoute:
        route = NetRoute(net_id=net.net_id)
        self._active_net = net.net_id
        self.engine.active_net = net.net_id
        if not preserve_penalties:
            self._penalties.clear()
        request = SearchRequest(
            net_id=net.net_id,
            sources=[(net.source.layer, p) for p in net.source.candidates],
            targets=[(net.target.layer, p) for p in net.target.candidates],
        )
        attempts = self.params.max_ripup_iterations + 1
        self._blockers: Set[int] = set()
        for attempt in range(attempts):
            margin = attempt * self.params.margin_growth
            if attempt == attempts - 1:
                # Last chance: open the window wide (capped — on big dies
                # a whole-grid window makes failing nets very expensive).
                margin = min(max(self.grid.width, self.grid.height), 48)
            if attempt == 0 and precomputed is not None:
                # Speculative attempt-0 from the batch router, computed
                # off a verified-fresh snapshot: exactly what the search
                # below would have returned, so consume it in its place.
                found = precomputed.found
                outcome = precomputed.outcome
            else:
                found = self.engine.search(request, extra_margin=margin)
                if found is not None and net.taps:
                    found = self._connect_taps(net, found, margin)
                outcome = self.engine.last_outcome
            if found is None:
                if outcome == "budget_exhausted":
                    # The search ran out of budget, not of reachable
                    # cells: the next attempt's wider window needs a
                    # bigger budget, and penalising cells would steer
                    # the retry away from cells that were never the
                    # problem. Double the budget and retry.
                    request.max_expansions *= 2
                    obs.counter_inc("astar_budget_doublings_total")
                continue
            if self._commit(net.net_id, found, route):
                route.success = True
                route.segments = found.segments
                route.vias = found.vias
                self._committed.add(net.net_id)
                self._post_route(net.net_id)
                return route
            route.ripups += 1

        if allow_chain and self._blockers:
            return self._route_with_eviction(net, route)
        return route

    def _connect_taps(
        self, net: Net, trunk: SearchResult, margin: int
    ) -> Optional[SearchResult]:
        """Steiner extension on the live engine; see ``extend_with_taps``.

        The tree-growing loop itself is shared with the parallel
        workers' snapshot solver, so the two paths cannot drift apart.
        """
        return extend_with_taps(
            lambda request: self.engine.search(request, extra_margin=margin),
            net.net_id,
            [(tap.layer, tap.candidates) for tap in net.taps],
            trunk,
        )

    def _route_with_eviction(self, net: Net, route: NetRoute) -> NetRoute:
        """Depth-one chained rip-up: evict blockers, route, reroute them."""
        obs.counter_inc("evictions_total")
        victims = [v for v in sorted(self._blockers) if v in self._committed][:2]
        evicted = []
        for victim in victims:
            self.rip_up_net(victim)
            evicted.append(victim)
        if not evicted:
            return route
        retry = self.route_net(net, preserve_penalties=True, allow_chain=False)
        for victim in evicted:
            self._penalties.clear()
            victim_route = self.route_net(
                self.netlist.by_id(victim), allow_chain=False
            )
            self._evicted_routes[victim] = victim_route
        return retry

    # ------------------------------------------------------------------ #
    # Commit / undo
    # ------------------------------------------------------------------ #

    def _commit(self, net_id: int, found: SearchResult, route: NetRoute) -> bool:
        """Tentatively commit a path; False (and rolled back) on violation.

        Runs inside a ``commit_net`` span; the bench's per-phase split
        attributes this span's *self time* (occupancy writes, scenario
        bookkeeping, registration) plus the nested ``cut_check`` to the
        ``commit`` bucket — ``ocg_update``/``pseudo_color`` children keep
        their own phases.
        """
        with obs.span("commit_net", net_id=net_id):
            return self._commit_inner(net_id, found, route)

    def _commit_inner(
        self, net_id: int, found: SearchResult, route: NetRoute
    ) -> bool:
        use_vector = self.core == "vector"
        if use_vector:
            # One validated bulk write + one change notification for the
            # whole path instead of a per-cell occupy/notify loop.
            self.grid.occupy_many(found.nodes, net_id)
        else:
            for layer, x, y in found.nodes:
                self.grid.occupy(layer, Point(x, y), net_id)

        edges_by_layer: Dict[int, List[ConstraintEdge]] = {}
        scenario_of_edge: Dict[int, DetectedScenario] = {}
        scenarios_by_layer: Dict[int, List[DetectedScenario]] = {}
        merge_violations: List[DetectedScenario] = []
        with obs.span("ocg_update", net_id=net_id):
            scenarios = self.detector.add_net(net_id, found.segments)
            for sc in scenarios:
                if not self.enable_merge and sc.scenario is ScenarioType.T1B:
                    # Merge technique disabled: abutting tips cannot be
                    # separated by a cut, and different colors are hard — the
                    # pair is undecomposable, so the net must reroute.
                    merge_violations.append(sc)
                    continue
                if use_vector:
                    # SoA graphs build edge rows from the scenarios in one
                    # table gather — no per-object ConstraintEdge needed.
                    scenarios_by_layer.setdefault(sc.layer, []).append(sc)
                    continue
                edge = ConstraintEdge.from_scenario(
                    sc.net_a, sc.net_b, sc.scenario, sc.a_is_tip_owner, sc.overlap
                )
                edges_by_layer.setdefault(sc.layer, []).append(edge)
                scenario_of_edge[id(edge)] = sc
        if merge_violations:
            cells = [(sc.layer, sc.rect_a) for sc in merge_violations]
            for sc in merge_violations:
                self._blockers.add(sc.net_b)
            self._undo(net_id, found, offending_cells=cells)
            return False
        offender_scs: List[DetectedScenario] = []
        with obs.span("ocg_update", net_id=net_id):
            if use_vector:
                for layer, scs in scenarios_by_layer.items():
                    offender_scs.extend(self.graphs[layer].add_scenarios(scs))
            else:
                for layer, edges in edges_by_layer.items():
                    for edge in self.graphs[layer].add_edges(edges):
                        offender_scs.append(scenario_of_edge[id(edge)])
            for layer in self._net_layers(found.segments):
                self.graphs[layer].add_vertex(net_id)

        if offender_scs:
            # Hard odd cycle: rip up and penalise exactly the fragments
            # whose scenarios closed the cycle (steering the reroute away
            # from the bad adjacency, not from the whole path).
            offending_cells = [(sc.layer, sc.rect_a) for sc in offender_scs]
            for sc in offender_scs:
                self._blockers.add(sc.net_b if sc.net_a == net_id else sc.net_a)
            self._undo(net_id, found, offending_cells=offending_cells)
            return False

        # Pseudo-coloring (Fig. 19 line 11), then the cut-conflict check.
        with obs.span("pseudo_color", net_id=net_id):
            for layer in self._net_layers(found.segments):
                pseudo_color(self.graphs[layer], net_id, self.colorings[layer])

        self._scenarios_by_net[net_id] = []
        for sc in scenarios:
            self._scenarios_by_net[net_id].append(sc)
            self._scenarios_by_net.setdefault(sc.net_b, []).append(sc)

        with obs.span("cut_check", net_id=net_id):
            cuts = self._cuts_for_net(net_id)
            conflicts = self.checker.conflicts_with(cuts)
        if conflicts:
            # Try the opposite color on every layer before giving up.
            # (Type A risks are avoided by the coloring veto whenever a
            # risk-free assignment exists; definite conflicts are the
            # type B patterns this checker finds.)
            flipped = self._try_opposite_colors(net_id, found.segments)
            if flipped is not None:
                cuts = flipped
            else:
                # Conflict sites get penalised; pass an empty marker so
                # the whole-path penalty is suppressed.
                for conflict in conflicts:
                    for other in (*conflict.first.nets, *conflict.second.nets):
                        if other != net_id:
                            self._blockers.add(other)
                self._penalise_conflicts(conflicts)
                self._undo(net_id, found, suppress_path_penalty=True)
                return False

        wire_rects = [
            (seg.layer, self.checker.wire_rect_nm(seg.to_rect()))
            for seg in found.segments
        ]
        self.checker.register_net(net_id, wire_rects, cuts)
        return True

    def _try_opposite_colors(
        self, net_id: int, segments: Sequence[Segment]
    ) -> Optional[List[CriticalCut]]:
        """Flip the net's own colors; None when conflicts persist either way."""
        layers = self._net_layers(segments)
        original = {layer: self.colorings[layer].get(net_id) for layer in layers}
        for layer in layers:
            color = self.colorings[layer].get(net_id, Color.CORE)
            self.colorings[layer][net_id] = color.flipped
        cuts = self._cuts_for_net(net_id)
        if not self.checker.conflicts_with(cuts) and self._colors_feasible(net_id, layers):
            return cuts
        for layer, color in original.items():
            if color is None:
                self.colorings[layer].pop(net_id, None)
            else:
                self.colorings[layer][net_id] = color
        return None

    def _net_has_cut_risk(self, net_id: int) -> bool:
        """Any incident edge in a type A cut-risk combo under the current
        colors? Such combos are strictly forbidden (Section III-D)."""
        for layer in range(self.grid.num_layers):
            coloring = self.colorings[layer]
            graph = self.graphs[layer]
            risk = getattr(graph, "net_has_cut_risk", None)
            if risk is not None:
                if risk(net_id, coloring):
                    return True
                continue
            for edge in graph.edges_of(net_id):
                cu = coloring.get(edge.u, Color.CORE)
                cv = coloring.get(edge.v, Color.CORE)
                if edge.has_cut_risk(cu, cv):
                    return True
        return False

    def _colors_feasible(self, net_id: int, layers: Set[int]) -> bool:
        """The flipped colors must not create hard overlays."""
        for layer in layers:
            cost = self.graphs[layer].net_cost(net_id, self.colorings[layer])
            if cost == float("inf"):
                return False
        return True

    def _undo(
        self,
        net_id: int,
        found: SearchResult,
        offending_cells: Optional[List] = None,
        suppress_path_penalty: bool = False,
    ) -> None:
        ob = obs.get_active()
        if ob is not None:
            reason = (
                "cut_conflict"
                if suppress_path_penalty
                else ("hard_odd_cycle" if offending_cells else "path_penalised")
            )
            ob.registry.counter("ripups_total", reason=reason).inc()
        self.detector.remove_net(net_id)
        for layer in range(self.grid.num_layers):
            self.graphs[layer].remove_net(net_id)
            self.colorings[layer].pop(net_id, None)
        self.grid.release_net(net_id)
        for layer, p in self._pin_cells.get(net_id, ()):
            self.grid.occupy(layer, p, net_id)  # keep pins reserved
        self.checker.remove_net(net_id)
        self._drop_scenarios_of(net_id)
        if offending_cells:
            # Penalise only the fragments that caused the violation.
            for layer, rect in offending_cells:
                for x in range(rect.xlo, rect.xhi):
                    for y in range(rect.ylo, rect.yhi):
                        key = (layer, x, y)
                        self._penalties[key] = (
                            self._penalties.get(key, 0.0)
                            + 2 * self.params.ripup_penalty
                        )
        elif not suppress_path_penalty:
            for layer, x, y in found.nodes:
                key = (layer, x, y)
                self._penalties[key] = (
                    self._penalties.get(key, 0.0) + self.params.ripup_penalty
                )

    def _penalise_conflicts(self, conflicts) -> None:
        """Make the conflict regions expensive for the retry.

        The whole track neighbourhood of each cut is penalised: the cut
        straddles the boundary between this net's cell and the other
        pattern's, and rounding to a single cell can land the penalty on
        the *occupied* side where A* never looks.
        """
        for conflict in conflicts:
            for cut in (conflict.first, conflict.second):
                self._penalise_region(
                    cut.layer, cut.rect, 2 * self.params.ripup_penalty
                )

    def _penalise_region(self, layer: int, rect_nm, amount: float) -> None:
        """Penalise every track cell overlapped by an nm rect, plus a halo."""
        pitch = self.grid.rules.pitch
        tx_lo = rect_nm.xlo // pitch - 1
        tx_hi = rect_nm.xhi // pitch + 1
        ty_lo = rect_nm.ylo // pitch - 1
        ty_hi = rect_nm.yhi // pitch + 1
        for tx in range(tx_lo, tx_hi + 1):
            for ty in range(ty_lo, ty_hi + 1):
                key = (layer, tx, ty)
                self._penalties[key] = self._penalties.get(key, 0.0) + amount

    def _drop_scenarios_of(self, net_id: int) -> None:
        scenarios = self._scenarios_by_net.pop(net_id, [])
        for sc in scenarios:
            other = sc.net_b if sc.net_a == net_id else sc.net_a
            bucket = self._scenarios_by_net.get(other)
            if bucket:
                self._scenarios_by_net[other] = [
                    s for s in bucket if net_id not in (s.net_a, s.net_b)
                ]

    # ------------------------------------------------------------------ #
    # Coloring upkeep
    # ------------------------------------------------------------------ #

    def _post_route(self, net_id: int) -> None:
        """Flip colors when the new net's induced overlay is too large."""
        if not self.enable_flipping:
            return
        induced = 0.0
        for layer in range(self.grid.num_layers):
            if net_id in self.graphs[layer].vertices:
                cost = self.graphs[layer].net_cost(net_id, self.colorings[layer])
                if cost != float("inf"):
                    induced += cost
        if induced > self.params.flip_threshold:
            with obs.span("color_flip", net_id=net_id, scope="component"):
                for layer in range(self.grid.num_layers):
                    graph = self.graphs[layer]
                    if net_id not in graph.vertices:
                        continue
                    scope = graph.component_of(net_id)
                    if len(scope) > self.params.flip_scope_cap:
                        # Late in routing, components merge into one giant
                        # blob; re-running the full DP per net would be
                        # quadratic. Defer huge components to the final
                        # full-layout flipping pass (Fig. 19 line 16).
                        continue
                    new_colors = flip_colors(graph, scope)
                    self.colorings[layer].update(new_colors)
                    self._flip_count += 1
                    obs.counter_inc("color_flips_total", scope="component")
                    self._refresh_cuts(new_colors.keys())

    def _rescue_pass(self, result: RoutingResult) -> None:
        """One more attempt for every failed net, with the layout final.

        Nets that failed mid-sequence often fit once their neighbourhood
        has settled (evictions and reroutes free the trap that blocked
        them). A single extra round is cheap and recovers several percent
        of routability on dense instances.
        """
        failed = [nid for nid, route in result.routes.items() if not route.success]
        for net_id in failed:
            retry = self.route_net(self.netlist.by_id(net_id))
            if retry.success:
                result.routes[net_id] = retry
        result.routes.update(self._evicted_routes)
        self._evicted_routes.clear()

    def _repair_round(self, result: RoutingResult, conflicts, last_round: bool) -> None:
        """One round of conflict repair: rip up & reroute the offenders.

        The in-flow checks (color veto, own-color flip, rip-up) prevent
        most cut conflicts, but color flipping after later nets arrive can
        re-introduce a type B pattern. Repair restores the paper's
        zero-conflict guarantee: offenders are ripped up and rerouted with
        penalties on the conflict sites; on the last round an offender is
        left unrouted (traded for routability, never for a conflict).
        """
        obs.counter_inc("repair_rounds_total")
        offenders = []
        seen = set()
        for conflict in conflicts:
            candidates = set(conflict.first.nets) | set(conflict.second.nets)
            net_id = max(candidates)  # deterministic choice
            if net_id not in seen:
                seen.add(net_id)
                offenders.append(net_id)
        self._penalties.clear()
        self._penalise_conflicts(conflicts)
        for net_id in offenders:
            self.rip_up_net(net_id)
            if last_round:
                # Out of budget: leave the offender unrouted.
                result.routes[net_id] = NetRoute(net_id=net_id)
                continue
            net = self.netlist.by_id(net_id)
            reroute = self.route_net(net, preserve_penalties=True)
            result.routes[net_id] = reroute

    def _risky_nets(self) -> Set[int]:
        """Nets sitting on a type A cut-risk color combo (forbidden)."""
        risky: Set[int] = set()
        for layer, graph in enumerate(self.graphs):
            coloring = self.colorings[layer]
            for edge in graph.edges:
                cu = coloring.get(edge.u, Color.CORE)
                cv = coloring.get(edge.v, Color.CORE)
                if edge.has_cut_risk(cu, cv):
                    risky.add(max(edge.u, edge.v))
        return risky

    def _unique_conflicts(self) -> List:
        all_cuts = self.checker.all_cuts()
        unique = []
        seen = set()
        for conflict in self.checker.conflicts_with(all_cuts):
            key = tuple(sorted([id(conflict.first), id(conflict.second)]))
            if key not in seen:
                seen.add(key)
                unique.append(conflict)
        return unique

    def rip_up_net(self, net_id: int) -> None:
        """Completely remove a committed net (public: used by repair and
        by callers doing incremental ECO-style editing)."""
        affected = {
            (sc.net_b if sc.net_a == net_id else sc.net_a)
            for sc in self._scenarios_by_net.get(net_id, ())
        }
        self.detector.remove_net(net_id)
        for layer in range(self.grid.num_layers):
            self.graphs[layer].remove_net(net_id)
            self.colorings[layer].pop(net_id, None)
        self.grid.release_net(net_id)
        for layer, p in self._pin_cells.get(net_id, ()):
            self.grid.occupy(layer, p, net_id)
        self.checker.remove_net(net_id)
        self._drop_scenarios_of(net_id)
        self._refresh_cuts(affected)
        self._committed.discard(net_id)

    def _final_flip(self) -> None:
        """Fig. 19 line 16: full-layout color flipping after routing."""
        if not self.enable_flipping:
            return
        with obs.span("color_flip", scope="layout"):
            for layer, graph in enumerate(self.graphs):
                if graph.vertices:
                    self.colorings[layer].update(flip_colors(graph))
                    self._flip_count += 1
                    obs.counter_inc("color_flips_total", scope="layout")

    # ------------------------------------------------------------------ #
    # Cut bookkeeping
    # ------------------------------------------------------------------ #

    def _cuts_for_net(self, net_id: int) -> List[CriticalCut]:
        """Critical cuts of scenarios *detected by* this net (net_a side)."""
        cuts: List[CriticalCut] = []
        for sc in self._scenarios_by_net.get(net_id, ()):
            if sc.net_a != net_id:
                continue
            ca = self.colorings[sc.layer].get(sc.net_a, Color.CORE)
            cb = self.colorings[sc.layer].get(sc.net_b, Color.CORE)
            cuts.extend(self.checker.critical_cuts(sc, ca, cb))
        return cuts

    def _refresh_cuts(self, nets) -> None:
        for net_id in nets:
            if net_id in self._scenarios_by_net:
                self.checker.replace_net_cuts(net_id, self._cuts_for_net(net_id))

    def _refresh_all_cuts(self) -> None:
        self._refresh_cuts(list(self._scenarios_by_net.keys()))

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def _collect_metrics(self, result: RoutingResult) -> None:
        overlay_units = 0.0
        hard = 0
        for layer, graph in enumerate(self.graphs):
            evaluation = graph.evaluate(self.colorings[layer])
            overlay_units += evaluation.overlay_units
            hard += evaluation.hard_violations
        result.overlay_units = overlay_units
        result.overlay_nm = overlay_units * self.grid.rules.overlay_unit_nm
        result.hard_overlays = hard
        result.cut_conflicts = self._count_final_conflicts()

    def _count_final_conflicts(self) -> int:
        """Type B conflicts surviving in the committed result (expected 0)."""
        all_cuts = self.checker.all_cuts()
        seen = set()
        count = 0
        for conflict in self.checker.conflicts_with(all_cuts):
            key = tuple(
                sorted([id(conflict.first), id(conflict.second)])
            )
            if key not in seen:
                seen.add(key)
                count += 1
        # conflicts_with compares candidates against the registered index,
        # so every pair is seen twice; each unordered pair counted once.
        return count

    @staticmethod
    def _net_layers(segments: Sequence[Segment]) -> Set[int]:
        return {seg.layer for seg in segments}

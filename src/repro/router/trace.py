"""Structured routing-event trace.

Attach a :class:`RouterTrace` to a :class:`~repro.router.SadpRouter` to
record what the flow actually did — searches, commits, rip-ups and their
reasons, color flips, evictions, repair rounds. The trace is the debugging
view of Fig. 19: ``to_text()`` prints the run as a readable transcript,
and the event list is plain data for programmatic analysis.

Implementation note: the trace wraps the router's methods rather than
being threaded through every call site, so the routing code stays free of
logging noise and tracing costs nothing when unused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .sadp_router import SadpRouter


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a kind tag plus free-form details."""

    kind: str
    net_id: Optional[int]
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        # Deterministic: keys sorted, values JSON-escaped — so traces of
        # identical runs compare equal as text and survive doctests.
        parts = ", ".join(
            f"{k}={json.dumps(v, sort_keys=True, default=str)}"
            for k, v in sorted(self.details.items())
        )
        net = f" net={self.net_id}" if self.net_id is not None else ""
        return f"<{self.kind}{net} {parts}>"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "net_id": self.net_id, "details": self.details}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            kind=record["kind"],
            net_id=record.get("net_id"),
            details=dict(record.get("details", {})),
        )


class RouterTrace:
    """Records the routing flow of one :class:`SadpRouter` run.

    Construct with a router to record live, or with ``router=None`` (as
    :meth:`from_jsonl` does) to hold a previously exported event list.
    """

    def __init__(self, router: Optional[SadpRouter] = None) -> None:
        self.router = router
        self.events: List[TraceEvent] = []
        if router is not None:
            self._install(router)

    # ------------------------------------------------------------------ #
    # Wrapping
    # ------------------------------------------------------------------ #

    def _install(self, router: SadpRouter) -> None:
        original_route = router.route_net
        original_undo = router._undo
        original_rip = router.rip_up_net
        original_post = router._post_route
        original_evict = router._route_with_eviction

        def route_net(net, preserve_penalties=False, allow_chain=True):
            self._log("route_start", net.net_id, pins=net.pin_count)
            route = original_route(
                net, preserve_penalties=preserve_penalties, allow_chain=allow_chain
            )
            self._log(
                "route_end",
                net.net_id,
                success=route.success,
                wirelength=route.wirelength,
                vias=route.via_count,
                ripups=route.ripups,
            )
            return route

        def undo(net_id, found, offending_cells=None, suppress_path_penalty=False):
            reason = (
                "cut_conflict"
                if suppress_path_penalty
                else ("hard_odd_cycle" if offending_cells else "path_penalised")
            )
            self._log("rip_up", net_id, reason=reason)
            return original_undo(
                net_id,
                found,
                offending_cells=offending_cells,
                suppress_path_penalty=suppress_path_penalty,
            )

        def rip_up_net(net_id):
            self._log("remove_committed", net_id)
            return original_rip(net_id)

        def post_route(net_id):
            flips_before = router._flip_count
            result = original_post(net_id)
            if router._flip_count > flips_before:
                self._log("color_flip", net_id)
            return result

        def route_with_eviction(net, route):
            self._log("eviction", net.net_id, blockers=sorted(router._blockers))
            return original_evict(net, route)

        router.route_net = route_net
        router._undo = undo
        router.rip_up_net = rip_up_net
        router._post_route = post_route
        router._route_with_eviction = route_with_eviction

    def _log(self, kind: str, net_id: Optional[int], **details: Any) -> None:
        self.events.append(TraceEvent(kind=kind, net_id=net_id, details=details))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one ``{"kind", "net_id", "details"}`` object per line.

        The records match the ``router_event`` payload of the unified run
        log (:func:`repro.obs.export_run_jsonl`), so a standalone trace
        file and the merged log share tooling.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True, default=str))
                fh.write("\n")
        return path

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "RouterTrace":
        """Rebuild a trace (router-less) from :meth:`to_jsonl` output.

        Also accepts a unified run log: ``router_event`` records are
        loaded, other record types are skipped.
        """
        trace = cls(router=None)
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype is not None and rtype != "router_event":
                continue
            trace.events.append(TraceEvent.from_dict(record))
        return trace

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def of_net(self, net_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.net_id == net_id]

    def ripup_reasons(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "rip_up":
                reason = event.details.get("reason", "?")
                reasons[reason] = reasons.get(reason, 0) + 1
        return reasons

    def to_text(self, limit: Optional[int] = None) -> str:
        lines = ["Routing trace", "=" * 40]
        events = self.events if limit is None else self.events[:limit]
        for event in events:
            lines.append(repr(event))
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        lines.append("-" * 40)
        lines.append(
            f"totals: {self.count('route_start')} routes, "
            f"{self.count('rip_up')} rip-ups {self.ripup_reasons()}, "
            f"{self.count('color_flip')} flips, "
            f"{self.count('eviction')} evictions"
        )
        return "\n".join(lines)

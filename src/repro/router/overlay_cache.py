"""Memoised Eq. (5) overlay cost grids with incremental invalidation.

The overlay term of the routing cost (gamma per type 2-b tip gap,
delta_tip per direct tip abutment) depends only on the occupancy around a
cell and on which net is being routed — *not* on the search window: the
vectorised computation pads its window with real occupancy, and the
out-of-grid sentinel applies only beyond the die. A cost grid computed
once for a net therefore stays valid until occupancy changes, and a
change at ``(layer, x, y)`` can only move the cost of cells within
distance 2 of it along the layer's preferred direction (the probe reads
the two cells ahead/behind).

:class:`OverlayCostCache` exploits both facts. It keeps one cached grid
per net (LRU-bounded), registers itself as a
:meth:`~repro.grid.RoutingGrid.add_change_listener` so the rip-up /
eviction / repair loops invalidate it automatically, and repairs stale
entries cell-by-cell instead of re-running the full vectorised pass —
so retrying a net after an eviction, the rescue pass, and the repair
rounds pay for a handful of scalar probes instead of ``O(window)``
numpy work.

Exactness contract: the cached grid is bit-identical to a fresh
:func:`overlay_cost_grid` of the same window (the scalar repair probe
replays the vectorised arithmetic in the same operation order), which in
turn matches the brute-force per-cell ``SadpRouter._overlay_probe``.
The property tests pin all three together.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..grid import CellState, Direction, RoutingGrid

Bounds = Tuple[int, int, int, int]  # xlo, xhi, ylo, yhi (inclusive)

_FREE = int(CellState.FREE)

#: Occupancy value standing in for "outside the die" in the padded
#: window: neither FREE nor a net id, so it contributes no cost term.
_SENTINEL = -9


def overlay_cost_grid(
    occ: np.ndarray,
    horizontal: Sequence[bool],
    bounds: Bounds,
    own: int,
    gamma: float,
    delta_tip: float,
) -> np.ndarray:
    """Vectorised Eq. (5) overlay term over a search window.

    For every cell of the window, along the layer's preferred direction:
    ``delta_tip`` per directly abutting foreign cell and ``gamma`` per
    foreign cell at distance two behind a free cell (the type 2-b tip
    gap). Returns ``cost[layer, x - xlo, y - ylo]`` (float64).
    """
    xlo, xhi, ylo, yhi = bounds
    num_layers = occ.shape[0]
    wx, wy = xhi - xlo + 1, yhi - ylo + 1
    cost = np.zeros((num_layers, wx, wy), dtype=np.float64)
    pad = 2
    for layer in range(num_layers):
        view = np.full((wx + 2 * pad, wy + 2 * pad), _SENTINEL, dtype=occ.dtype)
        src_xlo, src_xhi = max(xlo - pad, 0), min(xhi + pad + 1, occ.shape[1])
        src_ylo, src_yhi = max(ylo - pad, 0), min(yhi + pad + 1, occ.shape[2])
        view[
            src_xlo - (xlo - pad) : src_xhi - (xlo - pad),
            src_ylo - (ylo - pad) : src_yhi - (ylo - pad),
        ] = occ[layer, src_xlo:src_xhi, src_ylo:src_yhi]
        # Shifted *views* into the padded window (pad >= |shift|, so a
        # slice sees exactly what np.roll-then-crop would, minus the two
        # full-array copies per shift).
        if horizontal[layer]:
            shifted = lambda s: view[pad + s : pad + s + wx, pad : pad + wy]
        else:
            shifted = lambda s: view[pad : pad + wx, pad + s : pad + s + wy]
        for sign in (1, -1):
            mid = shifted(sign)
            far = shifted(2 * sign)
            foreign_mid = (mid >= 0) & (mid != own)
            tip_gap = (mid == _FREE) & (far >= 0) & (far != own)
            cost[layer] += delta_tip * foreign_mid + gamma * tip_gap
    return cost


def probe_cell(
    occ: np.ndarray,
    horizontal: Sequence[bool],
    layer: int,
    x: int,
    y: int,
    own: int,
    gamma: float,
    delta_tip: float,
) -> float:
    """Scalar Eq. (5) overlay cost of one cell.

    Replays :func:`overlay_cost_grid`'s arithmetic in the same operation
    order (sign +1 then -1, delta_tip term before gamma term) so repaired
    cache cells compare bit-equal to a fresh vectorised pass.
    """
    _, width, height = occ.shape
    if horizontal[layer]:
        steps = ((x + 1, y, x + 2, y), (x - 1, y, x - 2, y))
    else:
        steps = ((x, y + 1, x, y + 2), (x, y - 1, x, y - 2))
    cost = 0.0
    for mx, my, fx, fy in steps:
        mid = (
            int(occ[layer, mx, my])
            if 0 <= mx < width and 0 <= my < height
            else _SENTINEL
        )
        far = (
            int(occ[layer, fx, fy])
            if 0 <= fx < width and 0 <= fy < height
            else _SENTINEL
        )
        foreign_mid = mid >= 0 and mid != own
        tip_gap = mid == _FREE and far >= 0 and far != own
        cost += delta_tip * foreign_mid + gamma * tip_gap
    return cost


class _Entry:
    """One cached cost grid: a net's window plus its stale cells."""

    __slots__ = ("bounds", "cost", "pending")

    def __init__(self, bounds: Bounds, cost: np.ndarray) -> None:
        self.bounds = bounds
        self.cost = cost
        #: Occupancy changes not yet folded into ``cost``.
        self.pending: List[Tuple[int, int, int]] = []


class _GuidanceEntry:
    """One memoised future-cost map (see :mod:`repro.router.guidance`).

    Unlike cost-grid entries, guidance maps are not repairable — one
    changed cell can reroute the whole backward flow — so any occupancy
    change that can reach the window (distance <= 2, same radius as the
    overlay term) simply drops the entry.
    """

    __slots__ = ("bounds", "key", "dmap")

    def __init__(self, bounds: Bounds, key: tuple, dmap: np.ndarray) -> None:
        self.bounds = bounds
        self.key = key
        self.dmap = dmap


class OverlayCostCache:
    """Per-net memo of Eq. (5) cost grids, kept fresh incrementally.

    Registers itself on the grid's change-listener hook; every
    ``occupy`` / ``release`` / ``release_net`` marks the touched cells
    stale in all live entries, and the next :meth:`grid_for` repairs
    exactly the cells within distance 2 of a change instead of
    recomputing the window. Bulk rewrites (``block``) clear the cache.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        gamma: float,
        delta_tip: float,
        max_entries: int = 8,
        growth: int = 12,
    ) -> None:
        self.grid = grid
        self.gamma = gamma
        self.delta_tip = delta_tip
        self.max_entries = max_entries
        #: Halo added around the window on a *second* computation for the
        #: same net: a containment miss means the rip-up loop is growing
        #: the net's window, so anticipate the next growth step and turn
        #: the remaining retries into (repairable) hits. First-try nets
        #: never pay for the halo.
        self.growth = growth
        self._horizontal = [
            grid.layer_direction(l) is Direction.HORIZONTAL
            for l in range(grid.num_layers)
        ]
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._guidance: "OrderedDict[int, _GuidanceEntry]" = OrderedDict()
        # stats (plain ints; read by the perf bench and tests)
        self.hits = 0
        self.misses = 0
        self.repaired_cells = 0
        self.guidance_hits = 0
        self.guidance_misses = 0
        self.guidance_invalidations = 0
        grid.add_change_listener(self)

    # ------------------------------------------------------------------ #
    # Grid listener protocol
    # ------------------------------------------------------------------ #

    def on_cells_changed(self, cells: Iterable[Tuple[int, int, int]]) -> None:
        if not self._entries and not self._guidance:
            return
        for entry in self._entries.values():
            xlo, xhi, ylo, yhi = entry.bounds
            pend = entry.pending
            for cell in cells:
                _, x, y = cell
                # A change can only reach cost cells within distance 2,
                # so changes farther outside the window are irrelevant.
                if xlo - 2 <= x <= xhi + 2 and ylo - 2 <= y <= yhi + 2:
                    pend.append(cell)
        if self._guidance:
            dead = []
            for net_id, gent in self._guidance.items():
                xlo, xhi, ylo, yhi = gent.bounds
                for _, x, y in cells:
                    if xlo - 2 <= x <= xhi + 2 and ylo - 2 <= y <= yhi + 2:
                        dead.append(net_id)
                        break
            for net_id in dead:
                del self._guidance[net_id]
            if dead:
                self.guidance_invalidations += len(dead)
                obs.counter_inc(
                    "guidance_cache_invalidations_total", len(dead)
                )

    def on_grid_reset(self) -> None:
        self._entries.clear()
        self._guidance.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def grid_for(self, net_id: int, bounds: Bounds) -> np.ndarray:
        """The Eq. (5) cost grid for ``net_id`` over ``bounds``.

        Served from cache (repaired in place if occupancy changed) when
        a previously computed window contains ``bounds``; recomputed and
        cached otherwise. The returned array is owned by the cache —
        callers must not mutate it.
        """
        xlo, xhi, ylo, yhi = bounds
        entry = self._entries.get(net_id)
        if entry is not None:
            exlo, exhi, eylo, eyhi = entry.bounds
            if exlo <= xlo and xhi <= exhi and eylo <= ylo and yhi <= eyhi:
                if entry.pending:
                    self._repair(net_id, entry)
                self._entries.move_to_end(net_id)
                self.hits += 1
                if entry.bounds == bounds:
                    return entry.cost
                return entry.cost[
                    :, xlo - exlo : xhi - exlo + 1, ylo - eylo : yhi - eylo + 1
                ]
        self.misses += 1
        store_bounds = bounds
        if entry is not None:
            # The net is back with a bigger window (rip-up margin
            # growth): compute with a halo so further growth stays
            # within the cached bounds.
            halo = self.growth
            store_bounds = (
                max(xlo - halo, 0),
                min(xhi + halo, self.grid.width - 1),
                max(ylo - halo, 0),
                min(yhi + halo, self.grid.height - 1),
            )
        cost = overlay_cost_grid(
            self.grid._occ,
            self._horizontal,
            store_bounds,
            net_id,
            self.gamma,
            self.delta_tip,
        )
        self._entries[net_id] = _Entry(store_bounds, cost)
        self._entries.move_to_end(net_id)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        if store_bounds == bounds:
            return cost
        sxlo, _, sylo, _ = store_bounds
        return cost[
            :, xlo - sxlo : xhi - sxlo + 1, ylo - sylo : yhi - sylo + 1
        ]

    def export_for(self, net_id: int, bounds: Bounds) -> np.ndarray:
        """An *owned* copy of the net's cost grid over ``bounds``.

        Same lookup as :meth:`grid_for` (the entry is created/repaired
        and kept, so a later live search for the net hits the cache),
        but the returned array is detached from the entry — safe to ship
        to a worker or hold across subsequent grid mutations.
        """
        return self.grid_for(net_id, bounds).copy()

    def invalidate_net(self, net_id: int) -> None:
        """Drop a net's entry outright (e.g. the net was re-identified)."""
        self._entries.pop(net_id, None)
        self._guidance.pop(net_id, None)

    def clear(self) -> None:
        self._entries.clear()
        self._guidance.clear()

    # ------------------------------------------------------------------ #
    # Guidance-map memo (see repro.router.guidance)
    # ------------------------------------------------------------------ #

    def guidance_lookup(self, net_id: int, key: tuple):
        """A memoised future-cost map, or None.

        ``key`` captures everything the map depends on besides live
        occupancy — window bounds, target set, rip-up penalty signature
        and backend; occupancy staleness is handled by the change
        listener dropping touched entries. Hits occur when the exact
        search is re-run (budget-doubling retries, replayed attempts).
        """
        gent = self._guidance.get(net_id)
        if gent is not None and gent.key == key:
            self._guidance.move_to_end(net_id)
            self.guidance_hits += 1
            obs.counter_inc("guidance_cache_hits_total")
            return gent.dmap
        self.guidance_misses += 1
        obs.counter_inc("guidance_cache_misses_total")
        return None

    def guidance_store(
        self, net_id: int, bounds: Bounds, key: tuple, dmap
    ) -> None:
        # ``dmap`` is opaque to the cache — the engine stores the map
        # pre-flattened (a plain list) so memo hits skip the conversion.
        self._guidance[net_id] = _GuidanceEntry(bounds, key, dmap)
        self._guidance.move_to_end(net_id)
        while len(self._guidance) > self.max_entries:
            self._guidance.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Incremental repair
    # ------------------------------------------------------------------ #

    def _repair(self, net_id: int, entry: _Entry) -> None:
        """Recompute the cells a batch of occupancy changes can reach."""
        occ = self.grid._occ
        horizontal = self._horizontal
        gamma, delta_tip = self.gamma, self.delta_tip
        xlo, xhi, ylo, yhi = entry.bounds
        cost = entry.cost
        stale: set = set()
        for layer, x, y in entry.pending:
            if horizontal[layer]:
                for cx in range(max(x - 2, xlo), min(x + 2, xhi) + 1):
                    if ylo <= y <= yhi:
                        stale.add((layer, cx, y))
            else:
                for cy in range(max(y - 2, ylo), min(y + 2, yhi) + 1):
                    if xlo <= x <= xhi:
                        stale.add((layer, x, cy))
        entry.pending = []
        for layer, x, y in stale:
            cost[layer, x - xlo, y - ylo] = probe_cell(
                occ, horizontal, layer, x, y, net_id, gamma, delta_tip
            )
        self.repaired_cells += len(stale)

"""Region sharding: halo-separated tiles for active parallel routing.

The PR-3 batch scheduler waits for halo-disjoint net batches to occur
naturally at the head of the routing queue — at bench densities the
expanded windows overlap almost always, so it never engages. Sharding
inverts the decomposition: partition the die into a small grid of tiles,
classify every net by whether its *entire attempt-0 read region* (the
trunk search window plus the distance-2 overlay pad) fits inside one
tile, and hand each tile's interior nets to a worker as one **chained
stream** — the worker routes them in canonical order against a private
tile snapshot, applying each found path before the next search, so nets
of the same tile speculate against each other instead of falling back.

Nets whose read region straddles a tile edge (or that have Steiner taps,
whose extension windows depend on the found tree) are *boundary* nets:
they route live on the main process, interleaved in canonical order —
the deterministic sequential reconciliation pass.

Everything here is pure geometry over pin coordinates: planning a shard
layout costs one ``search_window`` per net and is run as a dry-run by
``workers="auto"`` before any routing starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import Net
from .astar import Bounds, search_window

#: Overlay probes read occupancy up to 2 tracks away (Eq. 5's type 2-b);
#: a net's read region is its search window grown by this pad.
OVERLAY_PAD = 2

#: ``workers="auto"``: minimum predicted interior-net fraction for the
#: sharded mode to engage — below it, too much of the netlist routes
#: live on the main process for the pool to pay for itself.
SHARD_MIN_INTERIOR_FRACTION = 0.35

#: ``workers="auto"``: minimum interior-net *count* — pool startup plus
#: the shared-memory snapshot cost a few hundred milliseconds, which
#: small workloads cannot amortise.
SHARD_MIN_INTERIOR_NETS = 192

#: Tiles narrower than this many typical read-region sides classify
#: nearly everything as boundary; 3.2 keeps the expected interior
#: fraction of a uniform net distribution above ~50 % per axis pair.
TILE_WINDOW_FACTOR = 3.2

#: Upper bound on tiles per axis — beyond this the boundary strips
#: dominate and per-tile chains get too short to matter.
MAX_TILES_PER_AXIS = 8


def net_read_window(
    net: Net, margin: int, width: int, height: int, pad: int = OVERLAY_PAD
) -> Bounds:
    """The cells a net's attempt-0 trunk search can read, absolute coords.

    ``search_window`` over the source/target pin candidates (the exact
    window the live engine uses for attempt 0 — same function, same
    clipping) grown by the overlay pad and re-clipped to the die.
    """
    pts = [p for pin in (net.source, net.target) for p in pin.candidates]
    xlo, xhi, ylo, yhi = search_window(pts, margin, width, height)
    return (
        max(0, xlo - pad),
        min(width - 1, xhi + pad),
        max(0, ylo - pad),
        min(height - 1, yhi + pad),
    )


@dataclass(frozen=True)
class ShardGrid:
    """A cols x rows tiling of the die plane.

    Tiles are ``ceil(width / cols)`` wide (the last column/row absorbs
    the remainder), so every cell belongs to exactly one tile and
    ``shard_of`` is a pair of integer divisions.
    """

    width: int
    height: int
    cols: int
    rows: int

    @property
    def tile_w(self) -> int:
        return -(-self.width // self.cols)

    @property
    def tile_h(self) -> int:
        return -(-self.height // self.rows)

    @property
    def shards(self) -> int:
        return self.cols * self.rows

    def shard_of(self, x: int, y: int) -> int:
        return (y // self.tile_h) * self.cols + (x // self.tile_w)

    def tile_bounds(self, sid: int) -> Bounds:
        col = sid % self.cols
        row = sid // self.cols
        return (
            col * self.tile_w,
            min((col + 1) * self.tile_w - 1, self.width - 1),
            row * self.tile_h,
            min((row + 1) * self.tile_h - 1, self.height - 1),
        )

    def shard_containing(self, bounds: Bounds) -> Optional[int]:
        """The tile fully containing ``bounds``, or None if it straddles."""
        a = self.shard_of(bounds[0], bounds[2])
        b = self.shard_of(bounds[1], bounds[3])
        return a if a == b else None


def choose_shard_grid(
    width: int, height: int, window_sides: Sequence[int]
) -> Optional[ShardGrid]:
    """Pick a tiling for the die, or None when no useful tiling exists.

    The constraint is geometric: a tile must be several typical read
    regions wide (:data:`TILE_WINDOW_FACTOR`) or almost every net
    straddles an edge. Subject to that, more tiles means more chains to
    spread over workers, so take the finest tiling the constraint
    allows, capped at :data:`MAX_TILES_PER_AXIS`. Returns None unless at
    least a 2 x 2 tiling fits — a single column or row of tiles leaves
    one boundary strip crossing the whole die and no parallel win.
    """
    if not window_sides:
        return None
    sides = sorted(window_sides)
    typical = sides[len(sides) // 2]
    min_tile = max(1, int(TILE_WINDOW_FACTOR * typical))
    cols = min(width // min_tile, MAX_TILES_PER_AXIS)
    rows = min(height // min_tile, MAX_TILES_PER_AXIS)
    if cols < 2 or rows < 2:
        return None
    return ShardGrid(width, height, cols, rows)


@dataclass
class ShardPlan:
    """Deterministic net -> shard assignment for one routing pass.

    ``interior[sid]`` lists the shard's nets in canonical routing order
    (each with its read window); ``boundary`` keeps the rest, also in
    canonical order. The plan is a pure function of the netlist and die
    geometry — identical for any worker count, which is what makes the
    sharded results reproducible.
    """

    grid: Optional[ShardGrid]
    interior: Dict[int, List[Tuple[Net, Bounds]]] = field(default_factory=dict)
    boundary: List[Net] = field(default_factory=list)
    windows: Dict[int, Bounds] = field(default_factory=dict)
    nets: int = 0

    @property
    def interior_nets(self) -> int:
        return sum(len(members) for members in self.interior.values())

    @property
    def boundary_nets(self) -> int:
        return len(self.boundary)

    @property
    def interior_fraction(self) -> float:
        return self.interior_nets / self.nets if self.nets else 0.0

    @property
    def shards_used(self) -> int:
        return len(self.interior)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "nets": self.nets,
            "interior_nets": self.interior_nets,
            "boundary_nets": self.boundary_nets,
            "predicted_interior_fraction": round(self.interior_fraction, 3),
            "shards_used": self.shards_used,
        }
        if self.grid is not None:
            out["shard_grid"] = f"{self.grid.cols}x{self.grid.rows}"
            out["tile"] = f"{self.grid.tile_w}x{self.grid.tile_h}"
        return out


def plan_shards(
    ordered: Sequence[Net],
    margin: int,
    width: int,
    height: int,
    grid: Optional[ShardGrid] = None,
    force: bool = False,
) -> ShardPlan:
    """Classify ``ordered`` (canonical routing order) into a shard plan.

    A net is *interior* when it has no Steiner taps and its read window
    (:func:`net_read_window`) lies inside a single tile; everything else
    is boundary. With ``force=True`` and no viable heuristic tiling, a
    minimal 2 x 2 grid is used regardless — the explicit ``shard="on"``
    escape hatch for exercising the machinery at small scales.
    """
    windows: Dict[int, Bounds] = {}
    sides: List[int] = []
    for net in ordered:
        win = net_read_window(net, margin, width, height)
        windows[net.net_id] = win
        sides.append(max(win[1] - win[0] + 1, win[3] - win[2] + 1))
    if grid is None:
        grid = choose_shard_grid(width, height, sides)
    if grid is None and force:
        grid = ShardGrid(width, height, 2, 2)
    plan = ShardPlan(grid=grid, windows=windows, nets=len(ordered))
    if grid is None:
        plan.boundary = list(ordered)
        return plan
    for net in ordered:
        sid = None if net.taps else grid.shard_containing(windows[net.net_id])
        if sid is None:
            plan.boundary.append(net)
        else:
            plan.interior.setdefault(sid, []).append((net, windows[net.net_id]))
    return plan


def should_shard(plan: ShardPlan) -> bool:
    """``workers="auto"``: does this plan clear the engagement bar?"""
    return (
        plan.grid is not None
        and plan.interior_nets >= SHARD_MIN_INTERIOR_NETS
        and plan.interior_fraction >= SHARD_MIN_INTERIOR_FRACTION
    )


def assign_streams(plan: ShardPlan, workers: int) -> List[List[int]]:
    """Deterministic shard -> worker assignment, round-robin by shard id.

    Returns one list of shard ids per worker. Chains are per-shard, so
    the committed results do not depend on this assignment (or on worker
    count) — it only balances load. Shards are interleaved by id so
    adjacent tiles tend to land on different workers, which smooths the
    result stream relative to canonical consumption order.
    """
    sids = sorted(plan.interior)
    streams: List[List[int]] = [[] for _ in range(max(1, workers))]
    for i, sid in enumerate(sids):
        streams[i % len(streams)].append(sid)
    return [s for s in streams if s]

"""Future-cost guidance maps for the A* hot path.

A guidance map is the exact cost-to-go ``d(n)``: for every window cell
``n = (layer, x, y)``, the cheapest cost of reaching *any* search target
from ``n`` under the same edge costs the forward search pays — ``alpha``
per preferred-direction step, ``alpha * wrong_way_factor`` per wrong-way
jog, ``beta`` per via, plus the folded per-cell extra cost (the Eq. (5)
overlay term and rip-up penalties) of every cell *entered*. ``d`` is
computed backward from the targets over the frozen window, so it is an
admissible **and** consistent heuristic by construction (it is the true
remaining cost, which trivially satisfies ``d(u) <= w(u, v) + d(v)``).

The fast A* path uses the map as a **corridor bound** rather than as a
replacement ordering heuristic: with ``T = min_src(g_src + d(src))``
(which equals the optimal path cost ``C*``), any heap entry whose
``g + d > T`` can never lie on the path A* will return, and — because
``d`` is consistent — every entry such an entry could ever relax is
itself prunable. Dropping them is therefore invisible to the search
result: the surviving entries pop in exactly the same order, assign
exactly the same parents, and return the bit-identical path at the
bit-identical cost, only without expanding the off-corridor bulk.
(``PRUNE_EPS`` pads the bound so float summation-order noise between the
numpy map and the sequential Python g-accumulation cannot evict a
cost-tied optimal entry.)

Two backends build the same map:

* ``csgraph`` (production, default when scipy is importable): the window
  graph is assembled as a fixed-slot CSR matrix with fully vectorized
  numpy index arithmetic — per-cell in-edges are ``[via down, in-layer
  back, in-layer forward, via up]`` (plus the two wrong-way slots when
  enabled), invalid slots carry ``inf`` which ``scipy.sparse.csgraph``
  treats as a non-edge — and one multi-source ``dijkstra(min_only=True)``
  from the target cells solves it in C. Structures (indices/indptr/step
  tables) are LRU-cached per window shape so repeat searches only pay
  the data fill.
* ``sweep`` (pure numpy, the executable specification): iterated
  backward Bellman–Ford relaxation where each round closes every grid
  line with a binary-lifting min-plus prefix scan along the layer's
  travel axes and couples layers through a vectorized via relaxation,
  until a fixpoint. The fixpoint of the full relaxation operator is the
  exact distance, so both backends agree; the property tests pin them
  to each other and to a scalar reference Dijkstra.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs

try:  # scipy is an install-time dependency, but keep the import soft so
    # the sweep backend can serve minimal environments.
    import scipy.sparse as _sp
    import scipy.sparse.csgraph as _csg

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    _sp = _csg = None
    HAVE_SCIPY = False

#: Slack added to the corridor bound: far above accumulated float64
#: summation-order noise (~1e-10 on realistic path costs), far below any
#: genuine cost difference the parameter set can produce.
PRUNE_EPS = 1e-6

#: Default number of unguided expansions after which ``guidance="auto"``
#: switches the running search over to map-guided pruning.
AUTO_TRIGGER_EXPANSIONS = 192

#: Windows smaller than this (total cells, all layers) never activate
#: guidance: the unguided flood over such a window costs less than the
#: map build it would be pruned by.
GUIDANCE_MIN_CELLS = 2048

#: Window extents are padded up to multiples of this inside the csgraph
#: backend so the CSR structure cache hits across similar windows.
#: Padded cells are impassable (``inf`` entry cost), so the map restricted
#: to the real window is exact.
_SHAPE_PAD = 8

_INF = float("inf")


def prune_threshold(total: float) -> float:
    """The corridor bound for an optimal cost ``total`` (noise-padded)."""
    return total + PRUNE_EPS + 1e-9 * abs(total)


# ---------------------------------------------------------------------- #
# csgraph backend
# ---------------------------------------------------------------------- #


class _CsrStructure:
    """Shape-dependent CSR skeleton: indices, indptr, slot step tables.

    Everything except the per-call edge weights. The weight of every
    in-edge of cell ``v`` in the *reverse* graph is ``step + A[v]``
    (``A`` = folded cell cost, ``inf`` when impassable), so a call only
    broadcasts ``A`` across the slot columns and masks the static
    boundary slots — no Python per-cell work.
    """

    __slots__ = ("n", "k", "graph", "data2d", "steps", "invalid_idx")

    def __init__(
        self,
        num_layers: int,
        wx: int,
        wy: int,
        horizontal: Tuple[bool, ...],
        alpha: float,
        beta: float,
        wrong_way: float,
    ) -> None:
        stride = wx * wy
        n = num_layers * stride
        hl = np.asarray(horizontal[:num_layers], dtype=bool)
        if wrong_way:
            offsets = [-stride, -wy, -1, 1, wy, stride]
        else:
            off = np.where(hl, wy, 1).astype(np.int64)[:, None, None]
            offsets = [-stride, -off, off, stride]
        k = len(offsets)
        idx = np.arange(n, dtype=np.int64).reshape(num_layers, wx, wy)

        cols = np.empty((n, k), dtype=np.int32)
        invalid = np.zeros((num_layers, wx, wy, k), dtype=bool)
        steps = np.empty((num_layers, 1, 1, k), dtype=np.float64)
        ww = alpha * wrong_way
        for s, off_s in enumerate(offsets):
            # Wrapped columns stay in-range; every wrapped slot is masked
            # invalid below, and invalid slots carry inf weights which
            # csgraph treats as non-edges.
            cols[:, s] = ((idx + off_s) % n).ravel()
        if wrong_way:
            # slots: [-stride, -wy(x-1), -1(y-1), +1(y+1), +wy(x+1), +stride]
            invalid[:, :, :, 0][0] = True
            invalid[:, :, :, 5][-1] = True
            invalid[:, 0, :, 1] = True
            invalid[:, -1, :, 4] = True
            invalid[:, :, 0, 2] = True
            invalid[:, :, -1, 3] = True
            step_x = np.where(hl, alpha, ww)
            step_y = np.where(hl, ww, alpha)
            steps[:, 0, 0, 0] = beta
            steps[:, 0, 0, 1] = step_x
            steps[:, 0, 0, 2] = step_y
            steps[:, 0, 0, 3] = step_y
            steps[:, 0, 0, 4] = step_x
            steps[:, 0, 0, 5] = beta
        else:
            # slots: [-stride, -off(preferred back), +off(forward), +stride]
            invalid[:, :, :, 0][0] = True
            invalid[:, :, :, 3][-1] = True
            for layer in range(num_layers):
                if hl[layer]:
                    invalid[layer, 0, :, 1] = True
                    invalid[layer, -1, :, 2] = True
                else:
                    invalid[layer, :, 0, 1] = True
                    invalid[layer, :, -1, 2] = True
            steps[:, 0, 0, 0] = beta
            steps[:, 0, 0, 1] = alpha
            steps[:, 0, 0, 2] = alpha
            steps[:, 0, 0, 3] = beta

        indptr = np.arange(0, n * k + 1, k, dtype=np.int32)
        data = np.full(n * k, _INF, dtype=np.float64)
        graph = _sp.csr_matrix(
            (data, cols.ravel(), indptr), shape=(n, n), copy=False
        )
        self.n = n
        self.k = k
        self.graph = graph
        # Contiguous view into the matrix's own data buffer: per-call
        # weight fills write straight into the graph.
        self.data2d = graph.data.reshape(n, k)
        self.steps = steps
        # Flat positions of the boundary slots — integer fancy indexing
        # is cheaper than a boolean mask of the whole (n, k) plane on
        # every fill.
        self.invalid_idx = np.flatnonzero(invalid.reshape(-1))


_structures: "OrderedDict[tuple, _CsrStructure]" = OrderedDict()
_STRUCT_CACHE_MAX = 32
_lock = threading.Lock()


def _structure_for(
    num_layers: int,
    wx: int,
    wy: int,
    horizontal: Tuple[bool, ...],
    alpha: float,
    beta: float,
    wrong_way: float,
) -> _CsrStructure:
    key = (num_layers, wx, wy, horizontal, alpha, beta, wrong_way)
    struct = _structures.get(key)
    if struct is None:
        struct = _CsrStructure(
            num_layers, wx, wy, horizontal, alpha, beta, wrong_way
        )
        _structures[key] = struct
    _structures.move_to_end(key)
    while len(_structures) > _STRUCT_CACHE_MAX:
        _structures.popitem(last=False)
    return struct


def _csgraph_map(
    passable: np.ndarray,
    cost: np.ndarray,
    horizontal: Sequence[bool],
    alpha: float,
    beta: float,
    wrong_way: float,
    target_mask: np.ndarray,
) -> np.ndarray:
    num_layers, wx, wy = passable.shape
    # Quantize the window shape so repeat searches share CSR skeletons.
    # Padding cells are impassable: their entry cost is inf, csgraph sees
    # no edges through them, and the slice back to the real extent is
    # bit-identical to an unpadded solve.
    pwx = -(-wx // _SHAPE_PAD) * _SHAPE_PAD
    pwy = -(-wy // _SHAPE_PAD) * _SHAPE_PAD
    if (pwx, pwy) != (wx, wy):
        padded = np.zeros((num_layers, pwx, pwy), dtype=bool)
        padded[:, :wx, :wy] = passable
        cost_p = np.zeros((num_layers, pwx, pwy), dtype=np.float64)
        cost_p[:, :wx, :wy] = cost
        tmask = np.zeros((num_layers, pwx, pwy), dtype=bool)
        tmask[:, :wx, :wy] = target_mask
    else:
        padded, cost_p, tmask = passable, cost, target_mask
    with _lock:
        struct = _structure_for(
            num_layers,
            pwx,
            pwy,
            tuple(bool(h) for h in horizontal[:num_layers]),
            alpha,
            beta,
            wrong_way,
        )
        entry = np.where(padded, cost_p, _INF)
        # Broadcast-add straight into the CSR data buffer, then stamp the
        # boundary slots; no (n, k) temporary.
        np.add(
            entry.reshape(num_layers, pwx, pwy, 1),
            struct.steps,
            out=struct.data2d.reshape(num_layers, pwx, pwy, struct.k),
        )
        struct.graph.data[struct.invalid_idx] = _INF
        targets = np.flatnonzero(tmask.ravel())
        dist = _csg.dijkstra(struct.graph, indices=targets, min_only=True)
    dist = dist.reshape(num_layers, pwx, pwy)[:, :wx, :wy]
    dist[~passable] = _INF
    return dist


# ---------------------------------------------------------------------- #
# sweep backend
# ---------------------------------------------------------------------- #


def _lift_scan(D: np.ndarray, W: np.ndarray, axis: int) -> np.ndarray:
    """Exact 1D min-plus closure along ``axis`` by binary lifting.

    ``W[cell]`` is the cost of *entering* the cell while travelling along
    the axis (``inf`` blocks). Both directions are scanned from the same
    input (a non-negative-cost 1D shortest path never reverses), and the
    per-hop weight tables double each pass, so ``ceil(log2(n))`` passes
    close lines of any length.
    """
    Dm = np.moveaxis(D, axis, -1)
    Wm = np.moveaxis(W, axis, -1)
    n = Dm.shape[-1]
    fwd = Dm.copy()
    gain = np.full_like(Wm, _INF)
    gain[..., 1:] = Wm[..., :-1]
    bwd = Dm.copy()
    gain_b = np.full_like(Wm, _INF)
    gain_b[..., :-1] = Wm[..., 1:]
    span = 1
    while span < n:
        shifted = np.full_like(fwd, _INF)
        shifted[..., span:] = fwd[..., :-span]
        np.minimum(fwd, shifted + gain, out=fwd)
        g_shift = np.full_like(gain, _INF)
        g_shift[..., span:] = gain[..., :-span]
        gain = gain + g_shift

        shifted_b = np.full_like(bwd, _INF)
        shifted_b[..., :-span] = bwd[..., span:]
        np.minimum(bwd, shifted_b + gain_b, out=bwd)
        gb_shift = np.full_like(gain_b, _INF)
        gb_shift[..., :-span] = gain_b[..., span:]
        gain_b = gain_b + gb_shift
        span *= 2
    return np.moveaxis(np.minimum(fwd, bwd), -1, axis)


def _sweep_map(
    passable: np.ndarray,
    cost: np.ndarray,
    horizontal: Sequence[bool],
    alpha: float,
    beta: float,
    wrong_way: float,
    target_mask: np.ndarray,
    max_iters: int = 64,
) -> Optional[np.ndarray]:
    num_layers, wx, wy = passable.shape
    hl = np.asarray(horizontal[:num_layers], dtype=bool)[:, None, None]
    entry = np.where(passable, cost, _INF)
    ww = alpha * wrong_way if wrong_way else _INF
    step_x = np.where(hl, alpha, ww)
    step_y = np.where(hl, ww, alpha)
    D = np.full(passable.shape, _INF, dtype=np.float64)
    D[target_mask] = 0.0
    Wx = entry + step_x
    Wy = entry + step_y
    Wv = entry + beta  # cost of entering each cell through a via
    for iteration in range(max_iters):
        prev = D
        D = _lift_scan(D, Wx, axis=1)
        D[~passable] = _INF
        D[target_mask] = 0.0
        D = _lift_scan(D, Wy, axis=2)
        D[~passable] = _INF
        D[target_mask] = 0.0
        # d(u) = d(v) + beta + cost(v): the forward search pays the cost
        # of the cell it *enters*, i.e. the via's far end.
        via = np.full_like(D, _INF)
        via[:-1] = D[1:] + Wv[1:]
        via[1:] = np.minimum(via[1:], D[:-1] + Wv[:-1])
        D = np.minimum(D, via)
        D[~passable] = _INF
        D[target_mask] = 0.0
        if np.array_equal(D, prev):
            return D
    return None  # did not converge; caller routes unguided


# ---------------------------------------------------------------------- #
# public entry point
# ---------------------------------------------------------------------- #


def future_cost_map(
    passable: np.ndarray,
    cost: np.ndarray,
    horizontal: Sequence[bool],
    alpha: float,
    beta: float,
    wrong_way: float,
    target_mask: np.ndarray,
    backend: str = "auto",
) -> Optional[np.ndarray]:
    """Exact cost-to-go of every window cell toward the target set.

    Parameters mirror the fast search's folded state: ``passable`` (bool
    array, layers x wx x wy), ``cost`` (the folded Eq. (5) + penalty
    grid), the per-layer direction table, the CostParams step weights,
    and the target mask. Returns a float64 array of the same shape with
    ``inf`` for unreachable or impassable cells, or ``None`` when the
    window is degenerate (guidance simply stays off for that search).
    """
    num_layers, wx, wy = passable.shape
    if wx < 2 or wy < 2 or not target_mask.any():
        return None
    if backend == "auto":
        backend = "csgraph" if HAVE_SCIPY else "sweep"
    if backend == "csgraph":
        if not HAVE_SCIPY:
            raise RuntimeError("csgraph guidance backend requires scipy")
        return _csgraph_map(
            passable, cost, horizontal, alpha, beta, wrong_way, target_mask
        )
    if backend == "sweep":
        return _sweep_map(
            passable, cost, horizontal, alpha, beta, wrong_way, target_mask
        )
    raise ValueError(f"unknown guidance backend: {backend!r}")


# ---------------------------------------------------------------------- #
# batched builds
# ---------------------------------------------------------------------- #


def _csgraph_batch(
    group: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    num_layers: int,
    pwx: int,
    pwy: int,
    horizontal: Sequence[bool],
    alpha: float,
    beta: float,
    wrong_way: float,
) -> List[np.ndarray]:
    """Solve several same-padded-shape maps in one Dijkstra call.

    The per-window graphs are stacked block-diagonally: block ``j``
    reuses the cached single-window CSR skeleton with its columns offset
    by ``j * n``, each block's data filled from its own cost/passability,
    and the union of all blocks' target cells given as Dijkstra sources.
    Blocks share no finite edge (every wrapped/boundary slot carries
    ``inf``), so each block's distances are exactly what a standalone
    solve computes — shortest-path distances are the unique fixpoint of
    min-over-path-sums, independent of traversal interleaving — and the
    per-block slices are bit-identical to :func:`_csgraph_map` output.
    """
    m = len(group)
    with _lock:
        struct = _structure_for(
            num_layers,
            pwx,
            pwy,
            tuple(bool(h) for h in horizontal[:num_layers]),
            alpha,
            beta,
            wrong_way,
        )
        n, k = struct.n, struct.k
        base_cols = np.asarray(struct.graph.indices, dtype=np.int64).reshape(n, k)
        cols = (
            base_cols[None, :, :]
            + (np.arange(m, dtype=np.int64) * n)[:, None, None]
        ).ravel()
        indptr = np.arange(0, m * n * k + 1, k, dtype=np.int64)
        data = np.empty(m * n * k, dtype=np.float64)
        target_rows = []
        for j, (padded, cost_p, tmask) in enumerate(group):
            entry = np.where(padded, cost_p, _INF)
            block = data[j * n * k : (j + 1) * n * k]
            np.add(
                entry.reshape(num_layers, pwx, pwy, 1),
                struct.steps,
                out=block.reshape(num_layers, pwx, pwy, k),
            )
            block[struct.invalid_idx] = _INF
            target_rows.append(np.flatnonzero(tmask.ravel()) + j * n)
        graph = _sp.csr_matrix(
            (data, cols, indptr), shape=(m * n, m * n), copy=False
        )
        dist = _csg.dijkstra(
            graph, indices=np.concatenate(target_rows), min_only=True
        )
    return [
        dist[j * n : (j + 1) * n].reshape(num_layers, pwx, pwy)
        for j in range(m)
    ]


def batched_future_cost_maps(
    items: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    horizontal: Sequence[bool],
    alpha: float,
    beta: float,
    wrong_way: float,
    backend: str = "auto",
) -> List[Optional[np.ndarray]]:
    """Build guidance maps for several queued searches at once.

    ``items`` is a sequence of ``(passable, cost, target_mask)`` triples
    as :func:`future_cost_map` takes them — same step weights and layer
    directions, per-search window contents. Windows sharing a padded
    CSR shape are solved in one block-diagonal ``csgraph`` call (the
    batch win); singletons and degenerate windows fall through to the
    per-item path, and without scipy everything does. Entry ``i`` of the
    returned list is bit-identical to
    ``future_cost_map(*items[i], ...)``.
    """
    results: List[Optional[np.ndarray]] = [None] * len(items)
    resolved = backend
    if resolved == "auto":
        resolved = "csgraph" if HAVE_SCIPY else "sweep"
    if resolved != "csgraph":
        for i, (passable, cost, tmask) in enumerate(items):
            results[i] = future_cost_map(
                passable, cost, horizontal, alpha, beta, wrong_way, tmask,
                backend=backend,
            )
        return results
    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for i, (passable, cost, tmask) in enumerate(items):
        num_layers, wx, wy = passable.shape
        if wx < 2 or wy < 2 or not tmask.any():
            continue  # degenerate, like future_cost_map returning None
        pwx = -(-wx // _SHAPE_PAD) * _SHAPE_PAD
        pwy = -(-wy // _SHAPE_PAD) * _SHAPE_PAD
        groups.setdefault((num_layers, pwx, pwy), []).append(i)
    for (num_layers, pwx, pwy), members in groups.items():
        if len(members) == 1:
            i = members[0]
            passable, cost, tmask = items[i]
            results[i] = _csgraph_map(
                passable, cost, horizontal, alpha, beta, wrong_way, tmask
            )
            continue
        padded_group = []
        for i in members:
            passable, cost, tmask = items[i]
            wx, wy = passable.shape[1], passable.shape[2]
            if (pwx, pwy) != (wx, wy):
                p = np.zeros((num_layers, pwx, pwy), dtype=bool)
                p[:, :wx, :wy] = passable
                c = np.zeros((num_layers, pwx, pwy), dtype=np.float64)
                c[:, :wx, :wy] = cost
                t = np.zeros((num_layers, pwx, pwy), dtype=bool)
                t[:, :wx, :wy] = tmask
            else:
                p, c, t = passable, cost, tmask
            padded_group.append((p, c, t))
        dists = _csgraph_batch(
            padded_group, num_layers, pwx, pwy, horizontal, alpha, beta,
            wrong_way,
        )
        obs.counter_inc("guidance_batch_builds_total")
        obs.counter_inc("guidance_batched_maps_total", len(members))
        for i, dist_p in zip(members, dists):
            passable = items[i][0]
            wx, wy = passable.shape[1], passable.shape[2]
            dist = dist_p[:, :wx, :wy].copy()
            dist[~passable] = _INF
            results[i] = dist
    return results

"""Overlay-aware detailed router (Section III-E).

:class:`SadpRouter` is the library's main entry point: it sequentially
routes a netlist with A* (cost Eq. 5), maintains one overlay constraint
graph per layer, pseudo-colors each net, flips colors when overlay grows,
rips up nets that close hard odd cycles or unavoidable cut conflicts, and
returns a fully colored, conflict-free routing result.
"""

from .cost import CostParams
from .astar import (
    AStarRouter,
    PrecomputedAttempt,
    SearchRequest,
    SearchSubproblem,
    SubproblemResult,
    solve_subproblem,
)
from .guidance import future_cost_map, prune_threshold
from .overlay_cache import OverlayCostCache, overlay_cost_grid, probe_cell
from .parallel import BatchScheduler, ParallelRouter, ParallelStats, ShardedRouter
from .pool import InlineShardPool, SharedOccupancy, WorkerPool
from .result import NetRoute, RoutingResult
from .sharding import ShardGrid, ShardPlan, plan_shards, should_shard
from .sadp_router import SadpRouter
from .trace import RouterTrace, TraceEvent
from .io import load_result, save_result

__all__ = [
    "CostParams",
    "AStarRouter",
    "PrecomputedAttempt",
    "SearchRequest",
    "SearchSubproblem",
    "SubproblemResult",
    "solve_subproblem",
    "future_cost_map",
    "prune_threshold",
    "OverlayCostCache",
    "overlay_cost_grid",
    "probe_cell",
    "BatchScheduler",
    "ParallelRouter",
    "ParallelStats",
    "ShardedRouter",
    "ShardGrid",
    "ShardPlan",
    "plan_shards",
    "should_shard",
    "SharedOccupancy",
    "InlineShardPool",
    "WorkerPool",
    "NetRoute",
    "RoutingResult",
    "SadpRouter",
    "RouterTrace",
    "TraceEvent",
    "save_result",
    "load_result",
]

"""Persistent shared-memory worker pool for region-sharded routing.

The PR-3 batch path re-pickles an occupancy snapshot per subproblem —
fine for occasional batches, fatal for a router that wants to keep N
processes busy for a whole routing pass. This module replaces that with:

* :class:`SharedOccupancy` — the die's occupancy array published once
  per routing pass into a ``multiprocessing.shared_memory`` segment,
  with a generation stamp in the segment header. The parent registers
  as a :class:`~repro.grid.routing_grid.RoutingGrid` change listener;
  any commit marks the segment stale and the next :meth:`refresh`
  rewrites it and bumps the generation. Workers carry the expected
  generation in their task and refuse to compute against a stale
  segment (outcome ``"stale_generation"`` — the parent falls back to a
  live route, never a wrong answer).
* :class:`WorkerPool` — long-lived ``multiprocessing`` workers, one
  task queue each and a shared result queue. A worker receives *one*
  task per routing pass: its shard set plus the net stream, and slices
  each tile out of shared memory locally — per-net traffic is pins out,
  paths back; no grids cross the pipe.
* :func:`run_shard_stream` — the worker's chained solver. Each net is
  solved with the existing :func:`~repro.router.astar.solve_subproblem`
  (window-parity guard and all) against a *mutable* tile snapshot; a
  found path is applied to the tile before the next net's search, so
  nets within a shard speculate against each other. The same function
  backs :class:`InlineShardPool` (the in-process executor used by
  ``executor="serial"``/``"thread"`` and the determinism tests), so
  both paths cannot drift apart.
"""

from __future__ import annotations

import queue as queue_mod
import struct
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Point
from .astar import (
    AUTO_TRIGGER_EXPANSIONS,
    GUIDANCE_MIN_CELLS,
    Bounds,
    SearchSubproblem,
    SubproblemResult,
    solve_subproblem,
)
from .cost import CostParams

#: Segment header: a little-endian uint64 generation stamp (16 bytes
#: reserved so the payload array stays 16-byte aligned).
_HEADER_BYTES = 16


@dataclass(frozen=True)
class SharedGridDescriptor:
    """Everything a worker needs to attach: name, layout, expected gen."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    generation: int


class SharedOccupancy:
    """The grid's occupancy in a shared segment, generation-stamped.

    Lifecycle: the parent creates it at the start of a routing pass
    (snapshotting the grid, pins already reserved), hands descriptors to
    workers, and closes it at the end — ``close`` detaches the change
    listener, releases the mapping and unlinks the segment, and is
    idempotent, so a crash-path ``finally`` can always call it.
    """

    def __init__(self, grid) -> None:
        self.grid = grid
        occ = grid._occ
        self._shape = occ.shape
        self._dtype = occ.dtype
        self.shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(
                create=True, size=_HEADER_BYTES + occ.nbytes
            )
        )
        self._view: Optional[np.ndarray] = np.ndarray(
            occ.shape, dtype=occ.dtype, buffer=self.shm.buf, offset=_HEADER_BYTES
        )
        self._generation = 0
        self._dirty = True
        grid.add_change_listener(self)
        self.refresh()

    # -- grid change-listener protocol --------------------------------- #

    def on_cells_changed(self, cells) -> None:
        self._dirty = True

    def on_grid_reset(self) -> None:
        self._dirty = True

    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def stale(self) -> bool:
        return self._dirty

    def refresh(self) -> int:
        """Re-publish the occupancy iff the grid changed; returns the gen.

        One full-array copy per rip-up generation, not per subproblem —
        callers take the returned generation and stamp it into tasks.
        """
        if self._dirty:
            assert self.shm is not None and self._view is not None
            self._view[...] = self.grid._occ
            self._generation += 1
            struct.pack_into("<Q", self.shm.buf, 0, self._generation)
            self._dirty = False
        return self._generation

    def descriptor(self) -> SharedGridDescriptor:
        assert self.shm is not None
        return SharedGridDescriptor(
            name=self.shm.name,
            shape=tuple(self._shape),
            dtype=str(self._dtype),
            generation=self._generation,
        )

    def close(self) -> None:
        """Detach, release and unlink; safe to call twice."""
        if self.shm is None:
            return
        try:
            self.grid.remove_change_listener(self)
        except Exception:
            pass
        self._view = None  # drop the buffer export before closing
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            self.shm = None


class Attachment:
    """A read-only view of a :class:`SharedOccupancy` by descriptor.

    On Python < 3.13 merely attaching a segment re-registers it with the
    resource tracker. Every attacher here — inline pool (same process)
    or :class:`WorkerPool` child — shares the creator's tracker daemon,
    so that re-registration is a set no-op and the creator's ``unlink``
    unregisters exactly once; nothing to compensate for. (Attaching from
    an *unrelated* process would need ``resource_tracker.unregister`` to
    stop that process's own tracker from unlinking the segment at exit —
    a scenario this module never creates.)
    """

    def __init__(self, desc: SharedGridDescriptor) -> None:
        self.shm = shared_memory.SharedMemory(name=desc.name)
        self.occ: Optional[np.ndarray] = np.ndarray(
            tuple(desc.shape),
            dtype=np.dtype(desc.dtype),
            buffer=self.shm.buf,
            offset=_HEADER_BYTES,
        )

    def generation(self) -> int:
        return struct.unpack_from("<Q", self.shm.buf, 0)[0]

    def close(self) -> None:
        self.occ = None
        try:
            self.shm.close()
        except Exception:
            pass


# ---------------------------------------------------------------------- #
# Task / result envelopes
# ---------------------------------------------------------------------- #


@dataclass
class ShardNetSpec:
    """One interior net of a stream: pins in absolute die coordinates."""

    net_id: int
    shard_id: int
    sources: List[Tuple[int, Point]]
    targets: List[Tuple[int, Point]]


@dataclass
class ShardStreamTask:
    """One worker's job for a whole routing pass.

    ``nets`` is the worker's shards' interior nets merged in canonical
    routing order — results stream back roughly in the order the parent
    consumes them, so the main loop rarely blocks on a result.
    """

    descriptor: SharedGridDescriptor
    tiles: Dict[int, Bounds]
    nets: List[ShardNetSpec]
    die_width: int
    die_height: int
    horizontal: List[bool]
    params: CostParams
    overlay_terms: Optional[Tuple[float, float]]
    use_reference: bool = False
    guidance: str = "off"
    guidance_trigger: int = AUTO_TRIGGER_EXPANSIONS
    guidance_min_cells: int = GUIDANCE_MIN_CELLS
    kernel: str = "python"


@dataclass
class ShardResult:
    """A per-net result envelope; ``result`` is absolute-coordinate."""

    shard_id: int
    result: SubproblemResult


@dataclass
class StreamDone:
    """End-of-stream sentinel from one worker."""

    worker: int


def run_shard_stream(
    task: ShardStreamTask, occ: np.ndarray
) -> Iterator[ShardResult]:
    """Chained per-shard speculation: the worker-side solver.

    For each net, in stream (canonical) order: slice its tile out of
    ``occ`` on first touch, solve the attempt-0 search with
    :func:`solve_subproblem` (fresh engine per net, so the result's
    engine counters are per-net deltas), then apply a found path's nodes
    to the tile so the shard's later nets search against it. The tile
    bounds double as the subproblem window — the parity guard inside
    ``solve_subproblem`` rejects any search whose padded window escapes
    the tile (outcome ``"window_exceeded"``), which keeps every read
    inside the net's parent-computed read window.
    """
    tiles: Dict[int, np.ndarray] = {}
    for spec in task.nets:
        bounds = task.tiles[spec.shard_id]
        tile = tiles.get(spec.shard_id)
        if tile is None:
            tile = occ[
                :,
                bounds[0] : bounds[1] + 1,
                bounds[2] : bounds[3] + 1,
            ].copy()
            tiles[spec.shard_id] = tile
        sub = SearchSubproblem(
            net_id=spec.net_id,
            sources=spec.sources,
            targets=spec.targets,
            taps=[],
            bounds=bounds,
            occ=tile,
            die_width=task.die_width,
            die_height=task.die_height,
            horizontal=task.horizontal,
            params=task.params,
            overlay_terms=task.overlay_terms,
            use_reference=task.use_reference,
            guidance=task.guidance,
            guidance_trigger=task.guidance_trigger,
            guidance_min_cells=task.guidance_min_cells,
            kernel=task.kernel,
        )
        try:
            res = solve_subproblem(sub)
        except Exception:
            res = SubproblemResult(net_id=spec.net_id, outcome="error")
        if res.outcome == "found":
            ox, oy = bounds[0], bounds[2]
            for layer, x, y in res.nodes:
                tile[layer, x - ox, y - oy] = spec.net_id
        yield ShardResult(shard_id=spec.shard_id, result=res)


def _stale_results(task: ShardStreamTask) -> Iterator[ShardResult]:
    for spec in task.nets:
        yield ShardResult(
            shard_id=spec.shard_id,
            result=SubproblemResult(
                net_id=spec.net_id, outcome="stale_generation"
            ),
        )


def _error_results(task: ShardStreamTask) -> Iterator[ShardResult]:
    for spec in task.nets:
        yield ShardResult(
            shard_id=spec.shard_id,
            result=SubproblemResult(net_id=spec.net_id, outcome="error"),
        )


def _worker_main(worker_index: int, task_q, result_q) -> None:
    """Long-lived worker loop: one attachment cache, tasks until None."""
    attachments: Dict[str, Attachment] = {}
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            try:
                att = attachments.get(task.descriptor.name)
                if att is None:
                    for old in attachments.values():
                        old.close()
                    attachments = {}
                    att = Attachment(task.descriptor)
                    attachments[task.descriptor.name] = att
                if att.generation() != task.descriptor.generation:
                    results = _stale_results(task)
                else:
                    results = run_shard_stream(task, att.occ)
                for item in results:
                    result_q.put(item)
            except Exception:
                # Attach/segment failure: the parent routes these live.
                for item in _error_results(task):
                    result_q.put(item)
            result_q.put(StreamDone(worker=worker_index))
    finally:
        for att in attachments.values():
            att.close()


class WorkerPool:
    """N persistent worker processes; one task queue each, shared results.

    Per-worker task queues make worker death attributable: the parent
    knows which streams a dead worker owned and can fall back for
    exactly those nets. Workers are daemonic — an abandoned pool cannot
    outlive the parent process.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        ctx = get_context(start_method)
        self.workers = max(1, int(workers))
        self._task_qs = [ctx.Queue() for _ in range(self.workers)]
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, self._task_qs[i], self._result_q),
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        self._closed = False

    @property
    def kind(self) -> str:
        return "process"

    def submit(self, worker_index: int, task: ShardStreamTask) -> None:
        self._task_qs[worker_index].put(task)

    def get(self, timeout: float):
        """Next result message; raises ``queue.Empty`` on timeout."""
        return self._result_q.get(timeout=timeout)

    def dead_workers(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if not p.is_alive()]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._task_qs:
            try:
                q.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (*self._task_qs, self._result_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass


class InlineShardPool:
    """In-process pool: streams run eagerly at submit time.

    Functionally identical to :class:`WorkerPool` — same tasks, same
    :func:`run_shard_stream`, same shared-memory read path (it attaches
    the segment by descriptor like a real worker) — but synchronous.
    Computing a whole stream up front is exactly what an asynchronous
    worker does from the parent's perspective: every chained search
    reads the pass-start snapshot plus earlier chain results, never the
    parent's live commits, so results are bit-identical either way.
    Used by ``executor="serial"``/``"thread"`` and the determinism tests.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._results: deque = deque()

    @property
    def kind(self) -> str:
        return "inline"

    def submit(self, worker_index: int, task: ShardStreamTask) -> None:
        att = Attachment(task.descriptor)
        try:
            if att.generation() != task.descriptor.generation:
                self._results.extend(_stale_results(task))
            else:
                self._results.extend(run_shard_stream(task, att.occ))
        finally:
            att.close()
        self._results.append(StreamDone(worker=worker_index))

    def get(self, timeout: float):
        if not self._results:
            raise queue_mod.Empty
        return self._results.popleft()

    def dead_workers(self) -> List[int]:
        return []

    def close(self) -> None:
        self._results.clear()

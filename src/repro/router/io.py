"""Routing result persistence (JSON).

Saves everything a downstream tool needs from a routing run — per-net
segments and vias, per-layer mask colors, and the aggregate metrics — in
a stable, human-inspectable JSON schema, and loads it back into a
:class:`~repro.router.RoutingResult`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..color import Color
from ..errors import RoutingError
from ..geometry import Point, Segment
from ..grid import Via
from .result import NetRoute, RoutingResult

#: Schema version written into every file; bumped on breaking changes.
SCHEMA_VERSION = 1


def result_to_dict(result: RoutingResult) -> Dict:
    """Lower a result to plain JSON-serialisable data."""
    return {
        "schema": SCHEMA_VERSION,
        "metrics": {
            "overlay_units": result.overlay_units,
            "overlay_nm": result.overlay_nm,
            "hard_overlays": result.hard_overlays,
            "cut_conflicts": result.cut_conflicts,
            "total_ripups": result.total_ripups,
            "color_flips": result.color_flips,
            "cpu_seconds": result.cpu_seconds,
        },
        "colorings": {
            str(layer): {str(net): color.value for net, color in coloring.items()}
            for layer, coloring in result.colorings.items()
        },
        "routes": {
            str(net_id): {
                "success": route.success,
                "ripups": route.ripups,
                "segments": [
                    [seg.layer, seg.a.x, seg.a.y, seg.b.x, seg.b.y]
                    for seg in route.segments
                ],
                "vias": [[via.lower, via.at.x, via.at.y] for via in route.vias],
            }
            for net_id, route in sorted(result.routes.items())
        },
    }


def result_from_dict(data: Dict) -> RoutingResult:
    """Rebuild a :class:`RoutingResult` from :func:`result_to_dict` data."""
    if data.get("schema") != SCHEMA_VERSION:
        raise RoutingError(
            f"unsupported routing-result schema {data.get('schema')!r}"
        )
    result = RoutingResult()
    metrics = data.get("metrics", {})
    result.overlay_units = float(metrics.get("overlay_units", 0.0))
    result.overlay_nm = float(metrics.get("overlay_nm", 0.0))
    result.hard_overlays = int(metrics.get("hard_overlays", 0))
    result.cut_conflicts = int(metrics.get("cut_conflicts", 0))
    result.total_ripups = int(metrics.get("total_ripups", 0))
    result.color_flips = int(metrics.get("color_flips", 0))
    result.cpu_seconds = float(metrics.get("cpu_seconds", 0.0))

    for layer_text, coloring in data.get("colorings", {}).items():
        result.colorings[int(layer_text)] = {
            int(net): Color(value) for net, value in coloring.items()
        }
    for net_text, payload in data.get("routes", {}).items():
        net_id = int(net_text)
        route = NetRoute(
            net_id=net_id,
            success=bool(payload.get("success", False)),
            ripups=int(payload.get("ripups", 0)),
            segments=[
                Segment(layer, Point(ax, ay), Point(bx, by))
                for layer, ax, ay, bx, by in payload.get("segments", [])
            ],
            vias=[
                Via(lower, Point(x, y)) for lower, x, y in payload.get("vias", [])
            ],
        )
        result.routes[net_id] = route
    return result


def save_result(result: RoutingResult, path: Union[str, Path]) -> Path:
    """Write a routing result as JSON."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1, sort_keys=True))
    return path


def load_result(path: Union[str, Path]) -> RoutingResult:
    """Read a routing result saved by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))

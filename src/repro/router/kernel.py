"""Compiled A* inner loop for the fast search path.

This module holds a third implementation of the search loop in
:mod:`repro.router.astar` — the same flat-array state the fast path
uses, but with the heap, neighbour relaxation, direction/parity tables,
guidance corridor pruning and budget accounting expressed as
numba-jittable functions over numpy arrays. numba is **optional**: when
it is not importable the very same functions run interpreted (the
``njit`` decorator degrades to identity), so the kernel path stays
executable — and testable for bit-identity — in minimal environments.

Equivalence contract (the PR-2 ``use_reference`` pattern, one level up):
the kernel must return the identical node sequence, cost, outcome and
``(expansions, pushes, pops)`` counter triple as
:meth:`AStarRouter._search_fast` for every request. Three properties
make that hold:

* heap entries are ``(f, g, tiebreak, idx)`` with a unique, strictly
  increasing tiebreak per push — a strict total order — so *any*
  correct binary min-heap pops the exact sequence ``heapq`` does;
* every float expression mirrors the fast path's evaluation order
  (``g + step + cost[n]`` then ``ng + alpha*(dx+dy) + vb[...]``, all
  left-associative), so IEEE rounding is bit-identical;
* neighbours relax in the same tuple order (preferred direction, then
  wrong-way jogs, then vias down/up), so tiebreak counters match.

The loop is *resumable*: it returns a status code and persists its heap
and counters in caller-owned arrays, so the Python driver can grow the
heap (``HEAPFULL``) or build a guidance map mid-search (``TRIGGER`` —
the map build stays in Python/scipy, exactly like the fast path's
in-place activation) and re-enter without losing state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..grid import CellState
from .guidance import future_cost_map, prune_threshold
from .overlay_cache import overlay_cost_grid

try:  # numba is deliberately optional — never a hard dependency.
    from numba import njit as _numba_njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised only without numba
    _numba_njit = None
    HAVE_NUMBA = False


def njit(*args, **kwargs):
    """``numba.njit`` when available, identity decorator otherwise.

    The interpreted fallback runs the *same* code paths, so the
    equivalence suite is meaningful even where numba is absent.
    """
    if HAVE_NUMBA:
        return _numba_njit(*args, **kwargs)

    def _identity(func):
        return func

    return _identity


def resolve_kernel(knob: str) -> bool:
    """Whether a ``kernel=`` knob value selects the kernel path.

    ``"python"`` never does; ``"numba"`` always does (interpreted when
    numba is missing — slow but bit-identical, which is what the
    equivalence tests exercise); ``"auto"`` does exactly when numba is
    importable, so the default never pays interpreter overhead.
    """
    if knob == "python":
        return False
    if knob == "numba":
        return True
    if knob == "auto":
        return HAVE_NUMBA
    raise ValueError(f"unknown kernel mode: {knob!r}")


def kernel_backend_name() -> str:
    """``"numba"`` or ``"interpreted"`` — what the kernel path runs as."""
    return "numba" if HAVE_NUMBA else "interpreted"


_FREE = int(CellState.FREE)
_INF = float("inf")

# Loop status codes.
FAILED = 0  #: heap drained without reaching a target
FOUND = 1  #: popped a target; its index is in ``istate[GOAL]``
BUDGET = 2  #: expansions exceeded the request budget
TRIGGER = 3  #: hit the guidance trigger; driver builds the map and resumes
HEAPFULL = 4  #: next expansion could overflow the heap; driver grows it

# ``istate`` slots (int64): mutable loop state that survives re-entry.
HEAP_SIZE = 0
COUNTER = 1  #: pushes so far == the fast path's ``next(counter)`` value
EXPANSIONS = 2
POPS = 3
GOAL = 4
PENDING = 5  #: 1 when a popped node awaits relaxation (TRIGGER resume)
PENDING_IDX = 6
_ISTATE_SLOTS = 7

#: Max heap pushes one expansion can make: 4 in-layer (incl. wrong-way
#: jogs) + 2 vias. The headroom check reserves this many slots.
_MAX_PUSHES_PER_EXPANSION = 6


@njit(cache=True)
def _heap_less(heap, i, j):
    """Strict lexicographic (f, g, tiebreak) order — matches tuple
    comparison on the fast path's ``(f, g, tiebreak, idx)`` entries
    (the unique tiebreak means idx never participates)."""
    if heap[i, 0] != heap[j, 0]:
        return heap[i, 0] < heap[j, 0]
    if heap[i, 1] != heap[j, 1]:
        return heap[i, 1] < heap[j, 1]
    return heap[i, 2] < heap[j, 2]


@njit(cache=True)
def _heap_swap(heap, i, j):
    for k in range(4):
        tmp = heap[i, k]
        heap[i, k] = heap[j, k]
        heap[j, k] = tmp


@njit(cache=True)
def _heap_push(heap, size, f, g, c, idx):
    """Insert ``(f, g, c, idx)``; returns the new size. The caller must
    have verified capacity (``size < heap.shape[0]``)."""
    heap[size, 0] = f
    heap[size, 1] = g
    heap[size, 2] = c
    heap[size, 3] = idx
    i = size
    while i > 0:
        p = (i - 1) >> 1
        if _heap_less(heap, i, p):
            _heap_swap(heap, i, p)
            i = p
        else:
            break
    return size + 1


@njit(cache=True)
def _heap_pop(heap, size, out):
    """Pop the minimum into ``out`` (f, g, idx); returns the new size."""
    out[0] = heap[0, 0]
    out[1] = heap[0, 1]
    out[2] = heap[0, 3]
    size -= 1
    if size > 0:
        for k in range(4):
            heap[0, k] = heap[size, k]
        i = 0
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            smallest = left
            right = left + 1
            if right < size and _heap_less(heap, right, left):
                smallest = right
            if _heap_less(heap, smallest, i):
                _heap_swap(heap, smallest, i)
                i = smallest
            else:
                break
    return size


@njit(cache=True)
def _relax(
    heap,
    istate,
    best_g,
    parent,
    passable,
    cost,
    gd,
    has_gd,
    thr,
    vb,
    idx,
    nidx,
    layer,
    g,
    step_cost,
    nx,
    ny,
    txlo,
    txhi,
    tylo,
    tyhi,
    alpha,
):
    """One neighbour relaxation: passability, g-improvement, corridor
    prune, then push. Every float op mirrors the fast path exactly:
    ``ng = g + step_cost + cost[nidx]`` and
    ``f = ng + alpha * (dx + dy) + vb[...]``, both left-associative."""
    if passable[nidx] == 0:
        return
    ng = g + step_cost + cost[nidx]
    if ng < best_g[nidx]:
        if has_gd == 1 and ng + gd[nidx] > thr:
            return
        best_g[nidx] = ng
        parent[nidx] = idx
        dx = txlo - nx if nx < txlo else (nx - txhi if nx > txhi else 0)
        dy = tylo - ny if ny < tylo else (ny - tyhi if ny > tyhi else 0)
        f = ng + alpha * (dx + dy) + vb[
            layer * 4 + (2 if dx > 0 else 0) + (1 if dy > 0 else 0)
        ]
        c = istate[COUNTER]
        istate[COUNTER] = c + 1
        istate[HEAP_SIZE] = _heap_push(
            heap, istate[HEAP_SIZE], f, ng, float(c), float(nidx)
        )


@njit(cache=True)
def _kernel_loop(
    heap,
    istate,
    fstate,
    best_g,
    parent,
    passable,
    cost,
    is_target,
    gd,
    has_gd,
    thr,
    vb,
    horiz,
    num_layers,
    layer_stride,
    wx,
    wy,
    xlo,
    ylo,
    txlo,
    txhi,
    tylo,
    tyhi,
    alpha,
    beta,
    wrong_way,
    max_expansions,
    trigger,
    scratch,
):
    """The resumable search loop; returns a status code.

    Pop → staleness skip → goal test → corridor prune → expansion count
    → budget → guidance trigger → relax neighbours, in exactly the fast
    path's order. Suspension points (``TRIGGER``/``HEAPFULL``) leave all
    state in the caller-owned arrays; re-entering continues seamlessly
    (a pending popped node is relaxed before the next pop).
    """
    cap = heap.shape[0]
    while True:
        if istate[HEAP_SIZE] + _MAX_PUSHES_PER_EXPANSION > cap:
            return HEAPFULL
        if istate[PENDING] == 1:
            # Resuming after TRIGGER: this node already passed every
            # pre-relaxation check; go straight to its neighbours.
            istate[PENDING] = 0
            idx = istate[PENDING_IDX]
            g = fstate[0]
        else:
            if istate[HEAP_SIZE] == 0:
                return FAILED
            istate[HEAP_SIZE] = _heap_pop(heap, istate[HEAP_SIZE], scratch)
            g = scratch[1]
            idx = int(scratch[2])
            istate[POPS] += 1
            if g > best_g[idx]:
                continue
            if is_target[idx] == 1:
                istate[GOAL] = idx
                return FOUND
            if has_gd == 1 and g + gd[idx] > thr:
                continue
            istate[EXPANSIONS] += 1
            if istate[EXPANSIONS] > max_expansions:
                return BUDGET
            if istate[EXPANSIONS] == trigger:
                istate[PENDING] = 1
                istate[PENDING_IDX] = idx
                fstate[0] = g
                return TRIGGER

        layer = idx // layer_stride
        rem = idx - layer * layer_stride
        lx = rem // wy
        ly = rem - lx * wy
        x = xlo + lx
        y = ylo + ly

        # In-layer steps: preferred direction first, then wrong-way jogs
        # (same relaxation order as the fast path — tiebreaks depend on it).
        if horiz[layer] == 1:
            if lx > 0:
                _relax(heap, istate, best_g, parent, passable, cost, gd,
                       has_gd, thr, vb, idx, idx - wy, layer, g, alpha,
                       x - 1, y, txlo, txhi, tylo, tyhi, alpha)
            if lx + 1 < wx:
                _relax(heap, istate, best_g, parent, passable, cost, gd,
                       has_gd, thr, vb, idx, idx + wy, layer, g, alpha,
                       x + 1, y, txlo, txhi, tylo, tyhi, alpha)
            if wrong_way != 0.0:
                if ly > 0:
                    _relax(heap, istate, best_g, parent, passable, cost, gd,
                           has_gd, thr, vb, idx, idx - 1, layer, g, wrong_way,
                           x, y - 1, txlo, txhi, tylo, tyhi, alpha)
                if ly + 1 < wy:
                    _relax(heap, istate, best_g, parent, passable, cost, gd,
                           has_gd, thr, vb, idx, idx + 1, layer, g, wrong_way,
                           x, y + 1, txlo, txhi, tylo, tyhi, alpha)
        else:
            if ly > 0:
                _relax(heap, istate, best_g, parent, passable, cost, gd,
                       has_gd, thr, vb, idx, idx - 1, layer, g, alpha,
                       x, y - 1, txlo, txhi, tylo, tyhi, alpha)
            if ly + 1 < wy:
                _relax(heap, istate, best_g, parent, passable, cost, gd,
                       has_gd, thr, vb, idx, idx + 1, layer, g, alpha,
                       x, y + 1, txlo, txhi, tylo, tyhi, alpha)
            if wrong_way != 0.0:
                if lx > 0:
                    _relax(heap, istate, best_g, parent, passable, cost, gd,
                           has_gd, thr, vb, idx, idx - wy, layer, g, wrong_way,
                           x - 1, y, txlo, txhi, tylo, tyhi, alpha)
                if lx + 1 < wx:
                    _relax(heap, istate, best_g, parent, passable, cost, gd,
                           has_gd, thr, vb, idx, idx + wy, layer, g, wrong_way,
                           x + 1, y, txlo, txhi, tylo, tyhi, alpha)

        # Via moves (down then up, like the fast path's (layer-1, layer+1)).
        if layer > 0:
            _relax(heap, istate, best_g, parent, passable, cost, gd,
                   has_gd, thr, vb, idx, idx - layer_stride, layer - 1, g,
                   beta, x, y, txlo, txhi, tylo, tyhi, alpha)
        if layer + 1 < num_layers:
            _relax(heap, istate, best_g, parent, passable, cost, gd,
                   has_gd, thr, vb, idx, idx + layer_stride, layer + 1, g,
                   beta, x, y, txlo, txhi, tylo, tyhi, alpha)


def _activate_guidance(
    engine,
    request,
    occ,
    occ_win,
    is_target,
    cost,
    pen_map,
    bounds,
    num_layers,
    wx,
    wy,
    layer_stride,
    net_id,
):
    """Kernel-side mirror of the fast path's ``activate_guidance``.

    Same memo key, same premap consumption, same counter increments and
    the same threshold arithmetic — only the map is kept as a float64
    array instead of being flattened to a Python list. The folded cost
    array already equals the ``carr`` the fast path rebuilds (same
    source grid, same penalty fold order), so the built map is
    bit-identical.
    """
    xlo, xhi, ylo, yhi = bounds
    grid = engine.grid
    params = engine.params
    cache = engine._overlay_cache
    memo = cache is not None and hasattr(cache, "guidance_lookup")
    premaps = engine.guidance_premaps
    dflat = None
    key = None
    if memo or premaps:
        pen_sig = tuple(sorted(pen_map.items())) if pen_map else None
        key = (bounds, bytes(is_target), pen_sig, engine.guidance_backend)
    if memo:
        dflat = cache.guidance_lookup(net_id, key)
        if dflat is not None:
            dflat = np.asarray(dflat, dtype=np.float64)
    if dflat is None and premaps:
        pre = premaps.pop(key, None)
        if pre is not None:
            # A map built on this search's behalf by the batch scheduler:
            # account it as this engine's build so folded counters equal
            # a sequential run's.
            engine.total_guidance_builds += 1
            dflat = np.asarray(pre, dtype=np.float64).ravel()
            if memo:
                cache.guidance_store(net_id, bounds, key, dflat)
    if dflat is None:
        passable_np = (occ_win == _FREE) | (occ_win == net_id)
        tmask = is_target.reshape(num_layers, wx, wy).astype(bool)
        dmap = future_cost_map(
            passable_np,
            cost.reshape(num_layers, wx, wy),
            engine._horizontal,
            params.alpha,
            params.beta,
            params.wrong_way_factor,
            tmask,
            backend=engine.guidance_backend,
        )
        if dmap is None:
            return None, _INF  # degenerate window: stay unguided
        engine.total_guidance_builds += 1
        dflat = dmap.ravel()
        if memo:
            cache.guidance_store(net_id, bounds, key, dflat)
    t = _INF
    for slayer, spt in request.sources:
        if not grid.in_bounds(slayer, spt):
            continue
        if occ[slayer, spt.x, spt.y] not in (_FREE, net_id):
            continue
        sidx = slayer * layer_stride + (spt.x - xlo) * wy + (spt.y - ylo)
        v = cost[sidx] + dflat[sidx]
        if v < t:
            t = v
    engine.total_guided_searches += 1
    return dflat, (prune_threshold(t) if t < _INF else -_INF)


def search_kernel(
    engine, request, extra_margin: int = 0
) -> Optional[Tuple[List[Tuple[int, int, int]], float, int]]:
    """Kernel twin of :meth:`AStarRouter._search_fast`.

    Builds the identical flat window state as numpy arrays, runs the
    compiled loop (re-entering across heap growth and in-place guidance
    activation), and returns ``(nodes, cost, expansions)`` — or ``None``
    with ``engine._last_stats``/``last_outcome`` set the same way the
    fast path sets them. The caller (``AStarRouter._search_kernel``)
    lowers nodes to segments/vias.
    """
    grid = engine.grid
    params = engine.params
    net_id = request.net_id
    occ = grid._occ
    num_layers = occ.shape[0]

    xlo, xhi, ylo, yhi = engine._window(request, extra_margin)
    wx = xhi - xlo + 1
    wy = yhi - ylo + 1
    layer_stride = wx * wy
    n = num_layers * layer_stride

    is_target = np.zeros(n, dtype=np.uint8)
    target_pts = []
    target_layers = []
    for layer, pt in request.targets:
        if grid.in_bounds(layer, pt) and occ[layer, pt.x, pt.y] in (_FREE, net_id):
            is_target[layer * layer_stride + (pt.x - xlo) * wy + (pt.y - ylo)] = 1
            target_pts.append(pt)
            target_layers.append(layer)
    if not target_pts:
        return None

    txlo = min(p.x for p in target_pts)
    txhi = max(p.x for p in target_pts)
    tylo = min(p.y for p in target_pts)
    tyhi = max(p.y for p in target_pts)
    alpha = params.alpha
    beta = params.beta
    wrong_way = alpha * params.wrong_way_factor if params.wrong_way_factor else 0.0
    horizontal = engine._horizontal

    occ_win = occ[:, xlo : xhi + 1, ylo : yhi + 1]
    passable = ((occ_win == _FREE) | (occ_win == net_id)).ravel().astype(np.uint8)

    if engine._overlay_terms is not None:
        own = engine.active_net
        if engine._overlay_cache is not None:
            cost_np = engine._overlay_cache.grid_for(own, (xlo, xhi, ylo, yhi))
        else:
            gamma, delta_tip = engine._overlay_terms
            cost_np = overlay_cost_grid(
                occ, horizontal, (xlo, xhi, ylo, yhi), own, gamma, delta_tip
            )
        # Always copy: the cache owns cost_np, and penalties fold in place.
        cost = np.array(cost_np, dtype=np.float64).ravel()
    else:
        cost = np.zeros(n, dtype=np.float64)

    pen_map = engine._penalty_map
    if pen_map:
        for (pl, px, py), amount in pen_map.items():
            if pl < num_layers and xlo <= px <= xhi and ylo <= py <= yhi:
                cost[pl * layer_stride + (px - xlo) * wy + (py - ylo)] += amount

    # Via lower bound table — the identical Python loop as the fast path
    # (it runs once per search over num_layers * 4 slots; not worth a
    # kernel), then frozen into an array for the loop.
    all_targets_horizontal = all(horizontal[l] for l in target_layers)
    all_targets_vertical = all(not horizontal[l] for l in target_layers)
    vb_list = [0.0] * (num_layers * 4)
    if not wrong_way:
        for layer in range(num_layers):
            for dx_pos in (0, 1):
                for dy_pos in (0, 1):
                    extra = 0
                    if dy_pos:
                        if horizontal[layer]:
                            extra += 1
                        if all_targets_horizontal:
                            extra += 1 if horizontal[layer] else 0
                    if dx_pos:
                        if not horizontal[layer]:
                            extra += 1
                        if all_targets_vertical:
                            extra += 1 if not horizontal[layer] else 0
                    vb_list[layer * 4 + dx_pos * 2 + dy_pos] = beta * extra
    vb = np.asarray(vb_list, dtype=np.float64)
    horiz = np.asarray(horizontal, dtype=np.uint8)

    best_g = np.full(n, _INF, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    cap = 1024
    heap = np.empty((cap, 4), dtype=np.float64)
    istate = np.zeros(_ISTATE_SLOTS, dtype=np.int64)
    istate[GOAL] = -1
    fstate = np.zeros(1, dtype=np.float64)
    scratch = np.empty(3, dtype=np.float64)

    counter = 0
    for layer, pt in request.sources:
        if not grid.in_bounds(layer, pt):
            continue
        if occ[layer, pt.x, pt.y] not in (_FREE, net_id):
            continue
        idx = layer * layer_stride + (pt.x - xlo) * wy + (pt.y - ylo)
        g = cost[idx]
        if g < best_g[idx]:
            best_g[idx] = g
            dx = txlo - pt.x if pt.x < txlo else (pt.x - txhi if pt.x > txhi else 0)
            dy = tylo - pt.y if pt.y < tylo else (pt.y - tyhi if pt.y > tyhi else 0)
            f = g + alpha * (dx + dy) + vb[layer * 4 + (dx > 0) * 2 + (dy > 0)]
            if istate[HEAP_SIZE] >= cap:
                cap *= 2
                grown = np.empty((cap, 4), dtype=np.float64)
                grown[: istate[HEAP_SIZE]] = heap[: istate[HEAP_SIZE]]
                heap = grown
            istate[HEAP_SIZE] = _heap_push(
                heap, int(istate[HEAP_SIZE]), float(f), float(g),
                float(counter), float(idx)
            )
            counter += 1
    istate[COUNTER] = counter
    if istate[HEAP_SIZE] == 0:
        return None

    # Guidance trigger resolution — identical to the fast path.
    gmode = engine.guidance
    if gmode == "on":
        trigger = 0
    elif gmode == "auto":
        if num_layers * wx * wy < engine.guidance_min_cells:
            trigger = -1
        else:
            trigger = engine.guidance_trigger
    else:
        trigger = -1

    gd = np.empty(0, dtype=np.float64)
    has_gd = 0
    thr = _INF
    bounds = (xlo, xhi, ylo, yhi)

    def activate():
        return _activate_guidance(
            engine, request, occ, occ_win, is_target, cost, pen_map,
            bounds, num_layers, wx, wy, layer_stride, net_id,
        )

    if trigger == 0:
        built, thr = activate()
        if built is not None:
            gd = built
            has_gd = 1
        trigger = -1

    max_expansions = request.max_expansions
    while True:
        status = _kernel_loop(
            heap, istate, fstate, best_g, parent, passable, cost, is_target,
            gd, has_gd, thr, vb, horiz, num_layers, layer_stride, wx, wy,
            xlo, ylo, txlo, txhi, tylo, tyhi, alpha, beta, wrong_way,
            max_expansions, trigger, scratch,
        )
        if status == HEAPFULL:
            cap = heap.shape[0] * 2
            grown = np.empty((cap, 4), dtype=np.float64)
            grown[: istate[HEAP_SIZE]] = heap[: istate[HEAP_SIZE]]
            heap = grown
            continue
        if status == TRIGGER:
            built, thr = activate()
            if built is not None:
                gd = built
                has_gd = 1
            trigger = -1
            continue
        break

    expansions = int(istate[EXPANSIONS])
    pushes = int(istate[COUNTER])
    pops = int(istate[POPS])
    if status == BUDGET:
        engine._last_stats = (expansions, pushes, pops)
        engine.last_outcome = "budget_exhausted"
        return None
    engine._last_stats = (expansions, pushes, pops)
    if status != FOUND:
        return None
    goal = int(istate[GOAL])
    nodes: List[Tuple[int, int, int]] = []
    cur = goal
    while cur >= 0:
        layer = cur // layer_stride
        rem = cur - layer * layer_stride
        lx = rem // wy
        nodes.append((layer, xlo + lx, ylo + rem - lx * wy))
        cur = int(parent[cur])
    nodes.reverse()
    return nodes, float(best_g[goal]), expansions

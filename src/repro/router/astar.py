"""Overlay-aware A* search on the multi-layer grid.

The search space is (layer, x, y). Within a layer, moves follow the
layer's preferred direction only (SADP lines are unidirectional); direction
changes go through vias. Sources and targets may have several candidate
locations (the multi-pin-candidate benchmarks), so the search is
multi-source / multi-target.

The per-cell cost implements Eq. (5): wirelength, via count, the type 2-b
penalty, plus transient rip-up penalties injected by the outer loop.

Performance notes — this loop dominates the router's runtime, so it has
two implementations that are *exactly* path- and cost-equivalent:

* the **fast path** (:meth:`AStarRouter._search_fast`, the default) maps
  every window cell to a flat integer index and keeps g-scores, parents,
  passability, targets and the per-cell cost in flat arrays. Heap entries
  are 4-tuples ``(f, g, tiebreak, idx)``; the inner loop does list reads
  instead of tuple hashing, dict probes and numpy scalar indexing. The
  Eq. (5) overlay grid is served by an :class:`OverlayCostCache` when one
  is attached, and the sparse rip-up ``penalty_map`` is folded into the
  flat cost array once per search;
* the **reference path** (:meth:`AStarRouter._search_reference`) is the
  original dict-based implementation. It is kept as the executable
  specification — the equivalence tests assert both produce identical
  node sequences and costs — and is selected automatically whenever the
  generic per-cell callbacks (``overlay_cost`` / ``penalty``) are in use,
  or explicitly via ``use_reference=True``.

The fast path optionally prunes its open list against an exact
future-cost map (:mod:`repro.router.guidance`, the ``guidance`` knob):
off-corridor heap entries are discarded without changing the surviving
search, so results stay bit-identical to the unguided fast path while
large searches expand a fraction of the window.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import RoutingError
from ..geometry import Point, Segment, points_to_segments
from ..grid import CellState, Direction, RoutingGrid, Via
from .cost import CostParams
from .guidance import (
    AUTO_TRIGGER_EXPANSIONS,
    GUIDANCE_MIN_CELLS,
    future_cost_map,
    prune_threshold,
)
from .kernel import resolve_kernel, search_kernel
from .overlay_cache import OverlayCostCache, overlay_cost_grid

#: A search-space node: (layer, x, y).
Node = Tuple[int, int, int]

#: A window over the grid plane: (xlo, xhi, ylo, yhi), inclusive.
Bounds = Tuple[int, int, int, int]

_FREE = int(CellState.FREE)


def search_window(
    pts: Sequence[Point], margin: int, width: int, height: int
) -> Bounds:
    """The A* window for a point set: bbox + margin, clipped to the die.

    Single source of truth shared by :meth:`AStarRouter._window` and the
    parallel batch scheduler — the worker-side window-parity guard relies
    on both sides computing windows with exactly this function.
    """
    xlo = max(0, min(p.x for p in pts) - margin)
    xhi = min(width - 1, max(p.x for p in pts) + margin)
    ylo = max(0, min(p.y for p in pts) - margin)
    yhi = min(height - 1, max(p.y for p in pts) + margin)
    return xlo, xhi, ylo, yhi


@dataclass
class SearchRequest:
    """One routing query: where a net may start and where it must end."""

    net_id: int
    sources: Sequence[Tuple[int, Point]]  # (layer, point) candidates
    targets: Sequence[Tuple[int, Point]]
    max_expansions: int = 400_000

    def __post_init__(self) -> None:
        if not self.sources or not self.targets:
            raise RoutingError("search needs at least one source and one target")


@dataclass
class SearchResult:
    """A found path, lowered to segments and vias."""

    nodes: List[Node]
    segments: List[Segment]
    vias: List[Via]
    cost: float
    expansions: int

    @property
    def wirelength(self) -> int:
        return sum(seg.length for seg in self.segments)

    @property
    def via_count(self) -> int:
        return len(self.vias)


class AStarRouter:
    """The inner search engine; stateless apart from grid references.

    Cost hooks, in order of preference:

    * ``penalty_map`` — a ``{(layer, x, y): cost}`` dict folded into the
      flat cost array once per search (the rip-up penalties; cheap);
    * ``overlay_terms=(gamma, delta_tip)`` — enables the Eq. (5)
      overlay grid against ``active_net`` (set per routed net);
    * ``overlay_cache`` — an :class:`OverlayCostCache` serving the
      Eq. (5) grid from memo instead of recomputing it per search;
    * ``overlay_cost`` / ``penalty`` — optional generic per-cell
      callbacks. These route the search through the reference
      implementation (slower; used by tests and experiments).

    After every :meth:`search`, :attr:`last_outcome` reports ``"found"``,
    ``"failed"`` (exhausted the window — the target is unreachable), or
    ``"budget_exhausted"`` (hit ``max_expansions`` — the search ran out
    of budget, *not* of reachable cells). The rip-up loop uses the
    distinction to widen window/budget rather than penalise cells.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        params: CostParams,
        overlay_cost: Optional[Callable[[int, Point], float]] = None,
        penalty: Optional[Callable[[int, Point], float]] = None,
        penalty_map: Optional[Dict[Tuple[int, int, int], float]] = None,
        overlay_terms: Optional[Tuple[float, float]] = None,
        overlay_cache: Optional[OverlayCostCache] = None,
        use_reference: bool = False,
        guidance: str = "off",
        kernel: str = "python",
    ) -> None:
        self.grid = grid
        self.params = params
        self._overlay_cb = overlay_cost
        self._penalty_cb = penalty
        self._penalty_map = penalty_map
        self._overlay_terms = overlay_terms
        self._overlay_cache = overlay_cache
        #: Force the dict-based reference implementation.
        self.use_reference = use_reference
        #: Which fast-path implementation runs the inner loop:
        #: ``"python"`` (the list-based loop below), ``"numba"`` (the
        #: compiled kernel in :mod:`repro.router.kernel`, interpreted
        #: when numba is absent), or ``"auto"`` (kernel iff numba is
        #: importable). All three are bit-identical; the reference path
        #: still wins whenever it is selected.
        self.kernel = kernel
        self._kernel_enabled = resolve_kernel(kernel)
        #: Future-cost corridor pruning: ``"off"``, ``"on"`` (map built
        #: up front for every fast search), or ``"auto"`` (a search is
        #: upgraded in place once it crosses ``guidance_trigger``
        #: unguided expansions — small searches never pay for a map).
        #: The reference path ignores this and stays the oracle.
        self.guidance = guidance
        self.guidance_trigger = AUTO_TRIGGER_EXPANSIONS
        #: ``"auto"`` never builds a map for windows below this many
        #: cells — the unguided flood over such a window is cheaper than
        #: the build. ``"on"`` ignores it (explicit opt-in).
        self.guidance_min_cells = GUIDANCE_MIN_CELLS
        self.guidance_backend = "auto"
        #: Guidance maps built ahead of time on this engine's behalf
        #: (the parallel batch scheduler's batched CSR solves), keyed by
        #: the same memo key ``activate_guidance`` computes. Consumed
        #: (popped) on activation and accounted as this engine's builds.
        self.guidance_premaps: Optional[Dict] = None
        #: Net whose own cells are exempt from the inlined overlay probe.
        self.active_net = -1
        #: Outcome of the most recent search (see class docstring).
        self.last_outcome = "failed"
        #: Cumulative counters, always on (plain int adds per search) so
        #: the perf bench can report expansions/sec with observability off.
        self.total_searches = 0
        self.total_expansions = 0
        #: Searches that activated a guidance map / maps actually built
        #: (memo hits count as guided but not as builds).
        self.total_guided_searches = 0
        self.total_guidance_builds = 0
        self._last_stats = (0, 0, 0)
        # Layer directions are immutable for a grid's lifetime — hoisted
        # out of the per-search setup.
        self._horizontal = [
            grid.layer_direction(l) is Direction.HORIZONTAL
            for l in range(grid.num_layers)
        ]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def search(
        self, request: SearchRequest, extra_margin: int = 0
    ) -> Optional[SearchResult]:
        """Run A*; None when no path exists within the window/budget.

        With observability enabled the search runs inside an
        ``astar_search`` span and publishes expansion/heap counters;
        disabled, the only extra work is this predicate.
        """
        ob = obs.get_active()
        if ob is None:
            return self._search(request, extra_margin)
        with ob.tracer.span(
            "astar_search", net_id=request.net_id, margin=extra_margin
        ) as sp:
            result = self._search(request, extra_margin)
        expansions, pushes, pops = self._last_stats
        sp.attrs["expansions"] = expansions
        sp.attrs["found"] = result is not None
        reg = ob.registry
        reg.counter("astar_searches_total", outcome=self.last_outcome).inc()
        reg.counter("astar_nodes_expanded_total").inc(expansions)
        reg.counter("astar_heap_pushes_total").inc(pushes)
        reg.counter("astar_heap_pops_total").inc(pops)
        return result

    def _search(
        self, request: SearchRequest, extra_margin: int = 0
    ) -> Optional[SearchResult]:
        self._last_stats = (0, 0, 0)
        self.last_outcome = "failed"
        if (
            self.use_reference
            or self._overlay_cb is not None
            or self._penalty_cb is not None
        ):
            result = self._search_reference(request, extra_margin)
        elif self._kernel_enabled:
            result = self._search_kernel(request, extra_margin)
        else:
            result = self._search_fast(request, extra_margin)
        self.total_searches += 1
        self.total_expansions += self._last_stats[0]
        if result is not None:
            self.last_outcome = "found"
        return result

    # ------------------------------------------------------------------ #
    # Kernel path: the compiled twin of the fast path
    # ------------------------------------------------------------------ #

    def _search_kernel(
        self, request: SearchRequest, extra_margin: int = 0
    ) -> Optional[SearchResult]:
        """Run the search through :mod:`repro.router.kernel`.

        The kernel returns the raw ``(nodes, cost, expansions)`` triple
        (or ``None``, with ``_last_stats``/``last_outcome`` already set
        exactly as :meth:`_search_fast` sets them); lowering to
        segments/vias stays here.
        """
        out = search_kernel(self, request, extra_margin)
        if out is None:
            return None
        nodes, cost, expansions = out
        segments, vias = self._lower(nodes)
        return SearchResult(
            nodes=nodes,
            segments=segments,
            vias=vias,
            cost=cost,
            expansions=expansions,
        )

    # ------------------------------------------------------------------ #
    # Fast path: flat-index search state
    # ------------------------------------------------------------------ #

    def _search_fast(
        self, request: SearchRequest, extra_margin: int = 0
    ) -> Optional[SearchResult]:
        grid = self.grid
        params = self.params
        net_id = request.net_id
        occ = grid._occ  # hot path: direct array access
        num_layers = occ.shape[0]

        xlo, xhi, ylo, yhi = self._window(request, extra_margin)
        wx = xhi - xlo + 1
        wy = yhi - ylo + 1
        layer_stride = wx * wy
        n = num_layers * layer_stride

        is_target = bytearray(n)
        target_pts: List[Point] = []
        target_layers: List[int] = []
        for layer, pt in request.targets:
            if grid.in_bounds(layer, pt) and occ[layer, pt.x, pt.y] in (_FREE, net_id):
                is_target[layer * layer_stride + (pt.x - xlo) * wy + (pt.y - ylo)] = 1
                target_pts.append(pt)
                target_layers.append(layer)
        if not target_pts:
            return None

        txlo = min(p.x for p in target_pts)
        txhi = max(p.x for p in target_pts)
        tylo = min(p.y for p in target_pts)
        tyhi = max(p.y for p in target_pts)
        alpha = params.alpha
        beta = params.beta
        wrong_way = alpha * params.wrong_way_factor if params.wrong_way_factor else 0.0
        horizontal = self._horizontal

        # Window-local flat state: passability, per-cell extra cost,
        # g-scores and parent links, all indexed by
        # layer * layer_stride + (x - xlo) * wy + (y - ylo).
        occ_win = occ[:, xlo : xhi + 1, ylo : yhi + 1]
        passable = ((occ_win == _FREE) | (occ_win == net_id)).ravel().tolist()

        if self._overlay_terms is not None:
            own = self.active_net
            if self._overlay_cache is not None:
                cost_np = self._overlay_cache.grid_for(own, (xlo, xhi, ylo, yhi))
            else:
                gamma, delta_tip = self._overlay_terms
                cost_np = overlay_cost_grid(
                    occ, horizontal, (xlo, xhi, ylo, yhi), own, gamma, delta_tip
                )
            cost = cost_np.ravel().tolist()
        else:
            cost_np = None
            cost = [0.0] * n

        # Fold the sparse rip-up penalties in once, so the inner loop is
        # a single list read per neighbour.
        pen_map = self._penalty_map
        if pen_map:
            for (pl, px, py), amount in pen_map.items():
                if pl < num_layers and xlo <= px <= xhi and ylo <= py <= yhi:
                    cost[pl * layer_stride + (px - xlo) * wy + (py - ylo)] += amount

        # Admissible via lower bound for the heuristic: moving across a
        # layer's preferred direction requires reaching a layer of the
        # other orientation (and possibly coming back for the target).
        # It depends only on (layer, dx > 0, dy > 0) — tabulated.
        all_targets_horizontal = all(horizontal[l] for l in target_layers)
        all_targets_vertical = all(not horizontal[l] for l in target_layers)
        vb = [0.0] * (num_layers * 4)
        if not wrong_way:
            # Wrong-way jogs cross directions without vias; the via lower
            # bound would overestimate and break admissibility.
            for layer in range(num_layers):
                for dx_pos in (0, 1):
                    for dy_pos in (0, 1):
                        extra = 0
                        if dy_pos:
                            if horizontal[layer]:
                                extra += 1
                            if all_targets_horizontal:
                                extra += 1 if horizontal[layer] else 0
                        if dx_pos:
                            if not horizontal[layer]:
                                extra += 1
                            if all_targets_vertical:
                                extra += 1 if not horizontal[layer] else 0
                        vb[layer * 4 + dx_pos * 2 + dy_pos] = beta * extra

        counter = itertools.count()
        inf = float("inf")
        best_g = [inf] * n
        parent = [-1] * n
        open_heap: List[Tuple[float, float, int, int]] = []

        for layer, pt in request.sources:
            if not grid.in_bounds(layer, pt):
                continue
            if occ[layer, pt.x, pt.y] not in (_FREE, net_id):
                continue
            idx = layer * layer_stride + (pt.x - xlo) * wy + (pt.y - ylo)
            g = cost[idx]
            if g < best_g[idx]:
                best_g[idx] = g
                dx = txlo - pt.x if pt.x < txlo else (pt.x - txhi if pt.x > txhi else 0)
                dy = tylo - pt.y if pt.y < tylo else (pt.y - tyhi if pt.y > tyhi else 0)
                heapq.heappush(
                    open_heap,
                    (
                        g + alpha * (dx + dy) + vb[layer * 4 + (dx > 0) * 2 + (dy > 0)],
                        g,
                        next(counter),
                        idx,
                    ),
                )
        if not open_heap:
            return None

        # --- Future-cost corridor guidance (repro.router.guidance) ---- #
        # ``gd`` is the flat exact cost-to-go map, ``thr`` the corridor
        # bound T + eps with T = min_src(cost[src] + d(src)) = C*. An
        # entry with g + d > thr can never lie on the path A* returns,
        # and (d being consistent) everything it could ever relax is
        # itself prunable — dropping such entries leaves the surviving
        # search bit-identical, paths and costs included. thr = -inf
        # encodes "no target reachable from any source": every entry
        # prunes and the search fails immediately with the same
        # ``"failed"`` outcome the exhausted unguided search reaches.
        gmode = self.guidance
        gd = None
        thr = inf
        if gmode == "on":
            trigger = 0
        elif gmode == "auto":
            # Upgrade mid-search once the expansion count proves the
            # search is not trivially small; nothing before the trigger
            # differs from an unguided run, so the switch is seamless.
            # Windows too small to amortize a map build never upgrade —
            # even a fully flooded small window costs less than the solve.
            if num_layers * wx * wy < self.guidance_min_cells:
                trigger = -1
            else:
                trigger = self.guidance_trigger
        else:
            trigger = -1

        def activate_guidance():
            passable_np = (occ_win == _FREE) | (occ_win == net_id)
            tmask = (
                np.frombuffer(bytes(is_target), dtype=np.uint8)
                .reshape(num_layers, wx, wy)
                .astype(bool)
            )
            bounds = (xlo, xhi, ylo, yhi)
            cache = self._overlay_cache
            memo = cache is not None and hasattr(cache, "guidance_lookup")
            premaps = self.guidance_premaps
            dflat = None
            key = None
            if memo or premaps:
                pen_sig = tuple(sorted(pen_map.items())) if pen_map else None
                key = (bounds, bytes(is_target), pen_sig, self.guidance_backend)
            if memo:
                dflat = cache.guidance_lookup(net_id, key)
            if dflat is None and premaps:
                pre = premaps.pop(key, None)
                if pre is not None:
                    # A map the batch scheduler built ahead of time on
                    # this search's behalf: account it as this engine's
                    # build so folded counters equal a sequential run's.
                    self.total_guidance_builds += 1
                    dflat = pre.ravel().tolist()
                    if memo:
                        cache.guidance_store(net_id, bounds, key, dflat)
            if dflat is None:
                # Fold the same per-cell extras the search pays (overlay
                # grid + rip-up penalties) with identical float ops, so
                # the map is exact for the costs the heap accumulates.
                if cost_np is not None:
                    carr = np.array(cost_np, dtype=np.float64)
                else:
                    carr = np.zeros((num_layers, wx, wy), dtype=np.float64)
                if pen_map:
                    for (pl, px, py), amount in pen_map.items():
                        if pl < num_layers and xlo <= px <= xhi and ylo <= py <= yhi:
                            carr[pl, px - xlo, py - ylo] += amount
                dmap = future_cost_map(
                    passable_np,
                    carr,
                    horizontal,
                    alpha,
                    beta,
                    params.wrong_way_factor,
                    tmask,
                    backend=self.guidance_backend,
                )
                if dmap is None:
                    return None, inf  # degenerate window: stay unguided
                self.total_guidance_builds += 1
                # Flatten to a Python list: the prune checks do one
                # scalar read per relaxation, and list indexing is ~3x
                # cheaper than numpy scalar indexing from the loop.
                dflat = dmap.ravel().tolist()
                if memo:
                    cache.guidance_store(net_id, bounds, key, dflat)
            t = inf
            for slayer, spt in request.sources:
                if not grid.in_bounds(slayer, spt):
                    continue
                if occ[slayer, spt.x, spt.y] not in (_FREE, net_id):
                    continue
                sidx = slayer * layer_stride + (spt.x - xlo) * wy + (spt.y - ylo)
                v = cost[sidx] + dflat[sidx]
                if v < t:
                    t = v
            self.total_guided_searches += 1
            return dflat, (prune_threshold(t) if t < inf else -inf)

        if trigger == 0:
            gd, thr = activate_guidance()
            trigger = -1

        expansions = 0
        pops = 0
        goal = -1
        push = heapq.heappush
        pop = heapq.heappop
        max_expansions = request.max_expansions
        while open_heap:
            f, g, _, idx = pop(open_heap)
            pops += 1
            if g > best_g[idx]:
                continue
            if is_target[idx]:
                goal = idx
                break
            if gd is not None and g + gd[idx] > thr:
                # Off-corridor: cannot be on the returned path, and
                # everything it would relax is off-corridor too.
                continue
            expansions += 1
            if expansions > max_expansions:
                self._last_stats = (expansions, next(counter), pops)
                self.last_outcome = "budget_exhausted"
                return None
            if expansions == trigger:
                gd, thr = activate_guidance()

            layer = idx // layer_stride
            rem = idx - layer * layer_stride
            lx = rem // wy
            ly = rem - lx * wy
            x = xlo + lx
            y = ylo + ly

            # In-layer steps: the preferred direction at cost alpha, and —
            # when enabled — wrong-way jogs at alpha * wrong_way_factor.
            if horizontal[layer]:
                steps = ((lx - 1, ly, -wy, alpha), (lx + 1, ly, wy, alpha))
                if wrong_way:
                    steps += ((lx, ly - 1, -1, wrong_way), (lx, ly + 1, 1, wrong_way))
            else:
                steps = ((lx, ly - 1, -1, alpha), (lx, ly + 1, 1, alpha))
                if wrong_way:
                    steps += ((lx - 1, ly, -wy, wrong_way), (lx + 1, ly, wy, wrong_way))
            for nlx, nly, didx, step_cost in steps:
                if not (0 <= nlx < wx and 0 <= nly < wy):
                    continue
                nidx = idx + didx
                if not passable[nidx]:
                    continue
                ng = g + step_cost + cost[nidx]
                if ng < best_g[nidx]:
                    if gd is not None and ng + gd[nidx] > thr:
                        continue
                    best_g[nidx] = ng
                    parent[nidx] = idx
                    nx = xlo + nlx
                    ny = ylo + nly
                    dx = txlo - nx if nx < txlo else (nx - txhi if nx > txhi else 0)
                    dy = tylo - ny if ny < tylo else (ny - tyhi if ny > tyhi else 0)
                    push(
                        open_heap,
                        (
                            ng
                            + alpha * (dx + dy)
                            + vb[layer * 4 + (dx > 0) * 2 + (dy > 0)],
                            ng,
                            next(counter),
                            nidx,
                        ),
                    )

            # Via moves.
            dx = txlo - x if x < txlo else (x - txhi if x > txhi else 0)
            dy = tylo - y if y < tylo else (y - tyhi if y > tyhi else 0)
            for nl in (layer - 1, layer + 1):
                if not 0 <= nl < num_layers:
                    continue
                nidx = idx + (nl - layer) * layer_stride
                if not passable[nidx]:
                    continue
                ng = g + beta + cost[nidx]
                if ng < best_g[nidx]:
                    if gd is not None and ng + gd[nidx] > thr:
                        continue
                    best_g[nidx] = ng
                    parent[nidx] = idx
                    push(
                        open_heap,
                        (
                            ng
                            + alpha * (dx + dy)
                            + vb[nl * 4 + (dx > 0) * 2 + (dy > 0)],
                            ng,
                            next(counter),
                            nidx,
                        ),
                    )

        self._last_stats = (expansions, next(counter), pops)
        if goal < 0:
            return None
        nodes: List[Node] = []
        cur = goal
        while cur >= 0:
            layer = cur // layer_stride
            rem = cur - layer * layer_stride
            lx = rem // wy
            nodes.append((layer, xlo + lx, ylo + rem - lx * wy))
            cur = parent[cur]
        nodes.reverse()
        segments, vias = self._lower(nodes)
        return SearchResult(
            nodes=nodes,
            segments=segments,
            vias=vias,
            cost=best_g[goal],
            expansions=expansions,
        )

    # ------------------------------------------------------------------ #
    # Reference path: the executable specification
    # ------------------------------------------------------------------ #

    def _search_reference(
        self, request: SearchRequest, extra_margin: int = 0
    ) -> Optional[SearchResult]:
        grid = self.grid
        params = self.params
        net_id = request.net_id
        occ = grid._occ
        num_layers = occ.shape[0]

        xlo, xhi, ylo, yhi = self._window(request, extra_margin)
        targets = set()
        target_pts: List[Point] = []
        for layer, pt in request.targets:
            if grid.in_bounds(layer, pt) and occ[layer, pt.x, pt.y] in (_FREE, net_id):
                targets.add((layer, pt.x, pt.y))
                target_pts.append(pt)
        if not targets:
            return None

        txlo = min(p.x for p in target_pts)
        txhi = max(p.x for p in target_pts)
        tylo = min(p.y for p in target_pts)
        tyhi = max(p.y for p in target_pts)
        alpha = params.alpha
        beta = params.beta
        wrong_way = alpha * params.wrong_way_factor if params.wrong_way_factor else 0.0
        use_inline = self._overlay_terms is not None
        pen_map = self._penalty_map
        overlay_cb = self._overlay_cb
        penalty_cb = self._penalty_cb
        horizontal = self._horizontal

        # Precompute the Eq. (5) overlay term over the window: occupancy
        # is frozen during one net's search, so the 2-b / tip-abutment
        # probes vectorise into a few numpy shifts. The reference path
        # always recomputes from scratch — it is the ground truth the
        # cached fast path is checked against.
        cost_grid = None
        if use_inline:
            cost_grid = self._overlay_cost_grid(
                occ, horizontal, (xlo, xhi, ylo, yhi), self.active_net
            )

        have_pen = pen_map is not None
        have_cbs = overlay_cb is not None or penalty_cb is not None

        def cell_cost(layer: int, x: int, y: int) -> float:
            cost = 0.0
            if have_pen and pen_map:
                cost += pen_map.get((layer, x, y), 0.0)
            if cost_grid is not None:
                cost += cost_grid[layer, x - xlo, y - ylo]
            if have_cbs:
                if overlay_cb is not None:
                    cost += overlay_cb(layer, Point(x, y))
                if penalty_cb is not None:
                    cost += penalty_cb(layer, Point(x, y))
            return cost

        # Admissible via lower bound for the heuristic: moving across a
        # layer's preferred direction requires reaching a layer of the
        # other orientation (and possibly coming back for the target).
        all_targets_horizontal = all(horizontal[l] for l, _, _ in targets)
        all_targets_vertical = all(not horizontal[l] for l, _, _ in targets)

        def via_bound(layer: int, dx: int, dy: int) -> float:
            if wrong_way:
                # Wrong-way jogs cross directions without vias; the via
                # lower bound would overestimate and break admissibility.
                return 0.0
            extra = 0
            if dy > 0:
                if horizontal[layer]:
                    extra += 1
                if all_targets_horizontal:
                    extra += 1 if horizontal[layer] else 0
            if dx > 0:
                if not horizontal[layer]:
                    extra += 1
                if all_targets_vertical:
                    extra += 1 if not horizontal[layer] else 0
            return beta * extra

        counter = itertools.count()
        best_g: Dict[Node, float] = {}
        parent: Dict[Node, Optional[Node]] = {}
        open_heap: List[Tuple[float, float, int, int, int, int]] = []

        for layer, pt in request.sources:
            if not grid.in_bounds(layer, pt):
                continue
            if occ[layer, pt.x, pt.y] not in (_FREE, net_id):
                continue
            node = (layer, pt.x, pt.y)
            g = cell_cost(layer, pt.x, pt.y)
            if node not in best_g or g < best_g[node]:
                best_g[node] = g
                parent[node] = None
                dx = txlo - pt.x if pt.x < txlo else (pt.x - txhi if pt.x > txhi else 0)
                dy = tylo - pt.y if pt.y < tylo else (pt.y - tyhi if pt.y > tyhi else 0)
                heapq.heappush(
                    open_heap,
                    (
                        g + alpha * (dx + dy) + via_bound(layer, dx, dy),
                        g,
                        next(counter),
                        layer,
                        pt.x,
                        pt.y,
                    ),
                )
        if not open_heap:
            return None

        expansions = 0
        pops = 0
        goal: Optional[Node] = None
        push = heapq.heappush
        pop = heapq.heappop
        inf = float("inf")
        while open_heap:
            f, g, _, layer, x, y = pop(open_heap)
            pops += 1
            node = (layer, x, y)
            if g > best_g.get(node, inf):
                continue
            if node in targets:
                goal = node
                break
            expansions += 1
            if expansions > request.max_expansions:
                self._last_stats = (expansions, next(counter), pops)
                self.last_outcome = "budget_exhausted"
                return None

            # In-layer steps: the preferred direction at cost alpha, and —
            # when enabled — wrong-way jogs at alpha * wrong_way_factor.
            if horizontal[layer]:
                steps = ((x - 1, y, alpha), (x + 1, y, alpha))
                if wrong_way:
                    steps += ((x, y - 1, wrong_way), (x, y + 1, wrong_way))
            else:
                steps = ((x, y - 1, alpha), (x, y + 1, alpha))
                if wrong_way:
                    steps += ((x - 1, y, wrong_way), (x + 1, y, wrong_way))
            for nx, ny, step_cost in steps:
                if not (xlo <= nx <= xhi and ylo <= ny <= yhi):
                    continue
                owner = occ[layer, nx, ny]
                if owner != _FREE and owner != net_id:
                    continue
                ng = g + step_cost + cell_cost(layer, nx, ny)
                nxt = (layer, nx, ny)
                if ng < best_g.get(nxt, inf):
                    best_g[nxt] = ng
                    parent[nxt] = node
                    dx = txlo - nx if nx < txlo else (nx - txhi if nx > txhi else 0)
                    dy = tylo - ny if ny < tylo else (ny - tyhi if ny > tyhi else 0)
                    push(
                        open_heap,
                        (
                            ng + alpha * (dx + dy) + via_bound(layer, dx, dy),
                            ng,
                            next(counter),
                            layer,
                            nx,
                            ny,
                        ),
                    )

            # Via moves.
            for nl in (layer - 1, layer + 1):
                if not 0 <= nl < num_layers:
                    continue
                owner = occ[nl, x, y]
                if owner != _FREE and owner != net_id:
                    continue
                ng = g + beta + cell_cost(nl, x, y)
                nxt = (nl, x, y)
                if ng < best_g.get(nxt, inf):
                    best_g[nxt] = ng
                    parent[nxt] = node
                    dx = txlo - x if x < txlo else (x - txhi if x > txhi else 0)
                    dy = tylo - y if y < tylo else (y - tyhi if y > tyhi else 0)
                    push(
                        open_heap,
                        (
                            ng + alpha * (dx + dy) + via_bound(nl, dx, dy),
                            ng,
                            next(counter),
                            nl,
                            x,
                            y,
                        ),
                    )

        self._last_stats = (expansions, next(counter), pops)
        if goal is None:
            return None
        nodes = self._backtrace(parent, goal)
        segments, vias = self._lower(nodes)
        return SearchResult(
            nodes=nodes,
            segments=segments,
            vias=vias,
            cost=best_g[goal],
            expansions=expansions,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _overlay_cost_grid(self, occ, horizontal, bounds, own: int):
        """Vectorised Eq. (5) overlay term over the search window.

        Thin wrapper over :func:`repro.router.overlay_cache.overlay_cost_grid`
        (kept as a method for the tests and experiments that call it).
        """
        gamma, delta_tip = self._overlay_terms
        return overlay_cost_grid(occ, horizontal, bounds, own, gamma, delta_tip)

    def _window(
        self, request: SearchRequest, extra_margin: int
    ) -> Tuple[int, int, int, int]:
        pts = [pt for _, pt in request.sources] + [pt for _, pt in request.targets]
        return search_window(
            pts,
            self.params.search_margin + extra_margin,
            self.grid.width,
            self.grid.height,
        )

    @staticmethod
    def _backtrace(parent: Dict[Node, Optional[Node]], goal: Node) -> List[Node]:
        nodes = [goal]
        while parent[nodes[-1]] is not None:
            nodes.append(parent[nodes[-1]])  # type: ignore[arg-type]
        nodes.reverse()
        return nodes

    @staticmethod
    def _lower(nodes: List[Node]) -> Tuple[List[Segment], List[Via]]:
        """Convert a node path into per-layer segments plus vias."""
        segments: List[Segment] = []
        vias: List[Via] = []
        run: List[Point] = []
        run_layer = nodes[0][0]
        for layer, x, y in nodes:
            pt = Point(x, y)
            if layer != run_layer:
                if run:
                    segments.extend(points_to_segments(run_layer, run))
                vias.append(Via(lower=min(layer, run_layer), at=pt))
                run = [pt]
                run_layer = layer
            else:
                run.append(pt)
        if run:
            segments.extend(points_to_segments(run_layer, run))
        return segments, vias


# ---------------------------------------------------------------------- #
# Steiner extension (shared by the router and the parallel workers)
# ---------------------------------------------------------------------- #


def extend_with_taps(
    search: Callable[[SearchRequest], Optional[SearchResult]],
    net_id: int,
    tap_groups: Sequence[Tuple[int, Sequence[Point]]],
    trunk: SearchResult,
) -> Optional[SearchResult]:
    """Sequential Steiner extension: attach each tap to the grown tree.

    Every tap search treats all cells of the tree built so far as sources,
    so branches start wherever is cheapest. ``search`` is the caller's
    search primitive — the router closes over its engine and rip-up
    margin, the parallel worker over its window-guarded snapshot engine —
    so both sides share one tree-growing loop and cannot drift apart.
    Returns the combined result, or None when any tap is unreachable.
    """
    nodes = list(trunk.nodes)
    node_set = set(nodes)
    segments = list(trunk.segments)
    vias = list(trunk.vias)
    cost = trunk.cost
    expansions = trunk.expansions
    for layer, candidates in tap_groups:
        request = SearchRequest(
            net_id=net_id,
            sources=[(node_layer, Point(x, y)) for node_layer, x, y in nodes],
            targets=[(layer, p) for p in candidates],
        )
        sub = search(request)
        if sub is None:
            return None
        for node in sub.nodes:
            if node not in node_set:
                node_set.add(node)
                nodes.append(node)
        segments.extend(sub.segments)
        vias.extend(v for v in sub.vias if v not in vias)
        cost += sub.cost
        expansions += sub.expansions
    return SearchResult(
        nodes=nodes,
        segments=segments,
        vias=vias,
        cost=cost,
        expansions=expansions,
    )


# ---------------------------------------------------------------------- #
# Window-local subproblems (the parallel batch router's work unit)
# ---------------------------------------------------------------------- #


@dataclass
class PrecomputedAttempt:
    """Outcome of a speculative attempt-0 search computed off the live grid.

    Fed into :meth:`repro.router.SadpRouter.route_net`, which consumes it
    in place of the first search of the rip-up loop. The producer must
    guarantee the result is what that first search would have returned —
    the batch router does so by snapshot freshness + the window guard.
    """

    outcome: str  #: "found" | "failed" | "budget_exhausted"
    found: Optional[SearchResult] = None


@dataclass
class SearchSubproblem:
    """A net's attempt-0 search, self-contained and picklable.

    Everything the A* engine reads, frozen at batch-formation time: the
    occupancy snapshot of the net's expanded window (all layers), die
    dimensions (so window clamping reproduces the live grid's), layer
    directions, cost parameters, and the pin candidates in absolute die
    coordinates. ``overlay_grid``/``overlay_bounds`` optionally carry the
    trunk window's Eq. (5) grid exported from the main-process
    :class:`~repro.router.overlay_cache.OverlayCostCache`.
    """

    net_id: int
    sources: List[Tuple[int, Point]]
    targets: List[Tuple[int, Point]]
    taps: List[Tuple[int, Tuple[Point, ...]]]
    bounds: Bounds  #: snapshot window, absolute die coordinates
    occ: "object"  #: np.int32 array (layers, wx, wy) — the window slice
    die_width: int
    die_height: int
    horizontal: List[bool]
    params: CostParams
    overlay_terms: Optional[Tuple[float, float]]
    max_expansions: int = 400_000
    use_reference: bool = False
    overlay_grid: Optional["object"] = None
    overlay_bounds: Optional[Bounds] = None
    #: Mirrors :attr:`AStarRouter.guidance` so workers prune the same
    #: corridors the live engine would (results are bit-identical with
    #: guidance on or off either way; this only matches the *speed*).
    guidance: str = "off"
    guidance_trigger: int = AUTO_TRIGGER_EXPANSIONS
    guidance_min_cells: int = GUIDANCE_MIN_CELLS
    #: Mirrors :attr:`AStarRouter.kernel` so workers run the same inner
    #: loop the live engine would (bit-identical either way; speed only).
    kernel: str = "python"
    #: Optional pre-built guidance map for the trunk search, computed by
    #: the batch scheduler's batched CSR solve: ``(key, flat_float64)``
    #: with ``key`` the worker-side ``activate_guidance`` memo key. A
    #: key mismatch just means the worker builds its own map.
    guidance_premap: Optional[Tuple[object, "object"]] = None


@dataclass
class SubproblemResult:
    """What a worker sends back, in absolute die coordinates.

    ``outcome`` mirrors the engine outcomes plus ``"window_exceeded"``:
    a search window escaped the snapshot, so the result would not be
    trustworthy — the scheduler falls back to a live sequential route.
    ``engine_searches``/``engine_expansions`` are the worker engine's
    counters, added to the main engine's only when the result is
    accepted (so counter totals match a sequential run exactly).
    """

    net_id: int
    outcome: str
    nodes: List[Node] = None  # type: ignore[assignment]
    segments: List[Segment] = None  # type: ignore[assignment]
    vias: List[Via] = None  # type: ignore[assignment]
    cost: float = 0.0
    found_expansions: int = 0
    engine_searches: int = 0
    engine_expansions: int = 0
    engine_guided_searches: int = 0
    engine_guidance_builds: int = 0
    #: Picklable observability digest of the worker's searches:
    #: ``{"spans": [(name, count, total_s), ...],
    #:   "counters": [(name, ((label, value), ...), amount), ...]}``.
    #: Always measured (plain perf_counter timing, no obs backend
    #: involved); the parent folds it into its tracer/registry only for
    #: process pools, where worker-side recording cannot reach the
    #: parent. Thread/serial executors record live and need no digest.
    obs_digest: Optional[Dict] = None

    def to_precomputed(self) -> PrecomputedAttempt:
        if self.outcome != "found":
            return PrecomputedAttempt(outcome=self.outcome)
        return PrecomputedAttempt(
            outcome="found",
            found=SearchResult(
                nodes=self.nodes,
                segments=self.segments,
                vias=self.vias,
                cost=self.cost,
                expansions=self.found_expansions,
            ),
        )


class _SubgridView:
    """Duck-typed stand-in for :class:`RoutingGrid` over a window snapshot.

    Provides exactly the surface :class:`AStarRouter` touches: ``_occ``,
    ``width``/``height`` (the *window* extent — the engine's coordinates
    are window-local), ``num_layers``, ``in_bounds`` and
    ``layer_direction``. The window guard in :func:`solve_subproblem`
    ensures the coordinate translation cannot change search behaviour.
    """

    def __init__(self, sub: SearchSubproblem) -> None:
        self._occ = sub.occ
        self.num_layers = sub.occ.shape[0]
        self.width = sub.occ.shape[1]
        self.height = sub.occ.shape[2]
        self._directions = [
            Direction.HORIZONTAL if flag else Direction.VERTICAL
            for flag in sub.horizontal
        ]

    def in_bounds(self, layer: int, p: Point) -> bool:
        return (
            0 <= layer < self.num_layers
            and 0 <= p.x < self.width
            and 0 <= p.y < self.height
        )

    def layer_direction(self, layer: int) -> Direction:
        return self._directions[layer]


class _PrecomputedOverlay:
    """Minimal ``grid_for`` provider for a worker engine.

    Serves the exported trunk-window grid when the request matches its
    bounds (window-local coordinates), and recomputes from the snapshot
    otherwise — the same arithmetic the live cache would run, so results
    stay bit-identical either way.
    """

    def __init__(
        self,
        view: _SubgridView,
        horizontal: List[bool],
        terms: Tuple[float, float],
        bounds: Optional[Bounds],
        grid: Optional["object"],
    ) -> None:
        self._view = view
        self._horizontal = horizontal
        self._terms = terms
        self._bounds = bounds
        self._grid = grid

    def grid_for(self, net_id: int, bounds: Bounds):
        if self._grid is not None and bounds == self._bounds:
            return self._grid
        gamma, delta_tip = self._terms
        return overlay_cost_grid(
            self._view._occ, self._horizontal, bounds, net_id, gamma, delta_tip
        )


class _WindowExceeded(Exception):
    """A sub-search's window (plus overlay pad) escaped the snapshot."""


def solve_subproblem(sub: SearchSubproblem) -> SubproblemResult:
    """Run a net's attempt-0 search inside its snapshot window.

    Executed in worker processes/threads. Pin coordinates are translated
    into the window frame, the trunk + tap searches run on a fresh
    engine over the snapshot, and the result is translated back. Before
    every sub-search a *window-parity guard* checks that (a) the window
    the live engine would use equals this window shifted by the snapshot
    origin and (b) that window plus the distance-2 overlay pad, clipped
    to the die, lies inside the snapshot — together they make the
    snapshot search read exactly the cells the live search would read,
    hence return a bit-identical result. A guard miss aborts with
    outcome ``"window_exceeded"`` (never a wrong answer).
    """
    view = _SubgridView(sub)
    ox = sub.bounds[0]
    oy = sub.bounds[2]
    bxlo, bxhi, bylo, byhi = sub.bounds
    margin = sub.params.search_margin

    overlay_cache = None
    if sub.overlay_terms is not None:
        local_bounds = None
        if sub.overlay_bounds is not None:
            xlo, xhi, ylo, yhi = sub.overlay_bounds
            local_bounds = (xlo - ox, xhi - ox, ylo - oy, yhi - oy)
        overlay_cache = _PrecomputedOverlay(
            view, sub.horizontal, sub.overlay_terms, local_bounds, sub.overlay_grid
        )
    engine = AStarRouter(
        view,  # type: ignore[arg-type]
        sub.params,
        overlay_terms=sub.overlay_terms,
        overlay_cache=overlay_cache,
        use_reference=sub.use_reference,
        guidance=sub.guidance,
        kernel=sub.kernel,
    )
    engine.guidance_trigger = sub.guidance_trigger
    engine.guidance_min_cells = sub.guidance_min_cells
    if sub.guidance_premap is not None:
        key, premap = sub.guidance_premap
        engine.guidance_premaps = {key: premap}
    engine.active_net = sub.net_id

    # Observability digest: the worker's searches timed with plain
    # perf_counter (no obs backend — worker processes have none that
    # reaches the parent) plus the registry increments the live
    # AStarRouter.search would have made. Shipped back picklable so the
    # parent can fold dropped worker-side telemetry in on accept.
    search_spans = [0, 0.0]  # count, total seconds
    outcome_counts: Dict[str, int] = {}
    stat_totals = [0, 0, 0]  # expansions, heap pushes, heap pops

    def guarded_search(request: SearchRequest) -> Optional[SearchResult]:
        pts = [pt for _, pt in request.sources] + [pt for _, pt in request.targets]
        local = search_window(pts, margin, view.width, view.height)
        absolute = search_window(
            [Point(p.x + ox, p.y + oy) for p in pts],
            margin,
            sub.die_width,
            sub.die_height,
        )
        axlo, axhi, aylo, ayhi = absolute
        if (axlo - ox, axhi - ox, aylo - oy, ayhi - oy) != local:
            raise _WindowExceeded
        # Overlay probes read up to 2 cells beyond the window; every such
        # cell that exists on the die must be in the snapshot.
        if (
            max(0, axlo - 2) < bxlo
            or min(sub.die_width - 1, axhi + 2) > bxhi
            or max(0, aylo - 2) < bylo
            or min(sub.die_height - 1, ayhi + 2) > byhi
        ):
            raise _WindowExceeded
        t0 = time.perf_counter()
        result = engine.search(request)
        search_spans[0] += 1
        search_spans[1] += time.perf_counter() - t0
        outcome_counts[engine.last_outcome] = (
            outcome_counts.get(engine.last_outcome, 0) + 1
        )
        expansions, pushes, pops = engine._last_stats
        stat_totals[0] += expansions
        stat_totals[1] += pushes
        stat_totals[2] += pops
        return result

    def obs_digest() -> Dict:
        counters: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = [
            ("astar_searches_total", (("outcome", oc),), float(n))
            for oc, n in sorted(outcome_counts.items())
        ]
        counters += [
            ("astar_nodes_expanded_total", (), float(stat_totals[0])),
            ("astar_heap_pushes_total", (), float(stat_totals[1])),
            ("astar_heap_pops_total", (), float(stat_totals[2])),
        ]
        return {
            "spans": [("astar_search", search_spans[0], search_spans[1])],
            "counters": counters,
        }

    request = SearchRequest(
        net_id=sub.net_id,
        sources=[(layer, Point(p.x - ox, p.y - oy)) for layer, p in sub.sources],
        targets=[(layer, Point(p.x - ox, p.y - oy)) for layer, p in sub.targets],
        max_expansions=sub.max_expansions,
    )
    try:
        found = guarded_search(request)
        if found is not None and sub.taps:
            found = extend_with_taps(
                guarded_search,
                sub.net_id,
                [
                    (layer, [Point(p.x - ox, p.y - oy) for p in candidates])
                    for layer, candidates in sub.taps
                ],
                found,
            )
    except _WindowExceeded:
        return SubproblemResult(
            net_id=sub.net_id,
            outcome="window_exceeded",
            engine_searches=engine.total_searches,
            engine_expansions=engine.total_expansions,
            engine_guided_searches=engine.total_guided_searches,
            engine_guidance_builds=engine.total_guidance_builds,
            obs_digest=obs_digest(),
        )
    if found is None:
        return SubproblemResult(
            net_id=sub.net_id,
            outcome=engine.last_outcome,
            engine_searches=engine.total_searches,
            engine_expansions=engine.total_expansions,
            engine_guided_searches=engine.total_guided_searches,
            engine_guidance_builds=engine.total_guidance_builds,
            obs_digest=obs_digest(),
        )
    shift = Point(ox, oy)
    return SubproblemResult(
        net_id=sub.net_id,
        outcome="found",
        nodes=[(layer, x + ox, y + oy) for layer, x, y in found.nodes],
        segments=[
            Segment(seg.layer, seg.a + shift, seg.b + shift)
            for seg in found.segments
        ],
        vias=[Via(lower=via.lower, at=via.at + shift) for via in found.vias],
        cost=found.cost,
        found_expansions=found.expansions,
        engine_searches=engine.total_searches,
        engine_expansions=engine.total_expansions,
        engine_guided_searches=engine.total_guided_searches,
        engine_guidance_builds=engine.total_guidance_builds,
        obs_digest=obs_digest(),
    )

"""Routing cost model (Eq. 5) and algorithm parameters.

The grid cost of extending a path from grid i to grid j is::

    C_grid(j) = C_grid(i) + alpha * C_wl(i,j) + beta * C_via(i,j)
                + gamma * T2b(j)

where ``T2b(j)`` is 1 when occupying j would create a type 2-b potential
overlay scenario with an already routed net — the one scenario that costs
at least one unit of side overlay no matter how it is colored, so the
router steers around it. The paper's experiments use ``alpha = beta = 1``,
``gamma = 1.5`` and a flipping threshold of 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RoutingError


@dataclass(frozen=True)
class CostParams:
    """User-tunable knobs of the overlay-aware router."""

    alpha: float = 1.0  # wirelength weight
    beta: float = 1.0  # via weight
    gamma: float = 1.5  # type 2-b scenario penalty weight
    #: Soft penalty for creating a tip abutment (type 1-b). The merge+cut
    #: technique makes 1-b free overlay-wise, but *chains* of abutting tips
    #: (A|B|C) force same colors along the chain and the two merge cuts then
    #: violate d_cut over the middle wire — the Fig. 16 pattern. A small
    #: penalty keeps chains rare while still allowing the odd-cycle merges
    #: the paper advertises.
    delta_tip: float = 0.5
    #: Wrong-way routing: cost multiplier for steps against a layer's
    #: preferred direction. 0 (the default, and the paper's model) forbids
    #: wrong-way segments entirely; values > 1 allow short jogs without a
    #: layer change, which activates the orthogonal overlay scenarios
    #: (2-c/2-d/3-b/3-c) within a single layer.
    wrong_way_factor: float = 0.0
    #: Per-net flipping skips components larger than this (they are
    #: re-optimised once, in the final full-layout pass) — keeps the
    #: sequential loop near-linear on large designs.
    flip_scope_cap: int = 400
    flip_threshold: float = 10.0  # f_threshold: flip when a net adds more SO
    max_ripup_iterations: int = 3  # B in Fig. 19
    ripup_penalty: float = 8.0  # added to cells that caused a violation
    search_margin: int = 6  # halo around the pin bounding box A* may roam
    margin_growth: int = 10  # extra halo per failed routing attempt

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise RoutingError(f"alpha must be positive, got {self.alpha}")
        if self.beta < 0 or self.gamma < 0 or self.ripup_penalty < 0:
            raise RoutingError("beta, gamma and ripup_penalty must be >= 0")
        if self.delta_tip < 0:
            raise RoutingError("delta_tip must be >= 0")
        if self.wrong_way_factor < 0:
            raise RoutingError("wrong_way_factor must be >= 0")
        if 0 < self.wrong_way_factor < 1:
            raise RoutingError(
                "wrong_way_factor below 1 would prefer wrong-way to preferred"
            )
        if self.flip_scope_cap < 1:
            raise RoutingError("flip_scope_cap must be >= 1")
        if self.max_ripup_iterations < 0:
            raise RoutingError("max_ripup_iterations must be >= 0")
        if self.search_margin < 0 or self.margin_growth < 0:
            raise RoutingError("search margins must be >= 0")


#: The parameterisation used for all experiments in the paper (Section IV).
PAPER_PARAMS = CostParams()

"""Parallel batch routing: halo-disjoint scheduling, deterministic commit.

The sequential flow routes nets one at a time in canonical order. But two
nets whose expanded search windows cannot interact are independent: their
attempt-0 searches read disjoint occupancy, produce disjoint writes, and
create no shared overlay scenarios. This module exploits that:

* :class:`BatchScheduler` greedily packs the head of the routing-ordered
  queue into a batch whose *expanded windows* — pin bbox grown by the
  search margins plus an interaction halo covering the spacing rule and
  the distance-2 overlay probe range — are pairwise disjoint;
* each batch member's attempt-0 search is extracted as a picklable
  :class:`~repro.router.astar.SearchSubproblem` (occupancy snapshot of
  its window) and solved on a ``concurrent.futures`` pool;
* results are consumed strictly **in canonical routing order** on the
  main process and fed into the unchanged ``route_net`` rip-up loop as a
  :class:`~repro.router.astar.PrecomputedAttempt` — all commits, OCG
  updates, coloring and conflict checks stay sequential.

Determinism does not rest on the scheduler being right: a result is only
consumed if (a) the worker's window-parity guard held and (b) no grid
cell inside the member's snapshot changed since it was taken (tracked by
:class:`_DirtyTracker`). Any miss falls back to a live sequential route
of that net — discarding a speculative result is always safe — so
``workers=N`` is bit-identical to ``workers=1`` unconditionally; the
halo only tunes the speculation hit rate.
"""

from __future__ import annotations

import concurrent.futures
import queue as queue_mod
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..geometry import Point
from ..grid import CellState
from ..netlist import Net
from .astar import (
    Bounds,
    SearchSubproblem,
    SubproblemResult,
    search_window,
    solve_subproblem,
)
from .cost import CostParams
from .guidance import batched_future_cost_maps
from .overlay_cache import overlay_cost_grid
from .sharding import OVERLAY_PAD, ShardGrid, ShardPlan, assign_streams

_FREE = int(CellState.FREE)

#: ``workers="auto"``: minimum predicted batched-net fraction below which
#: the run stays serial — with most nets routing sequentially anyway, the
#: batching overhead (snapshots, pickling, pool startup) loses to the
#: plain flow (Test1 measures 0.96x at fraction ~0.4).
AUTO_MIN_BATCHED_FRACTION = 0.5


def interaction_halo(rules) -> int:
    """Tracks beyond a net's search windows where another net can matter.

    Two committed patterns interact through (a) the Eq. (5) overlay term,
    which probes up to :data:`OVERLAY_PAD` tracks along the preferred
    direction, and (b) scenario detection / spacing, whose reach is the
    design rules' independence radius ``d_indep_tracks``. The halo is
    their sum, so two nets whose haloed windows are disjoint cannot see
    each other through either mechanism.
    """
    return OVERLAY_PAD + int(getattr(rules, "d_indep_tracks", 3))


def windows_disjoint(a: Bounds, b: Bounds) -> bool:
    return a[1] < b[0] or b[1] < a[0] or a[3] < b[2] or b[3] < a[2]


class BatchScheduler:
    """Greedy halo-disjoint packer over the routing-ordered net queue.

    ``window(net)`` is the net's *expanded* window: the bbox of all pin
    candidates grown by ``(2 + n_taps) * search_margin`` — the trunk
    window plus the growth each Steiner extension can add — plus the
    interaction halo, clipped to the die. ``pick`` scans a bounded
    lookahead of the queue head and keeps every net whose window is
    disjoint from all windows already picked; the queue head is always
    picked, so consumption order never starves.
    """

    def __init__(
        self,
        params: CostParams,
        rules,
        width: int,
        height: int,
        max_batch: int,
        lookahead: int,
    ) -> None:
        self.params = params
        self.width = width
        self.height = height
        self.halo = interaction_halo(rules)
        self.max_batch = max(1, max_batch)
        self.lookahead = max(self.max_batch, lookahead)
        #: Cumulative scan statistics across every :meth:`pick` — queue
        #: positions examined and halo-conflict rejections. The parallel
        #: decision trace reads these to explain batch density.
        self.candidates_scanned = 0
        self.halo_rejects = 0

    def window(self, net: Net) -> Bounds:
        pins = (net.source, net.target, *net.taps)
        pts = [p for pin in pins for p in pin.candidates]
        # Attempt-0 searches use the base search_margin (no rip-up growth
        # yet); each Steiner tap extension can push the tree one more
        # margin outward. The halo on top covers everything a *neighbour*
        # can reach into: its own margin is inside its own window, so the
        # overlay-probe + independence-radius halo is all that remains.
        margin = (1 + len(net.taps)) * self.params.search_margin + self.halo
        return search_window(pts, margin, self.width, self.height)

    def pick(self, queue: Sequence[Net]) -> List[Tuple[Net, Bounds]]:
        picked: List[Tuple[Net, Bounds]] = []
        windows: List[Bounds] = []
        for i in range(min(len(queue), self.lookahead)):
            net = queue[i]
            win = self.window(net)
            self.candidates_scanned += 1
            if i == 0 or all(windows_disjoint(win, other) for other in windows):
                picked.append((net, win))
                windows.append(win)
                if len(picked) >= self.max_batch:
                    break
            else:
                self.halo_rejects += 1
        return picked


@dataclass
class BatchPlan:
    """Dry-run scheduling prediction — the evidence behind the
    ``workers="auto"`` serial-vs-parallel call.

    Beyond the headline :attr:`batched_fraction`, the plan keeps the
    scan-level detail (batches formed, singletons, halo-conflict
    rejections, queue positions examined) so the decision trace can say
    *why* a workload stayed serial, not just that it did.
    """

    nets: int = 0
    multi_net_batches: int = 0
    batched_nets: int = 0
    singleton_nets: int = 0
    candidates_scanned: int = 0
    halo_rejects: int = 0

    @property
    def batched_fraction(self) -> float:
        return self.batched_nets / self.nets if self.nets else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "nets": self.nets,
            "multi_net_batches": self.multi_net_batches,
            "batched_nets": self.batched_nets,
            "singleton_nets": self.singleton_nets,
            "candidates_scanned": self.candidates_scanned,
            "halo_rejects": self.halo_rejects,
            "predicted_batched_fraction": round(self.batched_fraction, 3),
        }


def predict_batch_plan(
    scheduler: BatchScheduler, ordered: Sequence[Net]
) -> BatchPlan:
    """Dry-run the scheduler over the ordered queue; returns the plan.

    The exact pick/consume loop of :meth:`ParallelRouter.route` (without
    routing anything): windows only depend on pin candidates, so the
    prediction costs a few window computations per net. It ignores
    staleness fallbacks — those nets still ran in a batch — so it predicts
    scheduling density, the term that decides whether batching can pay.
    """
    plan = BatchPlan(nets=len(ordered))
    if not ordered:
        return plan
    scan0 = scheduler.candidates_scanned
    rej0 = scheduler.halo_rejects
    queue: Deque[Net] = deque(ordered)
    while queue:
        picked = scheduler.pick(queue)
        if len(picked) < 2:
            queue.popleft()
            plan.singleton_nets += 1
            continue
        plan.multi_net_batches += 1
        plan.batched_nets += len(picked)
        ids = {net.net_id for net, _ in picked}
        while ids:
            ids.discard(queue.popleft().net_id)
    plan.candidates_scanned = scheduler.candidates_scanned - scan0
    plan.halo_rejects = scheduler.halo_rejects - rej0
    return plan


def predict_batched_fraction(
    scheduler: BatchScheduler, ordered: Sequence[Net]
) -> float:
    """Fraction of nets the scheduler would place into >=2-net batches."""
    return predict_batch_plan(scheduler, ordered).batched_fraction


class _DirtyTracker:
    """Grid change listener: which (x, y) columns changed since ``clear``.

    Layer-agnostic on purpose — a snapshot covers all layers of its
    window, so any write in the window's footprint invalidates it.
    ``block()`` arrives as a reset and poisons every snapshot.
    """

    def __init__(self) -> None:
        self.cells: Set[Tuple[int, int]] = set()
        self.reset = False

    def on_cells_changed(self, cells: Iterable[Tuple[int, int, int]]) -> None:
        add = self.cells.add
        for _, x, y in cells:
            add((x, y))

    def on_grid_reset(self) -> None:
        self.reset = True

    def clear(self) -> None:
        self.cells.clear()
        self.reset = False

    def window_dirty(self, bounds: Bounds) -> bool:
        if self.reset:
            return True
        xlo, xhi, ylo, yhi = bounds
        for x, y in self.cells:
            if xlo <= x <= xhi and ylo <= y <= yhi:
                return True
        return False


class _SerialExecutor:
    """Inline ``concurrent.futures``-shaped executor (debugging aid)."""

    def submit(self, fn, *args, **kwargs) -> "concurrent.futures.Future":
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # pragma: no cover - defensive
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        return None


def make_executor(kind: str, workers: int):
    """``"process"`` (default: the engine is pure Python and GIL-bound),
    ``"thread"`` (cheap startup; useful for tests) or ``"serial"``."""
    if kind == "process":
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    if kind == "thread":
        return concurrent.futures.ThreadPoolExecutor(max_workers=workers)
    if kind == "serial":
        return _SerialExecutor()
    raise ValueError(f"unknown executor kind: {kind!r}")


@dataclass
class ParallelStats:
    """What the parallel engine did — exported into ``BENCH_perf.json``.

    One stats object serves all three execution modes: ``"batch"``
    (PR-3 halo-disjoint batches), ``"sharded"`` (region shards on the
    persistent pool) and ``"serial"`` (the auto decision declined both).
    """

    workers: int = 0
    executor: str = ""
    mode: str = "batch"
    batches: int = 0
    batched_nets: int = 0
    sequential_nets: int = 0
    hits: int = 0
    fallbacks: int = 0
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    #: ``workers="auto"`` outcome: "" (explicit workers), "serial",
    #: "parallel" (batch) or "sharded", plus the predicted fractions the
    #: decision weighed (-1 = that predictor was not consulted).
    auto_decision: str = ""
    predicted_batched_fraction: float = -1.0
    predicted_interior_fraction: float = -1.0
    #: Live scheduler scan totals (queue positions examined and
    #: halo-conflict rejections across every pick of the run).
    candidates_scanned: int = 0
    halo_rejects: int = 0
    #: Sharded mode: the plan geometry, net classification counts, and
    #: how many accepted nets were actually computed in worker processes
    #: (the "off the main process" figure the bench gates on).
    shard_plan: Dict[str, object] = field(default_factory=dict)
    interior_nets: int = 0
    boundary_nets: int = 0
    off_process_nets: int = 0
    #: Results computed per pool worker (all outcomes, accepted or not).
    pool_utilization: Dict[str, int] = field(default_factory=dict)
    #: Structured serial-vs-parallel rationale (the ``parallel_decision``
    #: trace event's attributes); empty for explicit worker counts.
    decision_trace: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_nets / self.batches if self.batches else 0.0

    @property
    def off_process_fraction(self) -> float:
        total = self.hits + self.fallbacks + self.sequential_nets
        return self.off_process_nets / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "workers": self.workers,
            "executor": self.executor,
            "mode": self.mode,
            "batches": self.batches,
            "batched_nets": self.batched_nets,
            "sequential_nets": self.sequential_nets,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "candidates_scanned": self.candidates_scanned,
            "halo_rejects": self.halo_rejects,
        }
        if self.mode == "sharded":
            payload["shard_plan"] = dict(self.shard_plan)
            payload["interior_nets"] = self.interior_nets
            payload["boundary_nets"] = self.boundary_nets
            payload["off_process_nets"] = self.off_process_nets
            payload["off_process_fraction"] = round(self.off_process_fraction, 3)
            payload["pool_utilization"] = dict(self.pool_utilization)
        if self.auto_decision:
            payload["auto_decision"] = self.auto_decision
            if self.predicted_batched_fraction >= 0.0:
                payload["predicted_batched_fraction"] = round(
                    self.predicted_batched_fraction, 3
                )
            if self.predicted_interior_fraction >= 0.0:
                payload["predicted_interior_fraction"] = round(
                    self.predicted_interior_fraction, 3
                )
        if self.decision_trace:
            payload["decision_trace"] = dict(self.decision_trace)
        return payload


def emit_decision_event(trace: Dict[str, object]) -> None:
    """Record the serial-vs-parallel rationale as telemetry.

    Emits a zero-work ``parallel_decision`` span whose attributes carry
    the structured rationale (decision, predicted fraction, threshold,
    scan counts, reason) plus a ``parallel_decision_total`` counter
    labelled by the decision — so both the run log and the metrics
    registry can answer "why did this run (not) engage the pool?".
    No-op when the trace is empty or observability is off.
    """
    if not trace or not obs.is_enabled():
        return
    decision = str(trace.get("decision", ""))
    with obs.span("parallel_decision", **trace):
        pass
    obs.counter_inc("parallel_decision_total", decision=decision or "explicit")


class ParallelRouter:
    """Drives one routing pass of a :class:`SadpRouter` with batching.

    Owns the executor, the scheduler and the dirty tracker; delegates
    every commit-side decision to the router's own ``route_net``.
    """

    def __init__(
        self,
        router,
        workers: int,
        executor: str = "process",
        max_batch: Optional[int] = None,
        lookahead: Optional[int] = None,
        share_overlay_grids: Optional[bool] = None,
    ) -> None:
        self.router = router
        self.workers = max(1, int(workers))
        self.executor_kind = executor
        self.max_batch = max_batch or max(2 * self.workers, 2)
        self.lookahead = lookahead or max(8 * self.workers, 16)
        if share_overlay_grids is None:
            # Shipping grids to processes costs pickling; threads share
            # memory, so exporting from the main-process cache is free.
            share_overlay_grids = executor != "process"
        self.share_overlay_grids = share_overlay_grids
        self.scheduler = BatchScheduler(
            router.params,
            router.grid.rules,
            router.grid.width,
            router.grid.height,
            self.max_batch,
            self.lookahead,
        )
        self.stats = ParallelStats(workers=self.workers, executor=executor)

    # ------------------------------------------------------------------ #

    def route(self, ordered: Sequence[Net], result) -> None:
        """Route ``ordered`` into ``result.routes``, in canonical order."""
        router = self.router
        emit_decision_event(self.stats.decision_trace)
        queue: Deque[Net] = deque(ordered)
        tracker = _DirtyTracker()
        router.grid.add_change_listener(tracker)
        pool = make_executor(self.executor_kind, self.workers)
        degraded = False
        scan0 = self.scheduler.candidates_scanned
        rej0 = self.scheduler.halo_rejects
        try:
            while queue:
                picked = [] if degraded else self.scheduler.pick(queue)
                if len(picked) < 2:
                    net = queue.popleft()
                    self.stats.sequential_nets += 1
                    result.routes[net.net_id] = router.route_net(net)
                    continue
                tracker.clear()
                futures = {}
                windows = {}
                subs = [(net, win, self._build_subproblem(net, win))
                        for net, win in picked]
                if router.engine.guidance == "on":
                    # Every trunk search will activate guidance up front
                    # (trigger 0), so their maps can be solved as one
                    # batched CSR call here instead of one per worker.
                    self._attach_guidance_premaps([s for _, _, s in subs])
                for net, win, sub in subs:
                    futures[net.net_id] = pool.submit(solve_subproblem, sub)
                    windows[net.net_id] = win
                self.stats.batches += 1
                self.stats.batched_nets += len(picked)
                obs.counter_inc("parallel_batches_total")
                obs.counter_inc("parallel_batched_nets_total", len(picked))
                with obs.span("parallel_batch", size=len(picked)):
                    while futures:
                        net = queue.popleft()
                        future = futures.pop(net.net_id, None)
                        if future is None:
                            # Skipped (window overlap): route live, in order.
                            self.stats.sequential_nets += 1
                            result.routes[net.net_id] = router.route_net(net)
                            continue
                        try:
                            res = future.result()
                        except Exception:
                            self._fallback(net, result, "error")
                            degraded = True
                            continue
                        if res.outcome == "window_exceeded":
                            self._fallback(net, result, "window_exceeded")
                        elif tracker.window_dirty(windows[net.net_id]):
                            self._fallback(net, result, "stale")
                        else:
                            self._accept(net, res, result)
        finally:
            router.grid.remove_change_listener(tracker)
            pool.shutdown(wait=False, cancel_futures=True)
            self.stats.candidates_scanned = (
                self.scheduler.candidates_scanned - scan0
            )
            self.stats.halo_rejects = self.scheduler.halo_rejects - rej0
            obs.counter_inc(
                "parallel_candidates_scanned_total", self.stats.candidates_scanned
            )
            obs.counter_inc("parallel_halo_rejects_total", self.stats.halo_rejects)

    # ------------------------------------------------------------------ #

    def _build_subproblem(self, net: Net, win: Bounds) -> SearchSubproblem:
        router = self.router
        engine = router.engine
        sources = [(net.source.layer, p) for p in net.source.candidates]
        targets = [(net.target.layer, p) for p in net.target.candidates]
        overlay_grid = None
        overlay_bounds = None
        if self.share_overlay_grids and router.overlay_cache is not None:
            pts = [p for _, p in sources] + [p for _, p in targets]
            overlay_bounds = search_window(
                pts,
                router.params.search_margin,
                router.grid.width,
                router.grid.height,
            )
            overlay_grid = router.overlay_cache.export_for(
                net.net_id, overlay_bounds
            )
        return SearchSubproblem(
            net_id=net.net_id,
            sources=sources,
            targets=targets,
            taps=[(tap.layer, tuple(tap.candidates)) for tap in net.taps],
            bounds=win,
            occ=router.grid.snapshot_window(win),
            die_width=router.grid.width,
            die_height=router.grid.height,
            horizontal=list(engine._horizontal),
            params=router.params,
            overlay_terms=engine._overlay_terms,
            use_reference=bool(engine.use_reference),
            overlay_grid=overlay_grid,
            overlay_bounds=overlay_bounds,
            guidance=engine.guidance,
            guidance_trigger=engine.guidance_trigger,
            guidance_min_cells=engine.guidance_min_cells,
            kernel=engine.kernel,
        )

    def _attach_guidance_premaps(self, subs: List[SearchSubproblem]) -> None:
        """Batch the batch's trunk guidance builds into one CSR solve.

        With ``guidance="on"`` every worker's trunk search activates its
        map before the first pop, so the maps are known work at batch
        formation time. This replicates each worker's activation inputs
        exactly — window, target filter, folded cost grid, memo key —
        off the frozen snapshots (``solve_subproblem`` never mutates
        them), solves all maps in one block-diagonal
        :func:`~repro.router.guidance.batched_future_cost_maps` call,
        and ships each map with its subproblem. Consumption increments
        the *worker* engine's build counter, so folded totals still
        equal a sequential run's; a key mismatch (or an unused premap
        after a window-guard abort) just means wasted speculative work,
        never a wrong result. Sharded streams do not get premaps: their
        workers mutate private tile snapshots between chained nets, so
        occupancy at activation time is not knowable here.
        """
        items = []
        slots = []  # (sub, key, local_window) per batched item
        for sub in subs:
            ox, oy = sub.bounds[0], sub.bounds[2]
            num_layers, view_w, view_h = sub.occ.shape
            margin = sub.params.search_margin
            local_pts = [
                Point(p.x - ox, p.y - oy)
                for p in ([p for _, p in sub.sources] + [p for _, p in sub.targets])
            ]
            xlo, xhi, ylo, yhi = search_window(
                local_pts, margin, view_w, view_h
            )
            wx = xhi - xlo + 1
            wy = yhi - ylo + 1
            if wx < 2 or wy < 2:
                continue  # degenerate: the worker stays unguided too
            layer_stride = wx * wy
            is_target = np.zeros(num_layers * layer_stride, dtype=np.uint8)
            any_target = False
            for layer, p in sub.targets:
                tx, ty = p.x - ox, p.y - oy
                if not (0 <= layer < num_layers and 0 <= tx < view_w and 0 <= ty < view_h):
                    continue
                if sub.occ[layer, tx, ty] not in (_FREE, sub.net_id):
                    continue
                is_target[layer * layer_stride + (tx - xlo) * wy + (ty - ylo)] = 1
                any_target = True
            if not any_target:
                continue  # the worker search returns None before activating
            occ_win = sub.occ[:, xlo : xhi + 1, ylo : yhi + 1]
            passable = (occ_win == _FREE) | (occ_win == sub.net_id)
            if sub.overlay_terms is not None:
                local_ob = None
                if sub.overlay_bounds is not None:
                    obx = sub.overlay_bounds
                    local_ob = (obx[0] - ox, obx[1] - ox, obx[2] - oy, obx[3] - oy)
                if sub.overlay_grid is not None and (xlo, xhi, ylo, yhi) == local_ob:
                    cost_np = sub.overlay_grid
                else:
                    gamma, delta_tip = sub.overlay_terms
                    cost_np = overlay_cost_grid(
                        sub.occ,
                        sub.horizontal,
                        (xlo, xhi, ylo, yhi),
                        sub.net_id,
                        gamma,
                        delta_tip,
                    )
                carr = np.array(cost_np, dtype=np.float64)
            else:
                carr = np.zeros((num_layers, wx, wy), dtype=np.float64)
            # Worker engines carry no penalty_map and the default "auto"
            # guidance backend — both enter the memo key.
            key = ((xlo, xhi, ylo, yhi), bytes(is_target), None, "auto")
            tmask = is_target.reshape(num_layers, wx, wy).astype(bool)
            items.append((passable, carr, tmask))
            slots.append((sub, key))
        if not items:
            return
        params = self.router.params
        maps = batched_future_cost_maps(
            items,
            self.router.engine._horizontal,
            params.alpha,
            params.beta,
            params.wrong_way_factor,
        )
        for (sub, key), dmap in zip(slots, maps):
            if dmap is not None:
                sub.guidance_premap = (key, dmap.ravel())

    def _accept(self, net: Net, res: SubproblemResult, result) -> None:
        router = self.router
        self.stats.hits += 1
        obs.counter_inc("parallel_hits_total", outcome=res.outcome)
        # The worker's searches stand in for the live attempt-0 searches:
        # fold its counters in so totals match a sequential run exactly.
        router.engine.total_searches += res.engine_searches
        router.engine.total_expansions += res.engine_expansions
        router.engine.total_guided_searches += res.engine_guided_searches
        router.engine.total_guidance_builds += res.engine_guidance_builds
        self._fold_obs_digest(net, res)
        result.routes[net.net_id] = router.route_net(
            net, precomputed=res.to_precomputed()
        )

    def _fold_obs_digest(self, net: Net, res: SubproblemResult) -> None:
        """Merge the worker's telemetry digest into the parent backend.

        Process-pool workers run with their own (discarded) copy of the
        observability backend, so their spans and counters are shipped
        back as a picklable digest and replayed here — under the live
        ``parallel_batch`` span — so span counts and counter totals match
        a sequential run. Thread/serial executors share the parent's
        backend and already recorded live: folding would double-count.
        """
        if self.executor_kind != "process" or res.obs_digest is None:
            return
        ob = obs.get_active()
        if ob is None:
            return
        for name, count, total_s in res.obs_digest.get("spans", ()):
            if count:
                ob.tracer.record_external(
                    name, total_s, count=count, net_id=net.net_id
                )
        for name, labels, amount in res.obs_digest.get("counters", ()):
            if amount:
                ob.registry.counter(name, **dict(labels)).inc(amount)

    def _fallback(self, net: Net, result, reason: str) -> None:
        self.stats.fallbacks += 1
        self.stats.fallback_reasons[reason] = (
            self.stats.fallback_reasons.get(reason, 0) + 1
        )
        obs.counter_inc("parallel_fallbacks_total", reason=reason)
        result.routes[net.net_id] = self.router.route_net(net)


# ---------------------------------------------------------------------- #
# Region-sharded routing (the active decomposition; see repro.router.sharding)
# ---------------------------------------------------------------------- #


class _ShardDirtyTracker:
    """Full-cell grid change listener, bucketed by shard tile.

    Chain validation needs *cell-level* dirt (a worker's chain assumed
    specific cells, not whole columns) and per-net lookups must not scan
    every commit of the run — so changed ``(layer, x, y)`` cells are
    bucketed by the tile that contains them. A net's read window lies
    inside a single tile by construction, so validation scans exactly
    one bucket: the boundary paths and unclean writes that landed in
    that tile, typically a few hundred cells.
    """

    def __init__(self, grid: ShardGrid) -> None:
        self._grid = grid
        self.buckets: Dict[int, Set[Tuple[int, int, int]]] = {}
        self.reset = False

    def on_cells_changed(self, cells: Iterable[Tuple[int, int, int]]) -> None:
        shard_of = self._grid.shard_of
        buckets = self.buckets
        for cell in cells:
            sid = shard_of(cell[1], cell[2])
            bucket = buckets.get(sid)
            if bucket is None:
                bucket = buckets[sid] = set()
            bucket.add(cell)

    def on_grid_reset(self) -> None:
        self.reset = True


class ShardedRouter:
    """Drives one routing pass with region shards on a persistent pool.

    Setup: publish the occupancy snapshot to shared memory, split the
    plan's shards round-robin over workers, and submit each worker one
    :class:`~repro.router.pool.ShardStreamTask` — its shards' interior
    nets merged in canonical order. Workers chain-solve their streams
    against private tile snapshots while the main process consumes nets
    strictly in canonical order: boundary nets route live (the
    sequential reconciliation pass), interior nets await their worker
    result.

    A result for net *i* (read window ``W``, shard ``s``) is accepted
    only when the worker's view of ``W`` provably matches the live grid:

    * every cell of ``W`` that changed since the snapshot (tracked by
      :class:`_ShardDirtyTracker`) was written by a *cleanly accepted*
      chain predecessor of ``s`` — a net whose speculative path was
      committed verbatim (success, zero rip-ups, no eviction), so the
      worker's local application of it equals the live commit; and
    * no *unclean* chain predecessor (one whose speculative path was
      rejected, or accepted but then re-routed by the rip-up loop)
      assumed cells inside ``W`` — the worker baked a path into its tile
      that the live grid does not hold.

    Anything else falls back to a live sequential route of that net —
    discarding speculation is always safe — so committed results are
    bit-identical to ``workers=1`` for every worker count, pool kind and
    timing. Engine counters and obs digests of accepted results are
    folded exactly like the batch router's.
    """

    #: Seconds of pool silence tolerated before a liveness check; after
    #: :data:`STALL_LIMIT_S` of total silence the pass degrades to live
    #: routing for every net still owed a result.
    POLL_TIMEOUT_S = 1.0
    STALL_LIMIT_S = 600.0

    def __init__(
        self,
        router,
        workers: int,
        plan: ShardPlan,
        executor: str = "process",
    ) -> None:
        if plan.grid is None:
            raise ValueError("sharded routing needs a plan with a shard grid")
        self.router = router
        self.workers = max(1, int(workers))
        self.plan = plan
        self.pool_kind = "process" if executor == "process" else "inline"
        self.stats = ParallelStats(
            workers=self.workers,
            executor=f"shard-{self.pool_kind}",
            mode="sharded",
            shard_plan=plan.to_dict(),
            interior_nets=plan.interior_nets,
            boundary_nets=plan.boundary_nets,
        )
        # Consumption-side state, (re)built per route() call.
        self._buffered: Dict[int, SubproblemResult] = {}
        self._received: Set[int] = set()
        self._dead_nets: Set[int] = set()
        self._dead_seen: Set[int] = set()
        self._net_worker: Dict[int, int] = {}
        self._stream_nets: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #

    def route(self, ordered: Sequence[Net], result) -> None:
        """Route ``ordered`` into ``result.routes``, in canonical order."""
        from .pool import (
            InlineShardPool,
            ShardNetSpec,
            ShardStreamTask,
            SharedOccupancy,
            WorkerPool,
        )

        router = self.router
        plan = self.plan
        emit_decision_event(self.stats.decision_trace)
        order_index = {net.net_id: i for i, net in enumerate(ordered)}
        interior: Dict[int, Tuple[int, Bounds]] = {}
        for sid, members in plan.interior.items():
            for net, win in members:
                interior[net.net_id] = (sid, win)

        tracker = _ShardDirtyTracker(plan.grid)
        shared = SharedOccupancy(router.grid)
        pool = (
            WorkerPool(self.workers)
            if self.pool_kind == "process"
            else InlineShardPool(self.workers)
        )
        clean: Dict[int, Set[Tuple[int, int, int]]] = {}
        unclean: Dict[int, Set[Tuple[int, int, int]]] = {}
        try:
            desc = shared.descriptor()
            engine = router.engine
            streams = assign_streams(plan, self.workers)
            for wi, sids in enumerate(streams):
                specs = [
                    ShardNetSpec(
                        net_id=net.net_id,
                        shard_id=sid,
                        sources=[
                            (net.source.layer, p) for p in net.source.candidates
                        ],
                        targets=[
                            (net.target.layer, p) for p in net.target.candidates
                        ],
                    )
                    for sid in sids
                    for net, _ in plan.interior[sid]
                ]
                specs.sort(key=lambda spec: order_index[spec.net_id])
                for spec in specs:
                    self._net_worker[spec.net_id] = wi
                self._stream_nets[wi] = [spec.net_id for spec in specs]
                pool.submit(
                    wi,
                    ShardStreamTask(
                        descriptor=desc,
                        tiles={
                            sid: plan.grid.tile_bounds(sid) for sid in sids
                        },
                        nets=specs,
                        die_width=router.grid.width,
                        die_height=router.grid.height,
                        horizontal=list(engine._horizontal),
                        params=router.params,
                        overlay_terms=engine._overlay_terms,
                        use_reference=bool(engine.use_reference),
                        guidance=engine.guidance,
                        guidance_trigger=engine.guidance_trigger,
                        guidance_min_cells=engine.guidance_min_cells,
                        kernel=engine.kernel,
                    ),
                )
            obs.counter_inc("shard_streams_total", len(streams))
            # Listen from here on: the snapshot is already published and
            # nothing routed yet, so "dirty" means "changed since the
            # workers' view" exactly.
            router.grid.add_change_listener(tracker)
            for net in ordered:
                entry = interior.get(net.net_id)
                if entry is None:
                    self.stats.sequential_nets += 1
                    result.routes[net.net_id] = router.route_net(net)
                    continue
                sid, win = entry
                res = self._await(net.net_id, pool)
                if res is None:
                    self._fallback(net, result, "worker_died")
                    continue
                if res.outcome in ("window_exceeded", "stale_generation", "error"):
                    # The worker applied nothing for these outcomes, so
                    # the shard's chain state is unaffected.
                    self._fallback(net, result, res.outcome)
                    continue
                if not self._region_clean(sid, win, tracker, clean, unclean):
                    self._fallback(net, result, "chain_broken")
                    if res.outcome == "found":
                        unclean.setdefault(sid, set()).update(res.nodes)
                    continue
                self._accept(net, sid, res, result, clean, unclean)
        finally:
            try:
                router.grid.remove_change_listener(tracker)
            except Exception:
                pass
            pool.close()
            shared.close()
            for wi, count in sorted(self.stats.pool_utilization.items()):
                obs.counter_inc(
                    "shard_pool_results_total", count, worker=str(wi)
                )

    # ------------------------------------------------------------------ #

    def _await(self, net_id: int, pool) -> Optional[SubproblemResult]:
        """Drain the result queue until ``net_id`` arrives (or its worker
        dies); other nets' results are buffered for their turn."""
        if net_id in self._buffered:
            return self._buffered.pop(net_id)
        idle_s = 0.0
        while True:
            if net_id in self._dead_nets:
                return None
            try:
                msg = pool.get(timeout=self.POLL_TIMEOUT_S)
            except queue_mod.Empty:
                idle_s += self.POLL_TIMEOUT_S
                for wi in pool.dead_workers():
                    if wi in self._dead_seen:
                        continue
                    self._dead_seen.add(wi)
                    self._dead_nets.update(
                        nid
                        for nid in self._stream_nets.get(wi, ())
                        if nid not in self._received
                    )
                if idle_s >= self.STALL_LIMIT_S:
                    # Total stall: give up on everything still owed.
                    for nets in self._stream_nets.values():
                        self._dead_nets.update(
                            nid for nid in nets if nid not in self._received
                        )
                continue
            idle_s = 0.0
            if not hasattr(msg, "result"):  # StreamDone
                continue
            res = msg.result
            if res.net_id in self._received:
                continue
            self._received.add(res.net_id)
            wi = self._net_worker.get(res.net_id, -1)
            key = str(wi)
            self.stats.pool_utilization[key] = (
                self.stats.pool_utilization.get(key, 0) + 1
            )
            if res.net_id == net_id:
                return res
            self._buffered[res.net_id] = res

    def _region_clean(
        self,
        sid: int,
        win: Bounds,
        tracker: _ShardDirtyTracker,
        clean: Dict[int, Set[Tuple[int, int, int]]],
        unclean: Dict[int, Set[Tuple[int, int, int]]],
    ) -> bool:
        """Does the worker's view of ``win`` match the live grid?"""
        if tracker.reset:
            return False
        xlo, xhi, ylo, yhi = win
        known = clean.get(sid, ())
        for cell in tracker.buckets.get(sid, ()):
            if xlo <= cell[1] <= xhi and ylo <= cell[2] <= yhi:
                if cell not in known:
                    return False
        for cell in unclean.get(sid, ()):
            if xlo <= cell[1] <= xhi and ylo <= cell[2] <= yhi:
                return False
        return True

    def _accept(
        self,
        net: Net,
        sid: int,
        res: SubproblemResult,
        result,
        clean: Dict[int, Set[Tuple[int, int, int]]],
        unclean: Dict[int, Set[Tuple[int, int, int]]],
    ) -> None:
        router = self.router
        self.stats.hits += 1
        if self.pool_kind == "process":
            self.stats.off_process_nets += 1
        obs.counter_inc("parallel_hits_total", outcome=res.outcome)
        router.engine.total_searches += res.engine_searches
        router.engine.total_expansions += res.engine_expansions
        router.engine.total_guided_searches += res.engine_guided_searches
        router.engine.total_guidance_builds += res.engine_guidance_builds
        self._fold_obs_digest(net, res)
        evictions_before = len(router._evicted_routes)
        route = router.route_net(net, precomputed=res.to_precomputed())
        result.routes[net.net_id] = route
        if res.outcome == "found":
            # Clean = the speculative path was committed verbatim, so the
            # worker's local application of it matches the live grid.
            committed_verbatim = (
                route.success
                and route.ripups == 0
                and len(router._evicted_routes) == evictions_before
            )
            target = clean if committed_verbatim else unclean
            target.setdefault(sid, set()).update(res.nodes)

    def _fold_obs_digest(self, net: Net, res: SubproblemResult) -> None:
        """Same contract as :meth:`ParallelRouter._fold_obs_digest`:
        process-pool digests are replayed, inline pools recorded live."""
        if self.pool_kind != "process" or res.obs_digest is None:
            return
        ob = obs.get_active()
        if ob is None:
            return
        for name, count, total_s in res.obs_digest.get("spans", ()):
            if count:
                ob.tracer.record_external(
                    name, total_s, count=count, net_id=net.net_id
                )
        for name, labels, amount in res.obs_digest.get("counters", ()):
            if amount:
                ob.registry.counter(name, **dict(labels)).inc(amount)

    def _fallback(self, net: Net, result, reason: str) -> None:
        self.stats.fallbacks += 1
        self.stats.fallback_reasons[reason] = (
            self.stats.fallback_reasons.get(reason, 0) + 1
        )
        obs.counter_inc("parallel_fallbacks_total", reason=reason)
        result.routes[net.net_id] = self.router.route_net(net)

"""The multi-layer occupancy grid.

A :class:`RoutingGrid` is a ``layers x width x height`` array of cells, each
free, blocked, or owned by a net. It knows nothing about overlay or colors —
that is the constraint graph's job — but it owns the nm geometry of a cell
(through a :class:`~repro.units.TrackGrid`) so that routed segments can be
lowered to physical shapes for decomposition.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import GridError
from ..geometry import Point, Rect, Segment
from ..rules import DesignRules
from ..units import TrackGrid
from .layer import Direction, RoutingLayer, default_layer_stack


class CellState(enum.IntEnum):
    """Sentinel occupancy values; non-negative values are net ids."""

    FREE = -1
    BLOCKED = -2


class RoutingGrid:
    """Grid routing plane with per-cell ownership.

    Parameters
    ----------
    width, height:
        Extent in tracks (grid points 0..width-1, 0..height-1).
    layers:
        The layer stack; defaults to three layers H-V-H.
    rules:
        Design rules; fixes the track pitch and wire width for the nm view.
    """

    def __init__(
        self,
        width: int,
        height: int,
        layers: Optional[Sequence[RoutingLayer]] = None,
        rules: Optional[DesignRules] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise GridError(f"grid must be non-empty, got {width}x{height}")
        self.width = width
        self.height = height
        self.layers: List[RoutingLayer] = list(layers) if layers else default_layer_stack()
        if [l.index for l in self.layers] != list(range(len(self.layers))):
            raise GridError("layer indices must be 0..n-1 in order")
        self.rules = rules or DesignRules()
        self.track_grid = TrackGrid(
            pitch_nm=self.rules.pitch, wire_width_nm=self.rules.w_line
        )
        # occupancy[layer, x, y] = CellState or net id
        self._occ = np.full(
            (len(self.layers), width, height), int(CellState.FREE), dtype=np.int32
        )
        # Occupancy-change listeners (e.g. the router's overlay-cost
        # cache). Kept as a plain list and guarded with a truthiness
        # check so the unobserved grid pays one branch per mutation.
        self._listeners: List = []

    # ------------------------------------------------------------------ #
    # Change notification
    # ------------------------------------------------------------------ #

    def add_change_listener(self, listener) -> None:
        """Subscribe to occupancy changes.

        ``listener`` must provide ``on_cells_changed(cells)`` — called
        with an iterable of ``(layer, x, y)`` whose occupancy just
        changed — and ``on_grid_reset()`` for bulk rewrites where per-cell
        reporting would be wasteful (treat everything as stale).
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_change_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify_cells(self, cells) -> None:
        for listener in self._listeners:
            listener.on_cells_changed(cells)

    def _notify_reset(self) -> None:
        for listener in self._listeners:
            listener.on_grid_reset()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def in_bounds(self, layer: int, p: Point) -> bool:
        return (
            0 <= layer < self.num_layers
            and 0 <= p.x < self.width
            and 0 <= p.y < self.height
        )

    def _check(self, layer: int, p: Point) -> None:
        if not self.in_bounds(layer, p):
            raise GridError(f"({layer}, {p}) outside {self.num_layers}x{self.width}x{self.height} grid")

    def owner(self, layer: int, p: Point) -> int:
        """Occupancy of a cell: CellState.FREE, CellState.BLOCKED, or a net id."""
        self._check(layer, p)
        return int(self._occ[layer, p.x, p.y])

    def is_free(self, layer: int, p: Point) -> bool:
        return self.owner(layer, p) == CellState.FREE

    def is_available(self, layer: int, p: Point, net_id: int) -> bool:
        """Free, or already owned by the same net (re-entrant paths are fine)."""
        owner = self.owner(layer, p)
        return owner == CellState.FREE or owner == net_id

    def utilization(self) -> float:
        """Fraction of cells that are owned or blocked."""
        used = int(np.count_nonzero(self._occ != int(CellState.FREE)))
        return used / self._occ.size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def block(self, layer: int, rect: Rect) -> None:
        """Mark every cell of ``rect`` (track coords) on ``layer`` as blocked."""
        self._check(layer, Point(rect.xlo, rect.ylo))
        self._check(layer, Point(rect.xhi - 1, rect.yhi - 1))
        self._occ[layer, rect.xlo : rect.xhi, rect.ylo : rect.yhi] = int(
            CellState.BLOCKED
        )
        if self._listeners:
            self._notify_reset()

    def occupy(self, layer: int, p: Point, net_id: int) -> None:
        if net_id < 0:
            raise GridError(f"net ids must be non-negative, got {net_id}")
        owner = self.owner(layer, p)
        if owner not in (int(CellState.FREE), net_id):
            raise GridError(f"cell ({layer}, {p}) already owned by net {owner}")
        if owner == net_id:
            return  # no occupancy change, nothing to notify
        self._occ[layer, p.x, p.y] = net_id
        if self._listeners:
            self._notify_cells(((layer, p.x, p.y),))

    def occupy_many(self, cells: Iterable, net_id: int) -> None:
        """Occupy many ``(layer, x, y)`` cells with one owner check and one
        change notification.

        Equivalent to calling :meth:`occupy` per cell in order — including
        the duplicate/already-owned skip and the error raised on a foreign
        owner — but the happy path validates and writes in bulk and
        notifies listeners once with the changed cells in order. Any
        out-of-bounds or conflicting cell falls back to the sequential
        loop, which reproduces the exact partial-write-then-raise
        behaviour of the scalar path.
        """
        if net_id < 0:
            raise GridError(f"net ids must be non-negative, got {net_id}")
        cells = list(cells)
        if not cells:
            return
        if len(cells) < 48:
            # Typical commits touch a couple dozen cells; a direct loop
            # beats the array conversion + masked writes at that size.
            occ = self._occ
            free = int(CellState.FREE)
            num_layers, width, height = self.num_layers, self.width, self.height
            changed: List = []
            try:
                for layer, x, y in cells:
                    if not (
                        0 <= layer < num_layers and 0 <= x < width and 0 <= y < height
                    ):
                        raise GridError(
                            f"({layer}, {Point(int(x), int(y))}) outside "
                            f"{num_layers}x{width}x{height} grid"
                        )
                    owner = occ[layer, x, y]
                    if owner == free:
                        occ[layer, x, y] = net_id
                        changed.append((layer, x, y))
                    elif owner != net_id:
                        raise GridError(
                            f"cell ({layer}, {Point(int(x), int(y))}) "
                            f"already owned by net {owner}"
                        )
            finally:
                # On a mid-batch error listeners still must hear about
                # the cells already written (the scalar loop notifies as
                # it goes; one batched notification is equivalent).
                if changed and self._listeners:
                    self._notify_cells(changed)
            return
        arr = np.asarray(cells, dtype=np.int64).reshape(-1, 3)
        ls, xs, ys = arr[:, 0], arr[:, 1], arr[:, 2]
        in_bounds = (
            (ls >= 0)
            & (ls < self.num_layers)
            & (xs >= 0)
            & (xs < self.width)
            & (ys >= 0)
            & (ys < self.height)
        )
        if not in_bounds.all():
            for layer, x, y in arr:
                self.occupy(int(layer), Point(int(x), int(y)), net_id)
            return
        # First occurrence per cell: a repeated cell writes and notifies
        # only once in the scalar loop (the second visit sees owner ==
        # net_id and skips), so deduplicate before reading owners.
        packed = (ls * self.width + xs) * self.height + ys
        first = np.unique(packed, return_index=True)[1]
        if first.size != packed.size:
            first.sort()
            arr = arr[first]
            ls, xs, ys = arr[:, 0], arr[:, 1], arr[:, 2]
        owners = self._occ[ls, xs, ys]
        conflict = (owners != int(CellState.FREE)) & (owners != net_id)
        if conflict.any():
            for layer, x, y in arr:
                self.occupy(int(layer), Point(int(x), int(y)), net_id)
            return
        fresh = owners != net_id
        if not fresh.any():
            return
        changed = arr[fresh]
        self._occ[changed[:, 0], changed[:, 1], changed[:, 2]] = net_id
        if self._listeners:
            self._notify_cells(
                [(int(l), int(x), int(y)) for l, x, y in changed]
            )

    def occupy_segment(self, seg: Segment, net_id: int) -> None:
        for p in seg.points():
            self.occupy(seg.layer, p, net_id)

    def release(self, layer: int, p: Point, net_id: int) -> None:
        """Free a cell owned by ``net_id`` (no-op when owned by someone else)."""
        if self.owner(layer, p) == net_id:
            self._occ[layer, p.x, p.y] = int(CellState.FREE)
            if self._listeners:
                self._notify_cells(((layer, p.x, p.y),))

    def release_net(self, net_id: int) -> int:
        """Free every cell owned by ``net_id``; returns the number released."""
        mask = self._occ == net_id
        count = int(np.count_nonzero(mask))
        if count and self._listeners:
            changed = [
                (int(l), int(x), int(y)) for l, x, y in np.argwhere(mask)
            ]
            self._occ[mask] = int(CellState.FREE)
            self._notify_cells(changed)
            return count
        self._occ[mask] = int(CellState.FREE)
        return count

    # ------------------------------------------------------------------ #
    # Geometry lowering
    # ------------------------------------------------------------------ #

    def segment_to_nm(self, seg: Segment) -> Rect:
        """Physical nm rectangle of a wire segment (centred, w_line wide)."""
        tg = self.track_grid
        half = tg.wire_width_nm // 2
        ax, ay = tg.track_center_nm(seg.a.x), tg.track_center_nm(seg.a.y)
        bx, by = tg.track_center_nm(seg.b.x), tg.track_center_nm(seg.b.y)
        return Rect(
            min(ax, bx) - half,
            min(ay, by) - half,
            max(ax, bx) + half,
            max(ay, by) + half,
        )

    def layer_direction(self, layer: int) -> Direction:
        if not 0 <= layer < self.num_layers:
            raise GridError(f"no layer {layer}")
        return self.layers[layer].direction

    def cells_of_net(self, net_id: int) -> Iterator[tuple]:
        """Yield (layer, Point) for every cell owned by ``net_id``."""
        coords = np.argwhere(self._occ == net_id)
        for layer, x, y in coords:
            yield int(layer), Point(int(x), int(y))

    def blocked_cells(self, layer: int) -> int:
        return int(np.count_nonzero(self._occ[layer] == int(CellState.BLOCKED)))

    def snapshot_window(self, bounds) -> np.ndarray:
        """Owned copy of the occupancy inside ``(xlo, xhi, ylo, yhi)``.

        All layers, bounds inclusive — the parallel batch router ships
        these snapshots to workers as self-contained subproblems. The
        copy is independent of later grid mutations.
        """
        xlo, xhi, ylo, yhi = bounds
        return self._occ[:, xlo : xhi + 1, ylo : yhi + 1].copy()

    def copy(self) -> "RoutingGrid":
        """Deep copy (occupancy included) — used by what-if searches."""
        clone = RoutingGrid(self.width, self.height, self.layers, self.rules)
        clone._occ = self._occ.copy()
        return clone

"""Multi-layer grid routing plane.

The paper routes on a grid whose pitch is one wire plus one spacer, with
three routing layers in alternating preferred directions (H-V-H). This
package provides the plane: layers, per-cell occupancy (free / blocked /
owned-by-net), vias, and the nm geometry of a grid cell.
"""

from .layer import Direction, RoutingLayer, default_layer_stack
from .routing_grid import CellState, RoutingGrid
from .via import Via

__all__ = [
    "Direction",
    "RoutingLayer",
    "default_layer_stack",
    "CellState",
    "RoutingGrid",
    "Via",
]

"""Vias between adjacent routing layers."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GridError
from ..geometry import Point


@dataclass(frozen=True, order=True)
class Via:
    """A via connecting layer ``lower`` to ``lower + 1`` at grid point ``at``."""

    lower: int
    at: Point

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise GridError(f"via lower layer must be >= 0, got {self.lower}")

    @property
    def upper(self) -> int:
        return self.lower + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Via(L{self.lower}->L{self.upper} @ {self.at})"

"""Routing layers and preferred directions."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import GridError


class Direction(enum.Enum):
    """Preferred routing direction of a layer."""

    HORIZONTAL = "H"
    VERTICAL = "V"

    @property
    def orthogonal(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


@dataclass(frozen=True)
class RoutingLayer:
    """One metal layer of the routing stack.

    SADP constrains each layer to its preferred direction: the core/spacer
    flow of a layer is printed with lines along one orientation, so the
    router never jogs within a layer (it changes layers instead). That is
    also the model the paper's scenario analysis assumes.
    """

    index: int
    name: str
    direction: Direction

    def __post_init__(self) -> None:
        if self.index < 0:
            raise GridError(f"layer index must be >= 0, got {self.index}")


def default_layer_stack(num_layers: int = 3) -> List[RoutingLayer]:
    """The benchmark stack: M1 horizontal, M2 vertical, M3 horizontal, ...

    Every benchmark in the paper uses three routing layers; the generator
    here supports any count with alternating directions.
    """
    if num_layers <= 0:
        raise GridError(f"need at least one layer, got {num_layers}")
    layers = []
    for i in range(num_layers):
        direction = Direction.HORIZONTAL if i % 2 == 0 else Direction.VERTICAL
        layers.append(RoutingLayer(index=i, name=f"M{i + 1}", direction=direction))
    return layers

"""The paper's primary contribution: overlay scenarios, the overlay
constraint graph, pseudo-coloring, linear-time color flipping, and cut
conflict analysis."""

from .relation import Direction2, GeometryRelation, classify_relation
from .scenarios import (
    HARD,
    ScenarioType,
    ScenarioRule,
    SCENARIO_RULES,
    scenario_for_relation,
)
from .scenario_detect import (
    DetectedScenario,
    ScenarioDetector,
    ShapeRecord,
    VectorScenarioDetector,
    make_detector,
)
from .edges import ConstraintEdge, EdgeKind
from .edge_store import EdgeStore
from .odd_cycle import ParityUnionFind
from .constraint_graph import OverlayConstraintGraph
from .constraint_graph_soa import SoAOverlayConstraintGraph, make_constraint_graph
from .pseudo_color import pseudo_color
from .color_flip import flip_colors, optimal_tree_coloring
from .cut_conflict import CutConflict, CutConflictChecker

__all__ = [
    "Direction2",
    "GeometryRelation",
    "classify_relation",
    "HARD",
    "ScenarioType",
    "ScenarioRule",
    "SCENARIO_RULES",
    "scenario_for_relation",
    "DetectedScenario",
    "ScenarioDetector",
    "ShapeRecord",
    "VectorScenarioDetector",
    "make_detector",
    "ConstraintEdge",
    "EdgeKind",
    "EdgeStore",
    "ParityUnionFind",
    "OverlayConstraintGraph",
    "SoAOverlayConstraintGraph",
    "make_constraint_graph",
    "pseudo_color",
    "flip_colors",
    "optimal_tree_coloring",
    "CutConflict",
    "CutConflictChecker",
]

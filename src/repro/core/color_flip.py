"""Linear-time color flipping (Section III-C, Theorem 4).

Fixing net colors at route time wastes routing resources; the paper instead
re-optimises colors globally whenever a freshly routed net induces too much
side overlay, and once more after all nets are routed. The algorithm:

1. **Super-vertex contraction** — nets joined by hard edges have forced
   relative colors (parity); each hard-connected group collapses to one
   *unit* with two legal colorings. This subsumes the paper's even-cycle
   reduction (Fig. 12) and its dummy vertices.
2. **Maximum spanning tree** — per component of the (contracted) graph,
   keep the most significant soft edges; edge weight is how much side
   overlay mis-coloring that edge can cost (hard edges weigh infinitely,
   but they are already inside units).
3. **Flipping-graph DP** — every unit splits into a CORE and a SECOND
   vertex; Eq. (4) computes the minimum subtree cost bottom-up; a
   backtrace reads off the optimal assignment. O(V + E) total.

On graphs whose contracted soft structure is a forest the result is
globally optimal (Theorem 4); non-tree soft edges are ignored during the
DP, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..color import Color
from .constraint_graph import OverlayConstraintGraph
from .edges import ConstraintEdge
from .odd_cycle import ParityUnionFind
from .scenarios import HARD

_COLORS = (Color.CORE, Color.SECOND)
_IDX = {Color.CORE: 0, Color.SECOND: 1}

#: A 2x2 cost matrix m[color_a][color_b] over unit root colors.
CostMatrix = List[List[float]]


def _zero_matrix() -> CostMatrix:
    return [[0.0, 0.0], [0.0, 0.0]]


def _matrix_spread(m: CostMatrix) -> float:
    flat = [m[i][j] for i in range(2) for j in range(2)]
    return max(flat) - min(flat)


class _UnitGraph:
    """The contracted (super-vertex) view of one OCG component."""

    def __init__(self) -> None:
        self.units: List[int] = []  # unit ids are hard-UF roots, stable order
        self.members: Dict[int, List[Tuple[int, int]]] = {}  # unit -> [(net, parity)]
        self.self_cost: Dict[int, List[float]] = {}  # unit -> [cost_C, cost_S]
        self.pair_cost: Dict[Tuple[int, int], CostMatrix] = {}  # (u<v) -> matrix

    def add_pair_cost(self, a: int, b: int, matrix: CostMatrix) -> None:
        if a == b:
            raise ValueError("self edges go to self_cost")
        if a > b:
            a, b = b, a
            matrix = [[matrix[j][i] for j in range(2)] for i in range(2)]
        acc = self.pair_cost.get((a, b))
        if acc is None:
            # Adopt the caller's matrix outright — callers hand over a
            # fresh one per edge, so no zero-matrix allocation is needed
            # (and 0.0 + x == x bit-exactly for these non-negative costs).
            self.pair_cost[(a, b)] = matrix
            return
        for i in range(2):
            for j in range(2):
                acc[i][j] += matrix[i][j]


def _contract(
    edges: Sequence[ConstraintEdge], nets: Iterable[int]
) -> Optional[_UnitGraph]:
    """Contract hard components; None when hard edges are inconsistent."""
    uf = ParityUnionFind()
    for net in nets:
        uf.add(net)
    for edge in edges:
        if edge.kind.is_hard and not uf.union(edge.u, edge.v, edge.parity):
            return None

    ug = _UnitGraph()
    for net in sorted(set(nets)):
        root, parity = uf.find(net)
        if root not in ug.members:
            ug.members[root] = []
            ug.units.append(root)
            ug.self_cost[root] = [0.0, 0.0]
        ug.members[root].append((net, parity))

    for edge in edges:
        if edge.kind.is_hard:
            continue  # already encoded in the parities
        root_u, pu = uf.find(edge.u)
        root_v, pv = uf.find(edge.v)
        if root_u == root_v:
            # Cost depends only on the unit's root color.
            for color in _COLORS:
                cu = color if pu == 0 else color.flipped
                cv = color if pv == 0 else color.flipped
                ug.self_cost[root_u][_IDX[color]] += edge.dp_cost(cu, cv)
        else:
            # Built as a literal (in _COLORS == _IDX order) — no scratch
            # zero matrix per soft edge.
            matrix = [
                [
                    edge.dp_cost(
                        ca if pu == 0 else ca.flipped,
                        cb if pv == 0 else cb.flipped,
                    )
                    for cb in _COLORS
                ]
                for ca in _COLORS
            ]
            ug.add_pair_cost(root_u, root_v, matrix)
    return ug


def _maximum_spanning_forest(ug: _UnitGraph) -> Dict[int, List[Tuple[int, CostMatrix]]]:
    """Kruskal by descending spread; returns adjacency of the kept edges."""
    uf = ParityUnionFind()  # reused as a plain union-find (parity 0)
    for unit in ug.units:
        uf.add(unit)
    ranked = sorted(
        ug.pair_cost.items(), key=lambda kv: (-_matrix_spread(kv[1]), kv[0])
    )
    adjacency: Dict[int, List[Tuple[int, CostMatrix]]] = {u: [] for u in ug.units}
    for (a, b), matrix in ranked:
        if uf.same_set(a, b):
            continue  # non-tree edge: ignored by the DP, as in the paper
        uf.union(a, b, 0)
        adjacency[a].append((b, matrix))
        transposed = [[matrix[j][i] for j in range(2)] for i in range(2)]
        adjacency[b].append((a, transposed))
    return adjacency


def optimal_tree_coloring(
    adjacency: Dict[int, List[Tuple[int, CostMatrix]]],
    self_cost: Dict[int, List[float]],
    root: int,
) -> Tuple[Dict[int, Color], float]:
    """Eq. (4): bottom-up DP on a tree, then backtrace. O(V + E).

    ``adjacency[u]`` lists ``(v, matrix)`` with ``matrix[color_u][color_v]``;
    the tree is explored from ``root``. Returns (unit colors, total cost).
    """
    # Iterative DFS ordering (explicit stack: components can be huge).
    order: List[int] = []
    parent: Dict[int, Optional[int]] = {root: None}
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for child, _ in adjacency.get(node, ()):
            if child not in parent:
                parent[child] = node
                stack.append(child)

    cost: Dict[int, List[float]] = {}
    pick: Dict[int, Dict[int, List[int]]] = {}  # node -> child -> best child color per node color
    for node in reversed(order):
        c = list(self_cost.get(node, [0.0, 0.0]))
        pick[node] = {}
        for child, matrix in adjacency.get(node, ()):
            if parent.get(child) != node:
                continue
            best_for = []
            for i in range(2):
                options = [cost[child][j] + matrix[i][j] for j in range(2)]
                j_best = 0 if options[0] <= options[1] else 1
                best_for.append(j_best)
                c[i] += options[j_best]
            pick[node][child] = best_for
        cost[node] = c

    colors: Dict[int, Color] = {}
    root_idx = 0 if cost[root][0] <= cost[root][1] else 1
    total = cost[root][root_idx]
    colors[root] = _COLORS[root_idx]
    for node in order:
        i = _IDX[colors[node]]
        for child, chosen in pick[node].items():
            colors[child] = _COLORS[chosen[i]]
    return colors, total


def flip_colors(
    graph: OverlayConstraintGraph,
    scope: Optional[Set[int]] = None,
    refine: bool = True,
) -> Dict[int, Color]:
    """Optimal color assignment of the graph (or of ``scope``'s components).

    Runs the paper's spanning-tree DP (optimal when the contracted soft
    structure is a forest), then — with ``refine`` — a bounded greedy
    sweep over *all* edges, which can only improve on cyclic components
    whose non-tree edges the DP ignored.

    Returns a fresh net -> color mapping for every net in scope. Raises
    :class:`~repro.errors.ColoringError` when the hard edges alone are
    unsatisfiable (the router prevents this by construction).

    Results are memoised per component on the graph itself (keyed by the
    component's smallest net and versioned by its mutation stamps): the
    endgame's repeated full-layout flips and the per-commit component
    flips only re-run the contraction + spanning forest + DP for
    components something actually changed in. The cache is exact — a hit
    requires identical membership and no structural mutation since the
    entry was stored — so cached and fresh colorings are identical;
    ``graph.flip_cache_enabled = False`` disables it outright.
    """
    from ..errors import ColoringError

    if scope is None:
        components = graph.components()
    else:
        components = []
        remaining = set(scope)
        while remaining:
            comp = graph.component_of(next(iter(remaining)))
            components.append(comp)
            remaining -= comp

    cache = getattr(graph, "flip_cache", None)
    if cache is not None and not getattr(graph, "flip_cache_enabled", False):
        cache = None

    result: Dict[int, Color] = {}
    for comp in components:
        key = version = None
        if cache is not None:
            key = (min(comp), refine)
            version = graph.component_version(comp)
            hit = cache.get(key)
            if hit is not None and hit[0] == version and hit[1] == comp:
                result.update(hit[2])
                obs.counter_inc("flip_cache_lookups_total", outcome="hit")
                continue
        comp_colors = _color_component(graph, comp, refine, ColoringError)
        if cache is not None:
            if len(cache) > 1024:
                cache.clear()  # bounded; cleared wholesale on overflow
            cache[key] = (version, frozenset(comp), comp_colors)
            obs.counter_inc("flip_cache_lookups_total", outcome="miss")
        result.update(comp_colors)
    return result


def _color_component(
    graph: OverlayConstraintGraph, comp: Set[int], refine: bool, ColoringError
) -> Dict[int, Color]:
    """Contract + maximum spanning forest + DP (+ refine) for one component."""
    ug = graph.contract_component(comp)
    if ug is None:
        raise ColoringError("hard-constraint odd cycle: no legal coloring")
    adjacency = _maximum_spanning_forest(ug)
    # The forest may still have several trees (soft edges need not
    # connect all units); DP each tree from its smallest unit.
    unit_colors: Dict[int, Color] = {}
    seen: Set[int] = set()
    for unit in ug.units:
        if unit in seen:
            continue
        tree_nodes = _reachable(adjacency, unit)
        seen |= tree_nodes
        tree_colors, _ = optimal_tree_coloring(
            {n: adjacency[n] for n in tree_nodes}, ug.self_cost, unit
        )
        unit_colors.update(tree_colors)
    if refine:
        _refine_unit_colors(ug, unit_colors)
    result: Dict[int, Color] = {}
    for u, color in unit_colors.items():
        for net, parity in ug.members[u]:
            result[net] = color if parity == 0 else color.flipped
    return result


def _refine_unit_colors(
    ug: _UnitGraph, colors: Dict[int, Color], max_sweeps: int = 3
) -> None:
    """Greedy refinement over the FULL edge set (non-tree included).

    First considers the global polarity flip — cost-neutral on tree edges
    (the DP tie-breaks arbitrarily between mirror assignments) but not on
    asymmetric non-tree edges — then bounded single-unit flip sweeps.
    """
    incident: Dict[int, List[Tuple[int, CostMatrix]]] = {u: [] for u in ug.units}
    for (a, b), matrix in ug.pair_cost.items():
        incident[a].append((b, matrix))
        incident[b].append((a, [[matrix[j][i] for j in range(2)] for i in range(2)]))

    def total(assign: Dict[int, Color]) -> float:
        cost = sum(
            ug.self_cost[u][_IDX[assign[u]]] for u in ug.units
        )
        for (a, b), matrix in ug.pair_cost.items():
            cost += matrix[_IDX[assign[a]]][_IDX[assign[b]]]
        return cost

    mirrored = {u: c.flipped for u, c in colors.items()}
    if total(mirrored) < total(colors):
        colors.update(mirrored)

    for _ in range(max_sweeps):
        improved = False
        for unit in ug.units:
            current = _IDX[colors[unit]]
            flipped = 1 - current
            delta = ug.self_cost[unit][flipped] - ug.self_cost[unit][current]
            for other, matrix in incident[unit]:
                j = _IDX[colors[other]]
                delta += matrix[flipped][j] - matrix[current][j]
            if delta < 0:
                colors[unit] = _COLORS[flipped]
                improved = True
        if not improved:
            break


def _reachable(
    adjacency: Dict[int, List[Tuple[int, CostMatrix]]], start: int
) -> Set[int]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for other, _ in adjacency.get(node, ()):
            if other not in seen:
                seen.add(other)
                stack.append(other)
    return seen


def brute_force_coloring(
    graph: OverlayConstraintGraph, nets: Sequence[int]
) -> Tuple[Dict[int, Color], float]:
    """Exhaustive optimum over all 2^n assignments (tests/benchmarks only).

    Prices with the same DP cost as :func:`flip_colors`, so on soft-forest
    instances the two must agree (Theorem 4's optimality claim).
    """
    nets = list(nets)
    edges = graph.edges_within(set(nets))
    best: Optional[Dict[int, Color]] = None
    best_cost = float("inf")
    for mask in range(1 << len(nets)):
        coloring = {
            net: (Color.SECOND if (mask >> i) & 1 else Color.CORE)
            for i, net in enumerate(nets)
        }
        total = 0.0
        for edge in edges:
            total += edge.dp_cost(coloring[edge.u], coloring[edge.v])
            if total >= best_cost:
                break
        if total < best_cost:
            best_cost = total
            best = coloring
    assert best is not None
    return best, best_cost

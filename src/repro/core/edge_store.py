"""Structure-of-arrays storage for constraint edges.

:class:`EdgeStore` keeps the columns of every scenario edge — endpoints,
kind, parity, the 4-vector cost/cut-risk matrices (ALL_PAIRS order), and
overlap — as typed numpy arrays instead of per-object
:class:`~repro.core.edges.ConstraintEdge` instances. Batch appends build
whole edge blocks from precomputed per-(scenario, tip-owner) tables, and
the store exposes a reusable CSR adjacency over its live rows for
vectorized traversals (hard-edge parity checks, component sweeps).

The store is the backing of the SoA constraint-graph backend
(:class:`~repro.core.constraint_graph_soa.SoAOverlayConstraintGraph`);
rows materialise back into bit-identical ``ConstraintEdge`` objects on
demand, so object-consuming callers (reports, tests, the brute-force
oracle) keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..color import ALL_PAIRS
from .edges import _KIND_BY_SCENARIO, CUT_VETO, ConstraintEdge, EdgeKind
from .scenarios import SCENARIO_RULES, ScenarioType

#: Stable codings: enum declaration order, shared by every consumer.
SCENARIO_ORDER: Tuple[ScenarioType, ...] = tuple(ScenarioType)
SCENARIO_INDEX: Dict[ScenarioType, int] = {s: i for i, s in enumerate(SCENARIO_ORDER)}
KIND_ORDER: Tuple[EdgeKind, ...] = tuple(EdgeKind)
KIND_INDEX: Dict[EdgeKind, int] = {k: i for i, k in enumerate(KIND_ORDER)}

HARD_DIFF_CODE = KIND_INDEX[EdgeKind.HARD_DIFF]
HARD_SAME_CODE = KIND_INDEX[EdgeKind.HARD_SAME]

#: Per-kind-code hardness lookup (faster than ``np.isin`` on the tiny
#: per-commit batches the router produces).
KIND_IS_HARD = np.array([k.is_hard for k in KIND_ORDER], dtype=bool)


def _build_tables():
    """Fold Table II + orientation into dense lookup tables.

    ``cost[s, tip, p]`` / ``risk[s, tip, p]`` give the base cost and
    cut-risk flag of scenario ``s`` for color pair ``p`` (ALL_PAIRS
    order) with ``tip`` = 1 when A is the tip-owner — exactly what
    :func:`~repro.core.scenarios.oriented_cost` computes per call, minus
    the overlap scaling (applied at append time).
    """
    n = len(SCENARIO_ORDER)
    cost = np.zeros((n, 2, 4), dtype=np.float64)
    risk = np.zeros((n, 2, 4), dtype=bool)
    scales = np.zeros(n, dtype=bool)
    kind = np.zeros(n, dtype=np.int8)
    parity = np.full(n, -1, dtype=np.int8)
    for i, stype in enumerate(SCENARIO_ORDER):
        rule = SCENARIO_RULES[stype]
        for tip in (0, 1):
            for k, pair in enumerate(ALL_PAIRS):
                effective = pair if tip else pair.swapped
                cost[i, tip, k] = rule.cost[effective]
                risk[i, tip, k] = effective in rule.cut_risk
        scales[i] = rule.scales_with_overlap
        ekind = _KIND_BY_SCENARIO[stype]
        kind[i] = KIND_INDEX[ekind]
        if ekind is EdgeKind.HARD_DIFF:
            parity[i] = 1
        elif ekind is EdgeKind.HARD_SAME:
            parity[i] = 0
    return cost, risk, scales, kind, parity


SCEN_COST, SCEN_RISK, SCEN_SCALES, SCEN_KIND, SCEN_PARITY = _build_tables()

#: DP cost table (physical + CUT_VETO on risky finite entries) for
#: overlap == 1 — precomputing it collapses ``ConstraintEdge.dp_cost``
#: into a table read. Overlap-scaled rows recompute at append time.
SCEN_DP = SCEN_COST.copy()
_finite = ~np.isinf(SCEN_DP)
SCEN_DP[_finite] += CUT_VETO * SCEN_RISK[_finite]
del _finite

# Python-native twins of the tables for the scalar (small-batch) append
# path: nested-list indexing is ~10x cheaper than numpy scalar reads.
_SCEN_COST_PY = [[tuple(t) for t in s] for s in SCEN_COST.tolist()]
_SCEN_RISK_PY = [[tuple(t) for t in s] for s in SCEN_RISK.tolist()]
_SCEN_DP_PY = [[tuple(t) for t in s] for s in SCEN_DP.tolist()]
_SCEN_SCALES_PY = SCEN_SCALES.tolist()
_SCEN_KIND_PY = SCEN_KIND.tolist()
_SCEN_PARITY_PY = SCEN_PARITY.tolist()

#: Batch size below which append/query paths run as plain Python loops
#: over the store's mirror lists — numpy's per-call overhead beats its
#: throughput gain under this point.
SMALL_BATCH = 32


class EdgeStore:
    """Columnar edge storage with incident row lists and a cached CSR.

    Rows are append-only; removal marks rows dead (``alive`` mask) and
    drops them from the incident lists, which preserves the surviving
    rows' relative order exactly like the object path's order-preserving
    list filters.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._cap = max(16, capacity)
        self.u = np.empty(self._cap, dtype=np.int64)
        self.v = np.empty(self._cap, dtype=np.int64)
        self.scenario = np.empty(self._cap, dtype=np.int16)
        self.kind = np.empty(self._cap, dtype=np.int8)
        self.parity = np.empty(self._cap, dtype=np.int8)
        self.overlap = np.empty(self._cap, dtype=np.int64)
        self.cost = np.empty((self._cap, 4), dtype=np.float64)
        self.risk = np.zeros((self._cap, 4), dtype=bool)
        #: DP cost (physical + CUT_VETO on risky finite pairs) — computed
        #: once per row at append instead of per dp_cost() query.
        self.dp = np.empty((self._cap, 4), dtype=np.float64)
        self.alive = np.zeros(self._cap, dtype=bool)
        # Python mirrors of the scalar-read columns. The router's commits
        # produce batches of a handful of edges and queries of a handful
        # of incident rows; plain list indexing serves those ~10x faster
        # than numpy scalar extraction, while the arrays above serve the
        # genuinely wide operations (evaluate, CSR, contraction).
        self.us: List[int] = []
        self.vs: List[int] = []
        self.kinds: List[int] = []
        self.pars: List[int] = []
        self.scens: List[int] = []
        self.ovrs: List[int] = []
        self.cost4: List[Tuple[float, float, float, float]] = []
        self.risk4: List[Tuple[bool, bool, bool, bool]] = []
        self.dp4: List[Tuple[float, float, float, float]] = []
        #: Rows below this watermark are materialized in the numpy
        #: columns; scalar appends only touch the mirrors and the arrays
        #: catch up in bulk (:meth:`_sync`) when a wide consumer needs
        #: them.
        self._synced = 0
        #: Rows ever allocated (live + dead).
        self.size = 0
        #: Live-row count.
        self.live = 0
        #: net id -> incident live rows in insertion order.
        self.incident: Dict[int, List[int]] = {}
        #: Bumped on every mutation; invalidates the CSR cache.
        self.stamp = 0
        self._csr_cache: Dict[str, Tuple[int, tuple]] = {}

    # ------------------------------------------------------------------ #
    # Growth / append
    # ------------------------------------------------------------------ #

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < self.size + need:
            cap *= 2
        if cap == self._cap:
            return
        for name in ("u", "v", "scenario", "kind", "parity", "overlap", "alive"):
            old = getattr(self, name)
            fresh = np.zeros(cap, dtype=old.dtype) if name == "alive" else np.empty(
                cap, dtype=old.dtype
            )
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        for name in ("cost", "risk", "dp"):
            old = getattr(self, name)
            fresh = np.empty((cap, 4), dtype=old.dtype)
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        self._cap = cap

    def _sync(self) -> None:
        """Bring the numpy columns up to date with the mirror lists.

        One slice assignment per column regardless of how many scalar
        appends happened since the last wide read.
        """
        k = self._synced
        n = self.size
        if k == n:
            return
        self.u[k:n] = self.us[k:n]
        self.v[k:n] = self.vs[k:n]
        self.scenario[k:n] = self.scens[k:n]
        self.kind[k:n] = self.kinds[k:n]
        self.parity[k:n] = self.pars[k:n]
        self.overlap[k:n] = self.ovrs[k:n]
        self.cost[k:n] = self.cost4[k:n]
        self.risk[k:n] = self.risk4[k:n]
        self.dp[k:n] = self.dp4[k:n]
        self._synced = n

    def append_scenarios(
        self,
        us: Sequence[int],
        vs: Sequence[int],
        scodes: Sequence[int],
        tips: Sequence[bool],
        overlaps: Sequence[int],
    ) -> range:
        """Append one row per detected scenario instance; returns row ids.

        The cost/risk/dp columns come from the precomputed per-(scenario,
        tip) tables — the batch equivalent of ``ConstraintEdge.
        from_scenario`` per instance. Small batches (the router's typical
        per-commit case) fill rows with a plain Python loop; wide batches
        gather from the numpy tables.
        """
        n = len(us)
        hi = self.size + n
        if n == 0:
            return range(self.size, self.size)
        self._grow(n)
        lo = self.size
        if n < SMALL_BATCH:
            inf = float("inf")
            for i in range(n):
                s = scodes[i]
                t = 1 if tips[i] else 0
                ovr = overlaps[i]
                if ovr < 1:
                    ovr = 1
                c4 = _SCEN_COST_PY[s][t]
                r4 = _SCEN_RISK_PY[s][t]
                if _SCEN_SCALES_PY[s] and ovr != 1:
                    # inf * k == inf and the finite entries are small
                    # ints, so the multiply is exact (== oriented_cost).
                    c4 = tuple(c * ovr for c in c4)
                    d4 = tuple(
                        c + CUT_VETO if (r and c != inf) else c
                        for c, r in zip(c4, r4)
                    )
                else:
                    d4 = _SCEN_DP_PY[s][t]
                self.us.append(us[i])
                self.vs.append(vs[i])
                self.scens.append(s)
                self.kinds.append(_SCEN_KIND_PY[s])
                self.pars.append(_SCEN_PARITY_PY[s])
                self.ovrs.append(ovr)
                self.cost4.append(c4)
                self.risk4.append(r4)
                self.dp4.append(d4)
        else:
            self._sync()
            sc = np.asarray(scodes, dtype=np.int16)
            tip = np.asarray(tips, dtype=np.int64)
            ov = np.maximum(np.asarray(overlaps, dtype=np.int64), 1)
            self.u[lo:hi] = np.asarray(us, dtype=np.int64)
            self.v[lo:hi] = np.asarray(vs, dtype=np.int64)
            self.scenario[lo:hi] = sc
            kinds = SCEN_KIND[sc]
            pars = SCEN_PARITY[sc]
            self.kind[lo:hi] = kinds
            self.parity[lo:hi] = pars
            self.overlap[lo:hi] = ov
            cost = SCEN_COST[sc, tip].copy()
            scale = np.where(SCEN_SCALES[sc], ov, 1)
            # inf * k == inf and the finite entries are small ints, so the
            # multiply is exact and matches oriented_cost bit-for-bit.
            cost *= scale[:, None].astype(np.float64)
            self.cost[lo:hi] = cost
            risk = SCEN_RISK[sc, tip]
            self.risk[lo:hi] = risk
            dp = cost.copy()
            finite = ~np.isinf(dp)
            dp[finite] += CUT_VETO * risk[finite]
            self.dp[lo:hi] = dp
            self.us.extend(int(x) for x in us)
            self.vs.extend(int(x) for x in vs)
            self.scens.extend(sc.tolist())
            self.kinds.extend(kinds.tolist())
            self.pars.extend(pars.tolist())
            self.ovrs.extend(ov.tolist())
            self.cost4.extend(map(tuple, cost.tolist()))
            self.risk4.extend(map(tuple, risk.tolist()))
            self.dp4.extend(map(tuple, dp.tolist()))
            self._synced = hi
        self.alive[lo:hi] = True
        self.size = hi
        self.live += n
        self.stamp += 1
        return range(lo, hi)

    def append_edge(self, edge: ConstraintEdge) -> int:
        """Append one already-built edge object (compat path)."""
        self._grow(1)
        self._sync()
        row = self.size
        self.u[row] = edge.u
        self.v[row] = edge.v
        self.scenario[row] = SCENARIO_INDEX[edge.scenario]
        kcode = KIND_INDEX[edge.kind]
        self.kind[row] = kcode
        if edge.kind is EdgeKind.HARD_DIFF:
            par = 1
        elif edge.kind is EdgeKind.HARD_SAME:
            par = 0
        else:
            par = -1
        self.parity[row] = par
        self.overlap[row] = edge.overlap
        cost = tuple(edge.cost)
        risk = tuple(edge.cut_risk)
        inf = float("inf")
        dp = tuple(
            c + CUT_VETO if (r and c != inf) else c for c, r in zip(cost, risk)
        )
        self.cost[row] = cost
        self.risk[row] = risk
        self.dp[row] = dp
        self.alive[row] = True
        self.us.append(edge.u)
        self.vs.append(edge.v)
        self.scens.append(SCENARIO_INDEX[edge.scenario])
        self.kinds.append(kcode)
        self.pars.append(par)
        self.ovrs.append(edge.overlap)
        self.cost4.append(cost)
        self.risk4.append(risk)
        self.dp4.append(dp)
        self.size += 1
        self.live += 1
        self.stamp += 1
        self._synced = self.size
        return row

    def link(self, row: int) -> None:
        """Register ``row`` on both endpoints' incident lists."""
        self.incident.setdefault(self.us[row], []).append(row)
        self.incident.setdefault(self.vs[row], []).append(row)

    # ------------------------------------------------------------------ #
    # Removal
    # ------------------------------------------------------------------ #

    def kill_net(self, net_id: int) -> List[int]:
        """Drop every row incident to ``net_id``; returns the dead rows."""
        rows = self.incident.pop(net_id, [])
        if not rows:
            return rows
        doomed = set(rows)
        self.alive[np.asarray(rows, dtype=np.int64)] = False
        self.live -= len(rows)
        us = self.us
        vs = self.vs
        for row in rows:
            other = vs[row] if us[row] == net_id else us[row]
            lst = self.incident.get(other)
            if lst is not None:
                kept = [r for r in lst if r not in doomed]
                if kept:
                    self.incident[other] = kept
                else:
                    del self.incident[other]
        self.stamp += 1
        return rows

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def live_rows(self) -> np.ndarray:
        """Live rows in insertion order (== the object path's edge order)."""
        return np.flatnonzero(self.alive[: self.size])

    def dp_cost(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), 4) DP cost: physical + CUT_VETO on risky pairs."""
        self._sync()
        return self.dp[rows]

    def materialize(self, row: int) -> ConstraintEdge:
        """Rebuild the bit-identical ConstraintEdge object of one row."""
        return ConstraintEdge(
            u=self.us[row],
            v=self.vs[row],
            scenario=SCENARIO_ORDER[self.scens[row]],
            kind=KIND_ORDER[self.kinds[row]],
            cost=tuple(float(c) for c in self.cost4[row]),
            cut_risk=tuple(bool(r) for r in self.risk4[row]),
            overlap=int(self.ovrs[row]),
        )

    def materialize_many(self, rows) -> List[ConstraintEdge]:
        return [self.materialize(int(r)) for r in rows]

    # ------------------------------------------------------------------ #
    # CSR adjacency
    # ------------------------------------------------------------------ #

    def csr(self, hard_only: bool = False):
        """Reusable CSR adjacency over the live rows.

        Returns ``(nodes, indptr, targets, parities)``: ``nodes`` is the
        sorted distinct endpoint array, ``indptr``/``targets`` the usual
        CSR pair over *compacted* node indices (each edge appears in both
        directions), and ``parities`` the per-entry edge parity (only
        meaningful with ``hard_only``). Cached until the next mutation.
        """
        key = "hard" if hard_only else "all"
        cached = self._csr_cache.get(key)
        if cached is not None and cached[0] == self.stamp:
            return cached[1]
        self._sync()
        rows = self.live_rows()
        if hard_only and rows.size:
            kinds = self.kind[rows]
            rows = rows[(kinds == HARD_DIFF_CODE) | (kinds == HARD_SAME_CODE)]
        us = self.u[rows]
        vs = self.v[rows]
        nodes = np.unique(np.concatenate((us, vs))) if rows.size else np.empty(
            0, dtype=np.int64
        )
        src = np.concatenate((np.searchsorted(nodes, us), np.searchsorted(nodes, vs)))
        dst = np.concatenate((np.searchsorted(nodes, vs), np.searchsorted(nodes, us)))
        par = (
            np.concatenate((self.parity[rows], self.parity[rows]))
            if rows.size
            else np.empty(0, dtype=np.int8)
        )
        order = np.argsort(src, kind="stable")
        targets = dst[order]
        parities = par[order]
        counts = np.bincount(src, minlength=nodes.size)
        indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        result = (nodes, indptr, targets, parities)
        self._csr_cache[key] = (self.stamp, result)
        return result

    def hard_parity_consistent(self) -> bool:
        """Two-colorability of the live hard edges via CSR BFS.

        Vectorized frontier sweep: propagates parities level by level and
        fails iff some edge closes an odd cycle — the numpy equivalent of
        replaying every hard edge through a fresh parity union-find.
        """
        nodes, indptr, targets, parities = self.csr(hard_only=True)
        n = nodes.size
        if n == 0:
            return True
        color = np.full(n, -1, dtype=np.int8)
        for start in range(n):
            if color[start] >= 0:
                continue
            color[start] = 0
            frontier = np.array([start], dtype=np.int64)
            while frontier.size:
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                # Gather all outgoing CSR entries of the frontier at once.
                offsets = np.repeat(starts, counts) + (
                    np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
                )
                srcs = np.repeat(frontier, counts)
                dsts = targets[offsets]
                want = color[srcs] ^ parities[offsets]
                known = color[dsts] >= 0
                if np.any(color[dsts[known]] != want[known]):
                    return False
                fresh = ~known
                if not np.any(fresh):
                    break
                order = np.argsort(dsts[fresh], kind="stable")
                df = dsts[fresh][order]
                wf = want[fresh][order]
                group_starts = np.concatenate(
                    ([0], np.flatnonzero(np.diff(df)) + 1)
                )
                # All same-level assignments of one node must agree;
                # disagreement is an odd cycle through the frontier.
                if np.any(
                    np.minimum.reduceat(wf, group_starts)
                    != np.maximum.reduceat(wf, group_starts)
                ):
                    return False
                uniq = df[group_starts]
                color[uniq] = wf[group_starts]
                frontier = uniq
        return True

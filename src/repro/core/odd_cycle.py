"""Amortised-constant-time hard odd-cycle detection.

The paper extends the LELE conflict-cycle detection of [18] to the overlay
constraint graph: hard-different edges demand opposite colors (parity 1),
hard-same edges demand equal colors (parity 0; the dummy-vertex encoding of
Fig. 11(b) is parity-equivalent). A set of hard edges is satisfiable iff no
cycle has odd total parity, which a union-find with parity decides in
amortised near-constant time per edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple


class ParityUnionFind:
    """Union-find where each element carries a parity relative to its root.

    ``union(u, v, parity)`` asserts ``color(u) XOR color(v) == parity``.
    It returns ``False`` (and leaves the structure unchanged) when the
    assertion contradicts the existing relations — i.e. the new edge closes
    a hard odd cycle.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._parity: Dict[Hashable, int] = {}  # parity to parent
        #: Lifetime operation tallies — plain ints so the hot path never
        #: touches the observability layer; the constraint graph flushes
        #: deltas into the metrics registry when one is live.
        self.find_ops = 0
        self.union_ops = 0

    def add(self, x: Hashable) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0
            self._parity[x] = 0

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: Hashable) -> Tuple[Hashable, int]:
        """(root, parity of x relative to root), with path compression."""
        self.find_ops += 1
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._rank[x] = 0
            self._parity[x] = 0
            return x, 0
        par = self._parity
        root = x
        parity = 0
        while parent[root] != root:
            parity ^= par[root]
            root = parent[root]
        # Second pass: compress and fix parities.
        node = x
        carried = parity
        while parent[node] != node:
            nxt = parent[node]
            next_carried = carried ^ par[node]
            parent[node] = root
            par[node] = carried
            node = nxt
            carried = next_carried
        return root, parity

    def same_set(self, u: Hashable, v: Hashable) -> bool:
        return self.find(u)[0] == self.find(v)[0]

    def relation(self, u: Hashable, v: Hashable) -> int:
        """Known parity between u and v; raises when not yet related."""
        ru, pu = self.find(u)
        rv, pv = self.find(v)
        if ru != rv:
            raise KeyError(f"{u!r} and {v!r} are not related")
        return pu ^ pv

    def union(self, u: Hashable, v: Hashable, parity: int) -> bool:
        """Merge asserting ``color(u) XOR color(v) == parity``.

        Returns True on success (including redundant consistent edges) and
        False when the edge would close an odd cycle.
        """
        if parity not in (0, 1):
            raise ValueError(f"parity must be 0 or 1, got {parity}")
        self.union_ops += 1
        ru, pu = self.find(u)
        rv, pv = self.find(v)
        if ru == rv:
            return (pu ^ pv) == parity
        # Union by rank; parity of rv relative to ru must be pu ^ parity ^ pv.
        link_parity = pu ^ parity ^ pv
        if self._rank[ru] < self._rank[rv]:
            ru, rv = rv, ru
            # parity of (new child root) rv relative to ru is unchanged by swap
        self._parent[rv] = ru
        self._parity[rv] = link_parity
        if self._rank[ru] == self._rank[rv]:
            self._rank[ru] += 1
        return True

    def components(self) -> Dict[Hashable, list]:
        """root -> members (after full compression)."""
        groups: Dict[Hashable, list] = {}
        for x in list(self._parent):
            root, _ = self.find(x)
            groups.setdefault(root, []).append(x)
        return groups

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Hashable, Hashable, int]]
    ) -> Tuple["ParityUnionFind", bool]:
        """Build from (u, v, parity) triples; second result is consistency."""
        uf = cls()
        ok = True
        for u, v, parity in edges:
            ok &= uf.union(u, v, parity)
        return uf, ok

"""The eleven potential overlay scenarios and their color rules (Table II).

A *potential overlay scenario* is a geometry relationship between two
dependent patterns that induces side overlay under some color assignments.
Theorem 2 enumerates eleven of them for rectangle pairs:

====  ==================  =============================================
Type  Relation tuple      Color behaviour
====  ==================  =============================================
1-a   (0, 1, parallel)    CC and SS produce hard overlays -> forbidden
1-b   (1, 0, parallel)    CS and SC produce hard overlays -> forbidden
2-a   (0, 2, parallel)    CS/SC: assist-core merge -> 2 units per
                          overlapped track (+ cut-conflict risk)
2-b   (2, 0, parallel)    CC/SS: 1 unit; CS/SC: 2 units; never free
2-c   (0, 1, orthogonal)  never induces side overlay (tip overlays only)
2-d   (0, 2, orthogonal)  never induces side overlay
3-a   (1, 1, parallel)    CC: corner cores merge -> 1 unit
3-b   (1, 1, orthogonal)  CC: 1; SC: 1 (cut defines the core's flank);
                          both-second preferred
3-c   (1, 2, orthogonal)  only CS (tip-owner core / flank-owner second)
                          penalised (+ cut-conflict risk)
3-d   (1, 2, parallel)    CS/SC: assist extension merges past the tip
                          -> 1 unit
3-e   (2, 1, parallel)    never induces side overlay
====  ==================  =============================================

Parallel tuples are (along, across) in wire-local axes; orthogonal tuples
are sorted (the paper identifies (x, y, orth) with (y, x, orth)).

The per-scenario cost vectors are the machine-readable form of the paper's
Table II plus Figs. 23-34. Where the supplied text shows only figure
captions, the values were re-derived from first principles with the bitmap
decomposition engine (see ``benchmarks/bench_table2.py``, which regenerates
this table from physics and cross-checks it). Costs are in *units* of side
overlay, one unit = ``w_line``; :data:`HARD` marks assignments that create
hard overlays (side overlay longer than ``w_line``) and are forbidden
outright.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..color import ALL_PAIRS, ColorPair
from .relation import Direction2, GeometryRelation

#: Sentinel cost of a hard-overlay color assignment (strictly forbidden).
HARD: float = float("inf")


class ScenarioType(enum.Enum):
    """The paper's scenario taxonomy (Fig. 9)."""

    T1A = "1-a"
    T1B = "1-b"
    T2A = "2-a"
    T2B = "2-b"
    T2C = "2-c"
    T2D = "2-d"
    T3A = "3-a"
    T3B = "3-b"
    T3C = "3-c"
    T3D = "3-d"
    T3E = "3-e"


@dataclass(frozen=True)
class ScenarioRule:
    """Color rule of one scenario type.

    Attributes
    ----------
    scenario:
        Which scenario this rule describes.
    cost:
        Side-overlay units per color pair; :data:`HARD` = forbidden.
    cut_risk:
        Color pairs that additionally risk a type A cut conflict
        (Section III-D); these are vetoed by the cut-conflict analysis
        even when their overlay cost alone would be acceptable.
    scales_with_overlap:
        True for flank-coupled scenarios (1-a, 2-a) whose overlay length
        grows with the projected overlap of the two wires.
    base_cost:
        The unavoidable side-overlay floor, already included in every
        entry of ``cost``. Only 2-b is non-zero: the paper's Eq. (5)
        charges routing cost ``T2b`` exactly because a 2-b scenario can
        never be colored overlay-free.
    """

    scenario: ScenarioType
    cost: Mapping[ColorPair, float]
    cut_risk: Tuple[ColorPair, ...] = ()
    scales_with_overlap: bool = False
    base_cost: int = 0

    def __post_init__(self) -> None:
        missing = [p for p in ALL_PAIRS if p not in self.cost]
        if missing:
            raise ValueError(f"{self.scenario}: cost vector missing {missing}")

    @property
    def min_cost(self) -> float:
        """'min SO' column of Table II: best achievable side overlay."""
        return min(self.cost.values())

    @property
    def max_finite_cost(self) -> float:
        """'max SO' column of Table II over non-hard assignments."""
        finite = [c for c in self.cost.values() if c != HARD]
        return max(finite) if finite else 0.0

    @property
    def has_hard(self) -> bool:
        return any(c == HARD for c in self.cost.values())

    @property
    def hard_pairs(self) -> Tuple[ColorPair, ...]:
        return tuple(p for p in ALL_PAIRS if self.cost[p] == HARD)

    @property
    def is_trivial(self) -> bool:
        """True when no color assignment ever induces side overlay.

        Types 2-c, 2-d, and 3-e: the paper excludes them from the
        constraint graph entirely.
        """
        return all(c == 0 for c in self.cost.values()) and self.base_cost == 0

    def optimal_pairs(self) -> Tuple[ColorPair, ...]:
        """The color assignments achieving ``min_cost`` ('color rule')."""
        best = self.min_cost
        return tuple(p for p in ALL_PAIRS if self.cost[p] == best)


def _rule(
    scenario: ScenarioType,
    cc: float,
    cs: float,
    sc: float,
    ss: float,
    cut_risk: Tuple[ColorPair, ...] = (),
    scales: bool = False,
    base: int = 0,
) -> ScenarioRule:
    return ScenarioRule(
        scenario=scenario,
        cost={
            ColorPair.CC: cc,
            ColorPair.CS: cs,
            ColorPair.SC: sc,
            ColorPair.SS: ss,
        },
        cut_risk=cut_risk,
        scales_with_overlap=scales,
        base_cost=base,
    )


#: Table II in machine-readable form, keyed by scenario type.
SCENARIO_RULES: Dict[ScenarioType, ScenarioRule] = {
    rule.scenario: rule
    for rule in (
        # Type 1: hard scenarios (Figs. 24-25).
        _rule(ScenarioType.T1A, HARD, 0, 0, HARD, scales=True),
        _rule(
            ScenarioType.T1B,
            0,
            HARD,
            HARD,
            0,
            cut_risk=(ColorPair.CS, ColorPair.SC),
        ),
        # Type 2: aligned soft scenarios (Figs. 26-29).
        _rule(
            ScenarioType.T2A,
            0,
            2,
            2,
            0,
            cut_risk=(ColorPair.CS, ColorPair.SC),
            scales=True,
        ),
        _rule(
            ScenarioType.T2B,
            1,
            2,
            2,
            1,
            cut_risk=(ColorPair.CS,),
            base=1,
        ),
        _rule(ScenarioType.T2C, 0, 0, 0, 0),
        _rule(ScenarioType.T2D, 0, 0, 0, 0),
        # Type 3: diagonal scenarios (Figs. 30-34).
        _rule(ScenarioType.T3A, 1, 0, 0, 0),
        _rule(ScenarioType.T3B, 1, 0, 1, 0),
        _rule(ScenarioType.T3C, 0, 1, 0, 0, cut_risk=(ColorPair.CS,)),
        _rule(ScenarioType.T3D, 0, 1, 1, 0),
        _rule(ScenarioType.T3E, 0, 0, 0, 0),
    )
}


#: Relation tuple -> scenario type, for parallel pairs keyed by
#: (along, across) and orthogonal pairs keyed by the sorted tuple.
_PARALLEL_MAP: Dict[Tuple[int, int], ScenarioType] = {
    (0, 1): ScenarioType.T1A,
    (1, 0): ScenarioType.T1B,
    (0, 2): ScenarioType.T2A,
    (2, 0): ScenarioType.T2B,
    (1, 1): ScenarioType.T3A,
    (1, 2): ScenarioType.T3D,
    (2, 1): ScenarioType.T3E,
}

_ORTHOGONAL_MAP: Dict[Tuple[int, int], ScenarioType] = {
    (0, 1): ScenarioType.T2C,
    (0, 2): ScenarioType.T2D,
    (1, 1): ScenarioType.T3B,
    (1, 2): ScenarioType.T3C,
}


def scenario_for_relation(rel: GeometryRelation) -> Optional[ScenarioType]:
    """Map a dependent-pair relation to its scenario type.

    Returns ``None`` for relations outside the table (these are independent
    by Theorem 2 and should not have been classified as dependent).
    """
    if rel.direction is Direction2.PARALLEL:
        return _PARALLEL_MAP.get((rel.along, rel.across))
    key = (min(rel.along, rel.across), max(rel.along, rel.across))
    return _ORTHOGONAL_MAP.get(key)


def oriented_cost(
    rule: ScenarioRule, pair: ColorPair, a_is_tip_owner: bool, overlap: int
) -> float:
    """Cost of a color pair for a *detected* scenario instance.

    Handles the two instance-specific twists:

    * asymmetric scenarios (3-b, 3-c) are tabulated with A = tip-owner;
      when the detected pair has B as the tip-owner the pair is swapped;
    * flank-coupled scenarios scale with the projected overlap length.
    """
    effective = pair if a_is_tip_owner else pair.swapped
    cost = rule.cost[effective]
    if cost == HARD:
        return HARD
    if rule.scales_with_overlap:
        cost *= max(overlap, 1)
    return cost


def table2_rows() -> list:
    """Render Table II: (type, color rule, min SO, max SO) per scenario.

    Trivial scenarios (2-c, 2-d, 3-e) are listed with dashes, mirroring the
    paper's remark that they "are not considered".
    """
    rows = []
    for stype in ScenarioType:
        rule = SCENARIO_RULES[stype]
        if rule.is_trivial:
            rows.append((stype.value, "-", "-", "-"))
            continue
        best = "/".join(p.name for p in rule.optimal_pairs())
        max_so = "hard" if rule.has_hard else str(int(rule.max_finite_cost))
        rows.append((stype.value, best, str(int(rule.min_cost)), max_so))
    return rows

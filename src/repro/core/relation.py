"""Geometry relationships between pattern rectangles (Theorem 2).

The paper characterises a pair of dependent rectangles A, B by the tuple
``(Xmin(A,B), Ymin(A,B), Dir(A,B))`` where ``Xmin``/``Ymin`` are the minimum
*track differences* along each axis and ``Dir`` is parallel or orthogonal.
This module computes that tuple from grid-cell footprints and decides
dependence per Theorem 1/2:

* aligned pairs (one difference 0) are dependent iff the other difference
  is 1 or 2;
* diagonal pairs (both differences > 0) are dependent iff both are <= 2 and
  not both equal to 2 (the (2,2) corner gap equals d_indep exactly, and
  Theorem 1 makes >= d_indep independent).

Wires are one track wide, so a rectangle's orientation comes from its long
axis; single-cell fragments inherit the orientation of the segment they
came from (callers pass it explicitly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..geometry import Rect


class Direction2(enum.Enum):
    """Relative orientation of a rectangle pair."""

    PARALLEL = "par"
    ORTHOGONAL = "orth"


@dataclass(frozen=True)
class GeometryRelation:
    """The Theorem-2 tuple for a dependent rectangle pair, canonicalised.

    For **parallel** pairs the tuple is re-expressed in wire-local axes:
    ``along`` is the track difference along the wires' length direction and
    ``across`` the difference perpendicular to it (so horizontal and
    vertical instances of the same scenario coincide).

    For **orthogonal** pairs the paper identifies (x, y, orth) with
    (y, x, orth); we store the sorted pair and additionally remember
    whether A is the *tip-owner* (the rectangle whose endpoint faces the
    other's flank), which the asymmetric scenarios 3-b/3-c need.

    ``overlap`` is the projected overlap length in tracks for aligned
    parallel pairs (side overlays scale with it); 1 otherwise.
    """

    along: int
    across: int
    direction: Direction2
    a_is_tip_owner: bool = True
    overlap: int = 1


def _span(rect: Rect) -> tuple:
    """Inclusive track spans ((x0, x1), (y0, y1)) of a cell-rect footprint."""
    return (rect.xlo, rect.xhi - 1), (rect.ylo, rect.yhi - 1)


def _track_diff(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Minimum track difference between two inclusive index ranges."""
    if a_hi < b_lo:
        return b_lo - a_hi
    if b_hi < a_lo:
        return a_lo - b_hi
    return 0


def _overlap_len(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
    """Length (in tracks) of the overlap of two inclusive ranges (>= 0)."""
    return max(0, min(a_hi, b_hi) - max(a_lo, b_lo) + 1)


def classify_relation(
    rect_a: Rect,
    a_horizontal: bool,
    rect_b: Rect,
    b_horizontal: bool,
) -> Optional[GeometryRelation]:
    """Classify two grid-cell rectangles; ``None`` when independent.

    ``rect_a``/``rect_b`` are footprints in track coordinates (half-open
    cell rects); ``*_horizontal`` give the wire orientations (meaningful
    for 1x1 fragments whose footprint is square).

    Pairs with both track differences 0 (overlapping or edge-abutting
    projections on both axes) return ``None`` as well: such fragments merge
    into a single pattern and never overlay each other (Theorem 3).
    """
    (ax0, ax1), (ay0, ay1) = _span(rect_a)
    (bx0, bx1), (by0, by1) = _span(rect_b)
    dx = _track_diff(ax0, ax1, bx0, bx1)
    dy = _track_diff(ay0, ay1, by0, by1)

    if dx == 0 and dy == 0:
        return None  # same polygon (overlap/abutment)

    # Theorem 2 dependence bounds: aligned pairs are independent from
    # track difference 3; diagonal pairs once both differences reach 2 or
    # either reaches 3 (e.g. (1,3): corner gap > d_indep).
    if dx == 0 or dy == 0:
        if max(dx, dy) >= 3:
            return None
    else:
        if (dx >= 2 and dy >= 2) or max(dx, dy) >= 3:
            return None

    if a_horizontal == b_horizontal:
        # Parallel: express in (along, across) wrt the wires' direction.
        if a_horizontal:
            along, across = dx, dy
            overlap = _overlap_len(ax0, ax1, bx0, bx1) if dx == 0 else 1
        else:
            along, across = dy, dx
            overlap = _overlap_len(ay0, ay1, by0, by1) if dy == 0 else 1
        return GeometryRelation(
            along=along,
            across=across,
            direction=Direction2.PARALLEL,
            a_is_tip_owner=True,
            overlap=max(overlap, 1),
        )

    # Orthogonal: sort the tuple per (x, y, orth) == (y, x, orth); record
    # which rectangle's tip faces the other. A's tip faces B when the track
    # difference measured along A's length direction is the larger one (A
    # must travel along itself to reach B).
    along_a = dx if a_horizontal else dy
    across_a = dy if a_horizontal else dx
    a_tip = along_a >= across_a
    lo, hi = min(dx, dy), max(dx, dy)
    return GeometryRelation(
        along=lo,
        across=hi,
        direction=Direction2.ORTHOGONAL,
        a_is_tip_owner=a_tip,
        overlap=1,
    )

"""SoA backend of the overlay constraint graph.

Same contract as :class:`~repro.core.constraint_graph.OverlayConstraintGraph`
(which stays as the bit-exact object reference), but edges live in a
columnar :class:`~repro.core.edge_store.EdgeStore` and the hot queries —
batch scenario insertion, pricing, pseudo-color totals, and the
flip-time component contraction — run as numpy array operations.

Bit-identity notes: every cost in the system is an integer-valued
float64 (Table II units, CUT_VETO, HARD=inf), so sums are exact and
accumulation order cannot change results. Orderings that *do* leak into
results (edge insertion order, incident traversal order, hard-union
order, unit-root identity) are replicated exactly from the object path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..color import Color
from .constraint_graph import Evaluation, OverlayConstraintGraph
from .edge_store import (
    EdgeStore,
    HARD_DIFF_CODE,
    HARD_SAME_CODE,
    KIND_IS_HARD,
    KIND_ORDER,
    SCENARIO_INDEX,
)
from .edges import ConstraintEdge, CUT_VETO
from .odd_cycle import ParityUnionFind
from .scenario_detect import DetectedScenario

_HARD_CODES = (HARD_DIFF_CODE, HARD_SAME_CODE)

#: Python-native kind-code -> hardness (mirror-list fast paths).
_KIND_IS_HARD_PY = KIND_IS_HARD.tolist()

#: Incident-degree cutoff between the scalar mirror-list path and the
#: numpy path of the pricing queries (matches edge_store.SMALL_BATCH).
_SMALL = 32

#: _COLORS index of each color (matches color_flip._IDX).
_CIDX = {Color.CORE: 0, Color.SECOND: 1}
_COLORS = (Color.CORE, Color.SECOND)


class SoAOverlayConstraintGraph(OverlayConstraintGraph):
    """Drop-in constraint graph over columnar edge storage."""

    def __init__(self) -> None:
        super().__init__()
        self._store = EdgeStore()
        #: Live hard rows in insertion order (replayed by the UF rebuild,
        #: mirroring the object path's ``_hard_edges`` list).
        self._hard_rows: List[int] = []

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def edges(self) -> List[ConstraintEdge]:
        return self._store.materialize_many(self._store.live_rows())

    def num_edges(self) -> int:
        return self._store.live

    def edges_of(self, net_id: int) -> List[ConstraintEdge]:
        return self._store.materialize_many(self._store.incident.get(net_id, ()))

    def add_scenarios(
        self, scenarios: Sequence[DetectedScenario]
    ) -> List[DetectedScenario]:
        """Batch-insert one edge per detected scenario.

        The vector twin of ``add_edges(ConstraintEdge.from_scenario(sc)
        for sc in scenarios)``: same counters, same hard-union order,
        but row construction is one table gather. Returns the scenarios
        whose hard edges closed odd cycles (in insertion order).
        """
        if self._uf_dirty:
            self._rebuild_hard_uf()
        ob = obs.get_active()
        offenders: List[DetectedScenario] = []
        if not scenarios:
            if ob is not None:
                self._flush_uf_stats(ob)
            return offenders
        store = self._store
        rows = store.append_scenarios(
            [sc.net_a for sc in scenarios],
            [sc.net_b for sc in scenarios],
            [SCENARIO_INDEX[sc.scenario] for sc in scenarios],
            [sc.a_is_tip_owner for sc in scenarios],
            [sc.overlap for sc in scenarios],
        )
        kinds = store.kinds
        us = store.us
        vs = store.vs
        pars = store.pars
        touched: Set[int] = set()
        vertices = self._vertices
        for sc, row in zip(scenarios, rows):
            store.link(row)
            vertices.add(sc.net_a)
            vertices.add(sc.net_b)
            touched.add(sc.net_a)
            touched.add(sc.net_b)
        if ob is not None:
            counts: Dict[int, int] = {}
            for row in rows:
                code = kinds[row]
                counts[code] = counts.get(code, 0) + 1
            for code, n in counts.items():
                ob.registry.counter(
                    "ocg_edges_added_total", kind=KIND_ORDER[code].value
                ).inc(n)
        union = self._hard_uf.union
        for sc, row in zip(scenarios, rows):
            if _KIND_IS_HARD_PY[kinds[row]]:
                self._hard_rows.append(row)
                if not union(us[row], vs[row], pars[row]):
                    offenders.append(sc)
                    if ob is not None:
                        ob.registry.counter("ocg_odd_cycle_hits_total").inc()
        if touched:
            self._touch(touched)
        if ob is not None:
            self._flush_uf_stats(ob)
        return offenders

    def add_edges(self, edges: Iterable[ConstraintEdge]) -> List[ConstraintEdge]:
        """Object-compat insertion path (tests, tools); same semantics."""
        offenders: List[ConstraintEdge] = []
        if self._uf_dirty:
            self._rebuild_hard_uf()
        ob = obs.get_active()
        store = self._store
        touched: Set[int] = set()
        for edge in edges:
            row = store.append_edge(edge)
            store.link(row)
            self._vertices.add(edge.u)
            self._vertices.add(edge.v)
            touched.add(edge.u)
            touched.add(edge.v)
            if ob is not None:
                ob.registry.counter(
                    "ocg_edges_added_total", kind=edge.kind.value
                ).inc()
            if edge.kind.is_hard:
                self._hard_rows.append(row)
                if not self._hard_uf.union(edge.u, edge.v, edge.parity):
                    offenders.append(edge)
                    if ob is not None:
                        ob.registry.counter("ocg_odd_cycle_hits_total").inc()
        if touched:
            self._touch(touched)
        if ob is not None:
            self._flush_uf_stats(ob)
        return offenders

    def remove_net(self, net_id: int) -> int:
        store = self._store
        rows = store.incident.get(net_id)
        self._net_stamp.pop(net_id, None)
        if not rows:
            store.incident.pop(net_id, None)
            self._vertices.discard(net_id)
            return 0
        us = store.us
        vs = store.vs
        kinds = store.kinds
        neighbours = set()
        had_hard = False
        for row in rows:
            neighbours.add(vs[row] if us[row] == net_id else us[row])
            if _KIND_IS_HARD_PY[kinds[row]]:
                had_hard = True
        dead = store.kill_net(net_id)
        self._vertices.discard(net_id)
        self._touch(neighbours)
        if had_hard:
            doomed = set(dead)
            self._hard_rows = [r for r in self._hard_rows if r not in doomed]
            self._uf_dirty = True
        return len(dead)

    def _rebuild_hard_uf(self) -> None:
        self._uf_dirty = False
        self._uf_retired_finds += self._hard_uf.find_ops
        self._uf_retired_unions += self._hard_uf.union_ops
        self._hard_uf = ParityUnionFind()
        store = self._store
        us = store.us
        vs = store.vs
        pars = store.pars
        union = self._hard_uf.union
        for row in self._hard_rows:
            union(us[row], vs[row], pars[row])
        ob = obs.get_active()
        if ob is not None:
            ob.registry.counter("ocg_uf_rebuilds_total").inc()
            self._flush_uf_stats(ob)

    def has_hard_odd_cycle(self) -> bool:
        """CSR parity sweep over the live hard edges (numpy BFS)."""
        return not self._store.hard_parity_consistent()

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def _color_index_arrays(
        self, nets: np.ndarray, coloring: Dict[int, Color]
    ) -> np.ndarray:
        """Per-net color index (0=CORE default) for sorted ``nets``."""
        get = coloring.get
        return np.fromiter(
            (_CIDX[get(int(n), Color.CORE)] for n in nets),
            dtype=np.int64,
            count=nets.size,
        )

    def _pair_indices(
        self, rows: np.ndarray, coloring: Dict[int, Color]
    ) -> np.ndarray:
        """ALL_PAIRS index (2*cu + cv) of every row under ``coloring``."""
        store = self._store
        store._sync()
        us = store.u[rows]
        vs = store.v[rows]
        nets = np.unique(np.concatenate((us, vs)))
        cidx = self._color_index_arrays(nets, coloring)
        cu = cidx[np.searchsorted(nets, us)]
        cv = cidx[np.searchsorted(nets, vs)]
        return (cu << 1) | cv

    def evaluate(self, coloring: Dict[int, Color]) -> Evaluation:
        rows = self._store.live_rows()
        if rows.size == 0:
            return Evaluation(overlay_units=0.0, hard_violations=0, cut_risks=0)
        idx = self._pair_indices(rows, coloring)
        sel = np.arange(rows.size)
        costs = self._store.cost[rows][sel, idx]
        hard = np.isinf(costs)
        overlay = float(costs[~hard].sum())
        risks = int(np.count_nonzero(self._store.risk[rows][sel, idx]))
        return Evaluation(
            overlay_units=overlay,
            hard_violations=int(np.count_nonzero(hard)),
            cut_risks=risks,
        )

    def net_cost(self, net_id: int, coloring: Dict[int, Color]) -> float:
        store = self._store
        rows = store.incident.get(net_id)
        if not rows:
            return 0.0
        if len(rows) < _SMALL:
            us = store.us
            vs = store.vs
            cost4 = store.cost4
            get = coloring.get
            total = 0.0
            for row in rows:
                cu = _CIDX[get(us[row], Color.CORE)]
                cv = _CIDX[get(vs[row], Color.CORE)]
                total += cost4[row][(cu << 1) | cv]
            return total
        arr = np.asarray(rows, dtype=np.int64)
        idx = self._pair_indices(arr, coloring)
        return float(store.cost[arr][np.arange(arr.size), idx].sum())

    def incident_dp_totals(
        self, net_id: int, coloring: Dict[int, Color]
    ) -> Tuple[float, float]:
        """(total CORE, total SECOND) DP cost of coloring one net.

        The vector twin of the pseudo-coloring scan: for each candidate
        color of ``net_id``, sums the DP cost (physical + cut veto) over
        its incident edges with neighbours at their current colors.
        """
        store = self._store
        rows = store.incident.get(net_id)
        if not rows:
            return 0.0, 0.0
        if len(rows) < _SMALL:
            us = store.us
            vs = store.vs
            dp4 = store.dp4
            get = coloring.get
            t0 = 0.0
            t1 = 0.0
            for row in rows:
                u = us[row]
                d = dp4[row]
                if u == net_id:
                    c = _CIDX[get(vs[row], Color.CORE)]
                    t0 += d[c]
                    t1 += d[2 | c]
                else:
                    c = _CIDX[get(u, Color.CORE)]
                    t0 += d[c << 1]
                    t1 += d[(c << 1) | 1]
            return t0, t1
        arr = np.asarray(rows, dtype=np.int64)
        store._sync()
        usa = store.u[arr]
        vsa = store.v[arr]
        u_is_net = usa == net_id
        others = np.where(u_is_net, vsa, usa)
        nets = np.unique(others)
        cother = self._color_index_arrays(nets, coloring)[
            np.searchsorted(nets, others)
        ]
        dp = store.dp_cost(arr)
        sel = np.arange(arr.size)
        totals = []
        for own in (0, 1):
            cu = np.where(u_is_net, own, cother)
            cv = np.where(u_is_net, cother, own)
            totals.append(float(dp[sel, (cu << 1) | cv].sum()))
        return totals[0], totals[1]

    def net_has_cut_risk(self, net_id: int, coloring: Dict[int, Color]) -> bool:
        """Any incident edge in a cut-risk combo under ``coloring``?"""
        store = self._store
        rows = store.incident.get(net_id)
        if not rows:
            return False
        us = store.us
        vs = store.vs
        risk4 = store.risk4
        get = coloring.get
        for row in rows:
            cu = _CIDX[get(us[row], Color.CORE)]
            cv = _CIDX[get(vs[row], Color.CORE)]
            if risk4[row][(cu << 1) | cv]:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #

    def components(self) -> List[Set[int]]:
        seen: Set[int] = set()
        out: List[Set[int]] = []
        for start in sorted(self._vertices):
            if start in seen:
                continue
            comp = self.component_of(start)
            seen |= comp
            out.append(comp)
        return out

    def component_of(self, net_id: int) -> Set[int]:
        # Faithful replication of the object DFS: comp-set insertion
        # order feeds set-iteration order downstream (edges_within →
        # hard-union order → unit-root identity), so it must match.
        store = self._store
        us = store.us
        vs = store.vs
        incident = store.incident
        comp = {net_id}
        stack = [net_id]
        while stack:
            node = stack.pop()
            for row in incident.get(node, ()):
                other = vs[row] if us[row] == node else us[row]
                if other not in comp:
                    comp.add(other)
                    stack.append(other)
        return comp

    def _rows_within(self, nets: Set[int]) -> np.ndarray:
        """Rows with both endpoints in ``nets``, in the object path's
        edges_within order (incident traversal, first-occurrence dedup)."""
        incident = self._store.incident
        cand: List[int] = []
        for node in nets:
            rows = incident.get(node)
            if rows:
                cand.extend(rows)
        if not cand:
            return np.empty(0, dtype=np.int64)
        arr = np.asarray(cand, dtype=np.int64)
        _, first = np.unique(arr, return_index=True)
        first.sort()
        arr = arr[first]
        keys = np.fromiter(nets, dtype=np.int64, count=len(nets))
        keys.sort()
        store = self._store
        store._sync()
        us = store.u[arr]
        vs = store.v[arr]
        pu = np.searchsorted(keys, us)
        pv = np.searchsorted(keys, vs)
        np.minimum(pu, keys.size - 1, out=pu)
        np.minimum(pv, keys.size - 1, out=pv)
        return arr[(keys[pu] == us) & (keys[pv] == vs)]

    def edges_within(self, nets: Set[int]) -> List[ConstraintEdge]:
        return self._store.materialize_many(self._rows_within(nets))

    # ------------------------------------------------------------------ #
    # Flip-time contraction (vector twin of color_flip._contract)
    # ------------------------------------------------------------------ #

    def _rows_within_list(self, nets: Set[int]) -> List[int]:
        """Scalar twin of :meth:`_rows_within` (same order contract)."""
        incident = self._store.incident
        us = self._store.us
        vs = self._store.vs
        seen: set = set()
        out: List[int] = []
        for node in nets:
            rows = incident.get(node)
            if rows:
                for r in rows:
                    if r not in seen:
                        seen.add(r)
                        if us[r] in nets and vs[r] in nets:
                            out.append(r)
        return out

    def contract_component(self, comp: Set[int]):
        from .color_flip import _UnitGraph

        store = self._store
        if len(comp) <= 32:
            return self._contract_scalar(comp)
        rows = self._rows_within(comp)
        uf = ParityUnionFind()
        for net in comp:
            uf.add(net)
        hard_mask = (
            KIND_IS_HARD[store.kind[rows]]
            if rows.size
            else np.empty(0, dtype=bool)
        )
        for row in rows[hard_mask]:
            if not uf.union(
                int(store.u[row]), int(store.v[row]), int(store.parity[row])
            ):
                return None

        ug = _UnitGraph()
        nets_sorted = sorted(set(comp))
        n = len(nets_sorted)
        roots = np.empty(n, dtype=np.int64)
        pars = np.empty(n, dtype=np.int64)
        unit_pos: Dict[int, int] = {}
        for i, net in enumerate(nets_sorted):
            root, parity = uf.find(net)
            roots[i] = root
            pars[i] = parity
            if root not in ug.members:
                ug.members[root] = []
                ug.units.append(root)
                ug.self_cost[root] = [0.0, 0.0]
                unit_pos[root] = len(ug.units) - 1
            ug.members[root].append((net, parity))

        soft = rows[~hard_mask]
        if soft.size == 0:
            return ug
        net_keys = np.asarray(nets_sorted, dtype=np.int64)
        iu = np.searchsorted(net_keys, store.u[soft])
        iv = np.searchsorted(net_keys, store.v[soft])
        ru = roots[iu]
        rv = roots[iv]
        pu = pars[iu]
        pv = pars[iv]
        dp = store.dp_cost(soft)
        sel_all = np.arange(soft.size)

        self_mask = ru == rv
        if np.any(self_mask):
            dps = dp[self_mask]
            pus = pu[self_mask]
            pvs = pv[self_mask]
            sel = np.arange(dps.shape[0])
            # Unit-color c costs dp[2*(c^pu) + (c^pv)].
            cost0 = dps[sel, (pus << 1) | pvs]
            cost1 = dps[sel, ((1 - pus) << 1) | (1 - pvs)]
            uidx = np.fromiter(
                (unit_pos[int(r)] for r in ru[self_mask]),
                dtype=np.int64,
                count=dps.shape[0],
            )
            acc0 = np.zeros(len(ug.units))
            acc1 = np.zeros(len(ug.units))
            np.add.at(acc0, uidx, cost0)
            np.add.at(acc1, uidx, cost1)
            for k, unit in enumerate(ug.units):
                sc = ug.self_cost[unit]
                sc[0] += float(acc0[k])
                sc[1] += float(acc1[k])

        pair_mask = ~self_mask
        if np.any(pair_mask):
            dpp = dp[pair_mask]
            rup = ru[pair_mask]
            rvp = rv[pair_mask]
            pup = pu[pair_mask]
            pvp = pv[pair_mask]
            swap = rup > rvp
            a = np.where(swap, rvp, rup)
            b = np.where(swap, rup, rvp)
            sel = np.arange(dpp.shape[0])
            out = np.empty((dpp.shape[0], 4))
            for k, (i, j) in enumerate(((0, 0), (0, 1), (1, 0), (1, 1))):
                # matrix[i][j] = dp[2*(i^pu) + (j^pv)]; transposed
                # (swapped canonical order) reads dp[2*(j^pu) + (i^pv)].
                src = np.where(
                    swap,
                    ((j ^ pup) << 1) | (i ^ pvp),
                    ((i ^ pup) << 1) | (j ^ pvp),
                )
                out[:, k] = dpp[sel, src]
            key = (a << 32) | b
            ukey, inv = np.unique(key, return_inverse=True)
            acc = np.zeros((ukey.size, 4))
            np.add.at(acc, inv, out)
            ua = ukey >> 32
            ub = ukey & 0xFFFFFFFF
            for g in range(ukey.size):
                ug.pair_cost[(int(ua[g]), int(ub[g]))] = [
                    [float(acc[g, 0]), float(acc[g, 1])],
                    [float(acc[g, 2]), float(acc[g, 3])],
                ]
        return ug

    def _contract_scalar(self, comp: Set[int]):
        """Mirror-based contraction for small components.

        Follows the object path's edge order exactly; all accumulated
        values are integer-valued float64, so the summation order shared
        with the wide path cannot change a single bit.
        """
        from .color_flip import _UnitGraph

        store = self._store
        rows = self._rows_within_list(comp)
        us = store.us
        vs = store.vs
        kinds = store.kinds
        pars = store.pars
        dp4 = store.dp4
        uf = ParityUnionFind()
        for net in comp:
            uf.add(net)
        union = uf.union
        soft: List[int] = []
        for r in rows:
            if _KIND_IS_HARD_PY[kinds[r]]:
                if not union(us[r], vs[r], pars[r]):
                    return None
            else:
                soft.append(r)

        ug = _UnitGraph()
        members = ug.members
        self_cost = ug.self_cost
        find = uf.find
        for net in sorted(comp):
            root, parity = find(net)
            if root not in members:
                members[root] = []
                ug.units.append(root)
                self_cost[root] = [0.0, 0.0]
            members[root].append((net, parity))

        for r in soft:
            d = dp4[r]
            ru, pu = find(us[r])
            rv, pv = find(vs[r])
            if ru == rv:
                sc = self_cost[ru]
                sc[0] += d[(pu << 1) | pv]
                sc[1] += d[((1 - pu) << 1) | (1 - pv)]
            else:
                # matrix[i][j] = dp[2*(i^pu) + (j^pv)]
                ug.add_pair_cost(
                    ru,
                    rv,
                    [
                        [d[(pu << 1) | pv], d[(pu << 1) | (1 ^ pv)]],
                        [d[((1 ^ pu) << 1) | pv], d[((1 ^ pu) << 1) | (1 ^ pv)]],
                    ],
                )
        return ug


def make_constraint_graph(backend: str = "soa") -> OverlayConstraintGraph:
    """Factory for the constraint-graph backends.

    ``"soa"`` is the vectorized engine; ``"object"`` the per-object
    bit-exact reference (the PR-2 ``use_reference`` template).
    """
    if backend == "soa":
        return SoAOverlayConstraintGraph()
    if backend == "object":
        return OverlayConstraintGraph()
    raise ValueError(f"unknown constraint-graph backend: {backend!r}")

"""Incremental detection of potential overlay scenarios between nets.

After each net is routed, its wire segments are fragmented into rectangles
(Theorem 3) and checked against every existing rectangle within the
independence radius (Theorem 1) using a bucketed spatial index. Each
dependent pair maps to a scenario type (Theorem 2) and becomes a constraint
edge. Rip-up removes a net's shapes and the scenarios they induced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..geometry import GridIndex, Rect, Segment
from .relation import classify_relation
from .scenarios import SCENARIO_RULES, ScenarioType, scenario_for_relation


@dataclass(frozen=True)
class ShapeRecord:
    """One wire fragment registered in the index."""

    net_id: int
    rect: Rect  # grid-cell footprint (track coordinates)
    horizontal: bool
    layer: int


@dataclass(frozen=True)
class DetectedScenario:
    """A scenario instance between net_a's fragment and net_b's fragment."""

    layer: int
    net_a: int
    net_b: int
    scenario: ScenarioType
    a_is_tip_owner: bool
    overlap: int
    rect_a: Rect
    rect_b: Rect


class ScenarioDetector:
    """Per-layer spatial index + pairwise scenario classification.

    The detector is the geometry front-end of the overlay constraint graph:
    ``add_net`` returns the new scenario instances the net creates, and
    ``remove_net`` forgets a ripped-up net.
    """

    #: Query radius in tracks; Theorem 1/2 guarantee independence beyond it.
    NEIGHBOUR_RADIUS = 3

    def __init__(self, num_layers: int, include_trivial: bool = False) -> None:
        self._indexes: List[GridIndex[ShapeRecord]] = [
            GridIndex(bucket_size=8) for _ in range(num_layers)
        ]
        self._shapes_by_net: Dict[int, List[ShapeRecord]] = {}
        # Types 2-c, 2-d and 3-e never induce side overlay; the paper drops
        # them from the constraint graph ("the three scenarios are not
        # considered"). Pass include_trivial=True to see them anyway.
        self._include_trivial = include_trivial

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_net(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        """Register a routed net's segments; returns the induced scenarios."""
        records = [
            ShapeRecord(
                net_id=net_id,
                rect=seg.to_rect(),
                horizontal=seg.horizontal,
                layer=seg.layer,
            )
            for seg in segments
        ]
        detected = []
        for record in records:
            detected.extend(self._scan(record))
        for record in records:
            self._indexes[record.layer].insert(record.rect, record)
        self._shapes_by_net.setdefault(net_id, []).extend(records)
        return detected

    def remove_net(self, net_id: int) -> int:
        """Forget a net's shapes; returns how many fragments were removed."""
        records = self._shapes_by_net.pop(net_id, [])
        for record in records:
            self._indexes[record.layer].remove(record.rect, record)
        return len(records)

    def shapes_of(self, net_id: int) -> List[ShapeRecord]:
        return list(self._shapes_by_net.get(net_id, []))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def probe_segments(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        """What scenarios *would* these segments create? (no mutation)

        The router's what-if analysis during rip-up & reroute uses this to
        price candidate paths without committing them.
        """
        detected = []
        for seg in segments:
            record = ShapeRecord(
                net_id=net_id,
                rect=seg.to_rect(),
                horizontal=seg.horizontal,
                layer=seg.layer,
            )
            detected.extend(self._scan(record))
        return detected

    def _scan(self, record: ShapeRecord) -> List[DetectedScenario]:
        """Scenarios between ``record`` and existing fragments of other nets."""
        index = self._indexes[record.layer]
        out: List[DetectedScenario] = []
        for rect, other in index.neighbours(record.rect, self.NEIGHBOUR_RADIUS):
            if other.net_id == record.net_id:
                continue
            rel = classify_relation(
                record.rect, record.horizontal, rect, other.horizontal
            )
            if rel is None:
                continue
            stype = scenario_for_relation(rel)
            if stype is None:
                continue
            if not self._include_trivial and SCENARIO_RULES[stype].is_trivial:
                continue
            out.append(
                DetectedScenario(
                    layer=record.layer,
                    net_a=record.net_id,
                    net_b=other.net_id,
                    scenario=stype,
                    a_is_tip_owner=rel.a_is_tip_owner,
                    overlap=rel.overlap,
                    rect_a=record.rect,
                    rect_b=rect,
                )
            )
        return out

"""Incremental detection of potential overlay scenarios between nets.

After each net is routed, its wire segments are fragmented into rectangles
(Theorem 3) and checked against every existing rectangle within the
independence radius (Theorem 1) using a bucketed spatial index. Each
dependent pair maps to a scenario type (Theorem 2) and becomes a constraint
edge. Rip-up removes a net's shapes and the scenarios they induced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..geometry import GridIndex, Rect, Segment
from .edge_store import SCENARIO_INDEX, SCENARIO_ORDER
from .relation import classify_relation
from .scenarios import (
    SCENARIO_RULES,
    ScenarioType,
    _ORTHOGONAL_MAP,
    _PARALLEL_MAP,
    scenario_for_relation,
)


@dataclass(frozen=True)
class ShapeRecord:
    """One wire fragment registered in the index."""

    net_id: int
    rect: Rect  # grid-cell footprint (track coordinates)
    horizontal: bool
    layer: int


@dataclass(frozen=True)
class DetectedScenario:
    """A scenario instance between net_a's fragment and net_b's fragment."""

    layer: int
    net_a: int
    net_b: int
    scenario: ScenarioType
    a_is_tip_owner: bool
    overlap: int
    rect_a: Rect
    rect_b: Rect


class ScenarioDetector:
    """Per-layer spatial index + pairwise scenario classification.

    The detector is the geometry front-end of the overlay constraint graph:
    ``add_net`` returns the new scenario instances the net creates, and
    ``remove_net`` forgets a ripped-up net.
    """

    #: Query radius in tracks; Theorem 1/2 guarantee independence beyond it.
    NEIGHBOUR_RADIUS = 3

    def __init__(self, num_layers: int, include_trivial: bool = False) -> None:
        self._indexes: List[GridIndex[ShapeRecord]] = [
            GridIndex(bucket_size=8) for _ in range(num_layers)
        ]
        self._shapes_by_net: Dict[int, List[ShapeRecord]] = {}
        # Types 2-c, 2-d and 3-e never induce side overlay; the paper drops
        # them from the constraint graph ("the three scenarios are not
        # considered"). Pass include_trivial=True to see them anyway.
        self._include_trivial = include_trivial

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_net(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        """Register a routed net's segments; returns the induced scenarios."""
        records = [
            ShapeRecord(
                net_id=net_id,
                rect=seg.to_rect(),
                horizontal=seg.horizontal,
                layer=seg.layer,
            )
            for seg in segments
        ]
        detected = []
        for record in records:
            detected.extend(self._scan(record))
        for record in records:
            self._indexes[record.layer].insert(record.rect, record)
        self._shapes_by_net.setdefault(net_id, []).extend(records)
        return detected

    def remove_net(self, net_id: int) -> int:
        """Forget a net's shapes; returns how many fragments were removed."""
        records = self._shapes_by_net.pop(net_id, [])
        for record in records:
            self._indexes[record.layer].remove(record.rect, record)
        return len(records)

    def shapes_of(self, net_id: int) -> List[ShapeRecord]:
        return list(self._shapes_by_net.get(net_id, []))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def probe_segments(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        """What scenarios *would* these segments create? (no mutation)

        The router's what-if analysis during rip-up & reroute uses this to
        price candidate paths without committing them.
        """
        detected = []
        for seg in segments:
            record = ShapeRecord(
                net_id=net_id,
                rect=seg.to_rect(),
                horizontal=seg.horizontal,
                layer=seg.layer,
            )
            detected.extend(self._scan(record))
        return detected

    def _scan(self, record: ShapeRecord) -> List[DetectedScenario]:
        """Scenarios between ``record`` and existing fragments of other nets."""
        index = self._indexes[record.layer]
        out: List[DetectedScenario] = []
        for rect, other in index.neighbours(record.rect, self.NEIGHBOUR_RADIUS):
            if other.net_id == record.net_id:
                continue
            rel = classify_relation(
                record.rect, record.horizontal, rect, other.horizontal
            )
            if rel is None:
                continue
            stype = scenario_for_relation(rel)
            if stype is None:
                continue
            if not self._include_trivial and SCENARIO_RULES[stype].is_trivial:
                continue
            out.append(
                DetectedScenario(
                    layer=record.layer,
                    net_a=record.net_id,
                    net_b=other.net_id,
                    scenario=stype,
                    a_is_tip_owner=rel.a_is_tip_owner,
                    overlap=rel.overlap,
                    rect_a=record.rect,
                    rect_b=rect,
                )
            )
        return out


def _scenario_code_tables():
    """Dense (along, across) -> scenario-index tables from the rule maps."""
    par = np.full((3, 3), -1, dtype=np.int8)
    orth = np.full((3, 3), -1, dtype=np.int8)
    for (along, across), stype in _PARALLEL_MAP.items():
        par[along, across] = SCENARIO_INDEX[stype]
    for (along, across), stype in _ORTHOGONAL_MAP.items():
        orth[along, across] = SCENARIO_INDEX[stype]
    trivial = np.array(
        [SCENARIO_RULES[s].is_trivial for s in SCENARIO_ORDER], dtype=bool
    )
    return par, orth, trivial


_PAR_CODE, _ORTH_CODE, _SCEN_TRIVIAL = _scenario_code_tables()
_PAR_CODE_PY = _PAR_CODE.tolist()
_ORTH_CODE_PY = _ORTH_CODE.tolist()
_SCEN_TRIVIAL_PY = _SCEN_TRIVIAL.tolist()

#: Candidate-count threshold below which the per-net scan runs as a
#: plain Python loop — the vector pass costs ~35 numpy dispatches per
#: net regardless of width, so the loop wins until the candidate batch
#: amortises them.
_SMALL_SCAN = 160


class _LayerShapes:
    """One layer's fragments in columnar form + the bucket grid.

    Mirrors a ``GridIndex[ShapeRecord]`` exactly: rows appended in
    insertion order, each row registered in every bucket its rect spans,
    removed rows dropped from the bucket lists (relative order kept).
    """

    def __init__(self, bucket_size: int = 8) -> None:
        self.bucket = bucket_size
        cap = 64
        self.xlo = np.empty(cap, dtype=np.int64)
        self.ylo = np.empty(cap, dtype=np.int64)
        self.xhi = np.empty(cap, dtype=np.int64)
        self.yhi = np.empty(cap, dtype=np.int64)
        self.net = np.empty(cap, dtype=np.int64)
        self.horiz = np.empty(cap, dtype=bool)
        # Python mirrors of the columns — the scalar small-scan path
        # reads these to avoid numpy scalar extraction per pair.
        self.xlo_l: List[int] = []
        self.ylo_l: List[int] = []
        self.xhi_l: List[int] = []
        self.yhi_l: List[int] = []
        self.net_l: List[int] = []
        self.horiz_l: List[bool] = []
        self.rects: List[Rect] = []
        self.size = 0
        self._cap = cap
        self.buckets: Dict[Tuple[int, int], List[int]] = {}

    def _keys(self, rect: Rect):
        b = self.bucket
        for bx in range(rect.xlo // b, (rect.xhi - 1) // b + 1):
            for by in range(rect.ylo // b, (rect.yhi - 1) // b + 1):
                yield bx, by

    def insert(self, rect: Rect, net_id: int, horizontal: bool) -> int:
        if self.size == self._cap:
            self._cap *= 2
            for name in ("xlo", "ylo", "xhi", "yhi", "net", "horiz"):
                old = getattr(self, name)
                fresh = np.empty(self._cap, dtype=old.dtype)
                fresh[: self.size] = old[: self.size]
                setattr(self, name, fresh)
        row = self.size
        self.xlo[row] = rect.xlo
        self.ylo[row] = rect.ylo
        self.xhi[row] = rect.xhi
        self.yhi[row] = rect.yhi
        self.net[row] = net_id
        self.horiz[row] = horizontal
        self.xlo_l.append(rect.xlo)
        self.ylo_l.append(rect.ylo)
        self.xhi_l.append(rect.xhi)
        self.yhi_l.append(rect.yhi)
        self.net_l.append(net_id)
        self.horiz_l.append(horizontal)
        self.rects.append(rect)
        self.size += 1
        for key in self._keys(rect):
            self.buckets.setdefault(key, []).append(row)
        return row

    def remove(self, row: int) -> None:
        rect = self.rects[row]
        for key in self._keys(rect):
            lst = self.buckets.get(key)
            if lst is not None:
                lst.remove(row)
                if not lst:
                    del self.buckets[key]

    def candidate_rows(self, region: Rect) -> List[int]:
        """Rows whose bucket ranges meet ``region``, in GridIndex query
        order (bucket-scan order, first occurrence kept).

        Single-bucket queries return the bucket list itself — callers
        must treat the result as read-only.
        """
        b = self.bucket
        bx_lo, bx_hi = region.xlo // b, (region.xhi - 1) // b
        by_lo, by_hi = region.ylo // b, (region.yhi - 1) // b
        if bx_lo == bx_hi and by_lo == by_hi:
            return self.buckets.get((bx_lo, by_lo)) or []
        seen: set = set()
        out: List[int] = []
        for bx in range(bx_lo, bx_hi + 1):
            for by in range(by_lo, by_hi + 1):
                rows = self.buckets.get((bx, by))
                if rows:
                    for row in rows:
                        if row not in seen:
                            seen.add(row)
                            out.append(row)
        return out


class VectorScenarioDetector:
    """Array-backed scenario detector, bit-identical to ScenarioDetector.

    Candidate gathering walks the same uniform buckets in the same
    order; the per-pair relation classification (Theorems 1/2 and the
    scenario tables) runs as one vector pass per net instead of one
    ``classify_relation`` call per candidate pair. The emitted
    ``DetectedScenario`` list is identical, element for element and in
    order, to the object detector's — that order feeds rip-up and
    repair decisions downstream, so it is part of the contract.
    """

    NEIGHBOUR_RADIUS = ScenarioDetector.NEIGHBOUR_RADIUS

    def __init__(self, num_layers: int, include_trivial: bool = False) -> None:
        self._layers = [_LayerShapes(bucket_size=8) for _ in range(num_layers)]
        self._rows_by_net: Dict[int, List[Tuple[int, int]]] = {}
        self._include_trivial = include_trivial

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_net(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        records = [
            (seg.layer, seg.to_rect(), seg.horizontal) for seg in segments
        ]
        detected = self._scan_records(net_id, records)
        rows = self._rows_by_net.setdefault(net_id, [])
        for layer, rect, horizontal in records:
            row = self._layers[layer].insert(rect, net_id, horizontal)
            rows.append((layer, row))
        return detected

    def remove_net(self, net_id: int) -> int:
        rows = self._rows_by_net.pop(net_id, [])
        for layer, row in rows:
            self._layers[layer].remove(row)
        return len(rows)

    def shapes_of(self, net_id: int) -> List[ShapeRecord]:
        out = []
        for layer, row in self._rows_by_net.get(net_id, ()):
            shapes = self._layers[layer]
            out.append(
                ShapeRecord(
                    net_id=net_id,
                    rect=shapes.rects[row],
                    horizontal=bool(shapes.horiz[row]),
                    layer=layer,
                )
            )
        return out

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def probe_segments(
        self, net_id: int, segments: Iterable[Segment]
    ) -> List[DetectedScenario]:
        records = [
            (seg.layer, seg.to_rect(), seg.horizontal) for seg in segments
        ]
        return self._scan_records(net_id, records)

    def _scan_records(
        self, net_id: int, records: List[Tuple[int, Rect, bool]]
    ) -> List[DetectedScenario]:
        """Vectorized twin of ScenarioDetector._scan over a record batch.

        Candidates from *all* of the net's records are concatenated
        (record-major, bucket-scan order within each record — exactly the
        object detector's nested loop order) so the geometric
        classification runs as one numpy pass per net, not one per
        fragment. Per-record work is limited to the bucket walk and six
        small column gathers.
        """
        radius = self.NEIGHBOUR_RADIUS
        # (layer, rect, a_h, shapes, cand) per record with any candidates.
        metas = []
        total = 0
        for layer, rect, a_h in records:
            shapes = self._layers[layer]
            if shapes.size == 0 or not shapes.buckets:
                continue
            cand = shapes.candidate_rows(rect.inflated(radius))
            if cand:
                metas.append((layer, rect, a_h, shapes, cand))
                total += len(cand)
        if not metas:
            return []
        if total < _SMALL_SCAN:
            return self._scan_scalar(net_id, metas)
        counts = [len(m[4]) for m in metas]
        rec_of = np.repeat(np.arange(len(metas)), counts)
        metas = [
            (layer, rect, a_h, shapes, np.asarray(cand, dtype=np.int64))
            for layer, rect, a_h, shapes, cand in metas
        ]
        cand = np.concatenate([m[4] for m in metas])
        bxlo = np.concatenate([m[3].xlo[m[4]] for m in metas])
        bylo = np.concatenate([m[3].ylo[m[4]] for m in metas])
        bxhi = np.concatenate([m[3].xhi[m[4]] for m in metas])
        byhi = np.concatenate([m[3].yhi[m[4]] for m in metas])
        bnet = np.concatenate([m[3].net[m[4]] for m in metas])
        b_h = np.concatenate([m[3].horiz[m[4]] for m in metas])
        axlo = np.repeat(
            np.array([m[1].xlo for m in metas], dtype=np.int64), counts
        )
        aylo = np.repeat(
            np.array([m[1].ylo for m in metas], dtype=np.int64), counts
        )
        axhi = np.repeat(
            np.array([m[1].xhi for m in metas], dtype=np.int64), counts
        )
        ayhi = np.repeat(
            np.array([m[1].yhi for m in metas], dtype=np.int64), counts
        )
        a_h = np.repeat(np.array([m[2] for m in metas], dtype=bool), counts)

        # GridIndex.query keeps rects overlapping the inflated region;
        # neighbours() then bounds the rectilinear gap to the rect.
        keep = (
            (bxlo < axhi + radius)
            & (axlo - radius < bxhi)
            & (bylo < ayhi + radius)
            & (aylo - radius < byhi)
        )
        gx = np.maximum(0, np.maximum(axlo, bxlo) - np.minimum(axhi, bxhi))
        gy = np.maximum(0, np.maximum(aylo, bylo) - np.minimum(ayhi, byhi))
        keep &= np.maximum(gx, gy) < radius
        keep &= bnet != net_id
        idx = np.flatnonzero(keep)
        if idx.size == 0:
            return []
        rec_of, cand, bnet, b_h = rec_of[idx], cand[idx], bnet[idx], b_h[idx]
        bxlo, bylo, bxhi, byhi = bxlo[idx], bylo[idx], bxhi[idx], byhi[idx]
        axlo, aylo, axhi, ayhi = axlo[idx], aylo[idx], axhi[idx], ayhi[idx]
        a_h = a_h[idx]

        # Theorem-2 track differences over inclusive spans.
        ax0, ax1 = axlo, axhi - 1
        ay0, ay1 = aylo, ayhi - 1
        bx0, bx1 = bxlo, bxhi - 1
        by0, by1 = bylo, byhi - 1
        dx = np.where(ax1 < bx0, bx0 - ax1, np.where(bx1 < ax0, ax0 - bx1, 0))
        dy = np.where(ay1 < by0, by0 - ay1, np.where(by1 < ay0, ay0 - by1, 0))

        aligned = (dx == 0) | (dy == 0)
        dmax = np.maximum(dx, dy)
        dependent = np.where(
            (dx == 0) & (dy == 0),
            False,
            np.where(aligned, dmax < 3, ~((dx >= 2) & (dy >= 2)) & (dmax < 3)),
        )
        if not np.any(dependent):
            return []
        parallel = b_h == a_h

        # Parallel: wire-local (along, across) + overlap scaling. For a
        # horizontal wire A the along axis is x; o_along_a/o_across_a of
        # the orthogonal case are the same projections, so they share the
        # arrays.
        p_along = np.where(a_h, dx, dy)
        p_across = np.where(a_h, dy, dx)
        ov = np.where(
            a_h,
            np.minimum(ax1, bx1) - np.maximum(ax0, bx0) + 1,
            np.minimum(ay1, by1) - np.maximum(ay0, by0) + 1,
        )
        overlap = np.where(parallel & (p_along == 0), np.maximum(ov, 1), 1)

        # Orthogonal: sorted tuple + tip ownership.
        tip = np.where(parallel, True, p_along >= p_across)
        lo = np.minimum(dx, dy)

        code = np.where(
            dependent,
            np.where(
                parallel,
                _PAR_CODE[np.clip(p_along, 0, 2), np.clip(p_across, 0, 2)],
                _ORTH_CODE[np.clip(lo, 0, 2), np.clip(dmax, 0, 2)],
            ),
            -1,
        )
        keep2 = code >= 0
        if not self._include_trivial:
            keep2 &= ~_SCEN_TRIVIAL[np.clip(code, 0, len(_SCEN_TRIVIAL) - 1)]

        out: List[DetectedScenario] = []
        for i in np.flatnonzero(keep2):
            layer, rect, _, shapes, _ = metas[rec_of[i]]
            out.append(
                DetectedScenario(
                    layer=layer,
                    net_a=net_id,
                    net_b=int(bnet[i]),
                    scenario=SCENARIO_ORDER[code[i]],
                    a_is_tip_owner=bool(tip[i]),
                    overlap=int(overlap[i]),
                    rect_a=rect,
                    rect_b=shapes.rects[cand[i]],
                )
            )
        return out

    def _scan_scalar(
        self, net_id: int, metas: List[tuple]
    ) -> List[DetectedScenario]:
        """Scalar twin of the vector classification for tiny candidate
        sets, where numpy per-op overhead dominates.

        The bucket pre-filters (region overlap, rectilinear gap) are
        subsumed by the dependence test — ``max(dx, dy) < 3`` implies a
        gap below the neighbour radius — so only the net filter and the
        Theorem-2 classification remain. Pair order matches the vector
        path's record-major, bucket-scan order exactly.
        """
        skip_trivial = not self._include_trivial
        out: List[DetectedScenario] = []
        for layer, rect, a_h, shapes, cand in metas:
            ax0, ax1 = rect.xlo, rect.xhi - 1
            ay0, ay1 = rect.ylo, rect.yhi - 1
            xlo, ylo = shapes.xlo_l, shapes.ylo_l
            xhi, yhi = shapes.xhi_l, shapes.yhi_l
            net, horiz = shapes.net_l, shapes.horiz_l
            for row in cand:
                if net[row] == net_id:
                    continue
                bx0, bx1 = xlo[row], xhi[row] - 1
                by0, by1 = ylo[row], yhi[row] - 1
                if ax1 < bx0:
                    dx = bx0 - ax1
                elif bx1 < ax0:
                    dx = ax0 - bx1
                else:
                    dx = 0
                if ay1 < by0:
                    dy = by0 - ay1
                elif by1 < ay0:
                    dy = ay0 - by1
                else:
                    dy = 0
                if dx == 0 and dy == 0:
                    continue
                if dx >= 3 or dy >= 3:
                    continue
                if dx >= 2 and dy >= 2:
                    continue
                if a_h:
                    along, across = dx, dy
                else:
                    along, across = dy, dx
                if horiz[row] == a_h:
                    if along == 0:
                        if a_h:
                            ov = min(ax1, bx1) - max(ax0, bx0) + 1
                        else:
                            ov = min(ay1, by1) - max(ay0, by0) + 1
                        overlap = ov if ov > 1 else 1
                    else:
                        overlap = 1
                    tip = True
                    code = _PAR_CODE_PY[along if along < 2 else 2][
                        across if across < 2 else 2
                    ]
                else:
                    overlap = 1
                    tip = along >= across
                    lo = dx if dx < dy else dy
                    hi = dx if dx > dy else dy
                    code = _ORTH_CODE_PY[lo if lo < 2 else 2][
                        hi if hi < 2 else 2
                    ]
                if code < 0:
                    continue
                if skip_trivial and _SCEN_TRIVIAL_PY[code]:
                    continue
                out.append(
                    DetectedScenario(
                        layer=layer,
                        net_a=net_id,
                        net_b=net[row],
                        scenario=SCENARIO_ORDER[code],
                        a_is_tip_owner=tip,
                        overlap=overlap,
                        rect_a=rect,
                        rect_b=shapes.rects[row],
                    )
                )
        return out


def make_detector(
    num_layers: int, backend: str = "vector", include_trivial: bool = False
):
    """Factory for the detector backends ("vector" | "object")."""
    if backend == "vector":
        return VectorScenarioDetector(num_layers, include_trivial=include_trivial)
    if backend == "object":
        return ScenarioDetector(num_layers, include_trivial=include_trivial)
    raise ValueError(f"unknown detector backend: {backend!r}")

"""Constraint-graph edges (the six edge kinds of Fig. 11).

Every detected potential overlay scenario between two routed nets becomes
one :class:`ConstraintEdge`. The edge carries the full color-cost vector of
its scenario (already oriented and scaled for the concrete instance), so
the coloring machinery never needs to re-inspect geometry.

Edge kinds map onto the paper's Fig. 11 legend:

=================  =========================  ======================
Kind               Fig. 11                    Scenario types
=================  =========================  ======================
HARD_DIFF          (a) bold straight line     1-a
HARD_SAME          (b) bold line w/ dummy     1-b
SOFT_DIFF          (c) dashed straight line   3-a
SOFT_SAME          (d) dashed line w/ dummy   2-a, 2-b, 3-d
BOTH_SECOND        (e) double-arrow line      3-b
FORBID_CS          (f) single-arrow line      3-c
=================  =========================  ======================

The dummy vertices of Fig. 11(b)/(d) are not materialised: a same-color
edge is parity-0 in the union-find, which is exactly equivalent to a dummy
vertex joined by two different-color edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..color import ALL_PAIRS, Color, ColorPair
from .scenarios import HARD, SCENARIO_RULES, ScenarioRule, ScenarioType, oriented_cost

#: Finite-but-dominating cost charged (in the coloring DP only) to color
#: pairs that would create a type A cut conflict. Large enough to outweigh
#: any realistic sum of side-overlay units while keeping arithmetic finite.
CUT_VETO: float = 1.0e6

_PAIR_INDEX: Dict[ColorPair, int] = {p: i for i, p in enumerate(ALL_PAIRS)}


class EdgeKind(enum.Enum):
    HARD_DIFF = "hard-diff"
    HARD_SAME = "hard-same"
    SOFT_DIFF = "soft-diff"
    SOFT_SAME = "soft-same"
    BOTH_SECOND = "both-second"
    FORBID_CS = "forbid-cs"

    @property
    def is_hard(self) -> bool:
        return self in (EdgeKind.HARD_DIFF, EdgeKind.HARD_SAME)


_KIND_BY_SCENARIO: Dict[ScenarioType, EdgeKind] = {
    ScenarioType.T1A: EdgeKind.HARD_DIFF,
    ScenarioType.T1B: EdgeKind.HARD_SAME,
    ScenarioType.T3A: EdgeKind.SOFT_DIFF,
    ScenarioType.T2A: EdgeKind.SOFT_SAME,
    ScenarioType.T2B: EdgeKind.SOFT_SAME,
    ScenarioType.T3D: EdgeKind.SOFT_SAME,
    ScenarioType.T3B: EdgeKind.BOTH_SECOND,
    ScenarioType.T3C: EdgeKind.FORBID_CS,
    # Trivial scenarios never become constraint edges in the routing flow
    # (the detector filters them); the mapping exists so that explicitly
    # constructed edges — e.g. in enumeration tools — are still valid.
    ScenarioType.T2C: EdgeKind.SOFT_SAME,
    ScenarioType.T2D: EdgeKind.SOFT_SAME,
    ScenarioType.T3E: EdgeKind.SOFT_SAME,
}


@dataclass(frozen=True)
class ConstraintEdge:
    """One scenario instance between nets ``u`` and ``v`` (u = pattern A).

    ``cost`` holds *physical* side-overlay units per color pair in
    (color(u), color(v)) order — :data:`HARD` marks forbidden hard-overlay
    assignments. ``cut_risk`` flags pairs that would create a type A cut
    conflict; the coloring DP charges those :data:`CUT_VETO` on top.
    """

    u: int
    v: int
    scenario: ScenarioType
    kind: EdgeKind
    cost: Tuple[float, float, float, float]  # indexed in ALL_PAIRS order
    cut_risk: Tuple[bool, bool, bool, bool]
    overlap: int = 1

    @classmethod
    def from_scenario(
        cls,
        u: int,
        v: int,
        scenario: ScenarioType,
        a_is_tip_owner: bool = True,
        overlap: int = 1,
    ) -> "ConstraintEdge":
        """Build an edge from a detected scenario instance.

        Folds tip-owner orientation and overlap scaling into the stored
        vectors so they are expressed directly in (color(u), color(v)).
        """
        rule: ScenarioRule = SCENARIO_RULES[scenario]
        costs = []
        risks = []
        for pair in ALL_PAIRS:
            effective = pair if a_is_tip_owner else pair.swapped
            costs.append(oriented_cost(rule, pair, a_is_tip_owner, overlap))
            risks.append(effective in rule.cut_risk)
        return cls(
            u=u,
            v=v,
            scenario=scenario,
            kind=_KIND_BY_SCENARIO[scenario],
            cost=tuple(costs),
            cut_risk=tuple(risks),
            overlap=overlap,
        )

    # ------------------------------------------------------------------ #
    # Cost queries
    # ------------------------------------------------------------------ #

    def pair_cost(self, color_u: Color, color_v: Color) -> float:
        """Physical side-overlay units of an assignment (HARD if forbidden)."""
        return self.cost[_PAIR_INDEX[ColorPair.of(color_u, color_v)]]

    def dp_cost(self, color_u: Color, color_v: Color) -> float:
        """Cost used by the coloring machinery: physical + cut-conflict veto."""
        idx = _PAIR_INDEX[ColorPair.of(color_u, color_v)]
        base = self.cost[idx]
        if base == HARD:
            return HARD
        return base + (CUT_VETO if self.cut_risk[idx] else 0.0)

    def has_cut_risk(self, color_u: Color, color_v: Color) -> bool:
        return self.cut_risk[_PAIR_INDEX[ColorPair.of(color_u, color_v)]]

    @property
    def min_cost(self) -> float:
        return min(self.cost)

    @property
    def max_finite_cost(self) -> float:
        finite = [c for c in self.cost if c != HARD]
        return max(finite) if finite else 0.0

    @property
    def spread(self) -> float:
        """Maximum-spanning-tree weight: what coloring this edge wrongly
        can cost versus coloring it optimally.

        Hard edges weigh infinitely so the spanning tree always keeps them
        (the paper sets hard-edge weight "to a constant larger than any
        cost of nonhard constraint edges"). Cut-risk combos count at the
        veto level, so cut-avoiding edges are also prioritised.
        """
        if self.kind.is_hard:
            return HARD
        dp = [
            min(c, CUT_VETO) + (CUT_VETO if r else 0.0)
            for c, r in zip(self.cost, self.cut_risk)
        ]
        return max(dp) - min(dp)

    @property
    def parity(self) -> int:
        """For hard edges: required color parity (1 = different, 0 = same)."""
        if self.kind is EdgeKind.HARD_DIFF:
            return 1
        if self.kind is EdgeKind.HARD_SAME:
            return 0
        raise ValueError(f"{self.kind} edges carry no parity")

    def other(self, net_id: int) -> int:
        if net_id == self.u:
            return self.v
        if net_id == self.v:
            return self.u
        raise ValueError(f"net {net_id} not on edge ({self.u}, {self.v})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.u}-{self.v} {self.scenario.value} {self.kind.value})"

"""Cut-conflict analysis (Section III-D).

A **cut conflict** is a cut-mask MRC violation *over a target pattern*:
either a cut narrower than ``w_cut`` or two cuts closer than ``d_cut``
whose violation region touches a printed feature. Violations over spacers
are harmless (Ma et al. [12]) and ignored.

Type A conflicts (induced by one pattern pair) are already vetoed on the
constraint graph through the per-scenario ``cut_risk`` flags. This module
handles **type B** conflicts (three or more patterns): it synthesises the
*critical cut patterns* — cuts that directly define target-pattern edges —
implied by each detected scenario under a given coloring, and checks the
new cuts of a freshly routed net against all existing ones. All cuts this
library generates are at least ``w_cut`` wide, so only distance conflicts
can occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..color import Color, ColorPair
from ..geometry import GridIndex, Rect
from ..rules import DesignRules
from .scenario_detect import DetectedScenario
from .scenarios import ScenarioType


@dataclass(frozen=True)
class CriticalCut:
    """A cut pattern that directly defines a target-pattern boundary."""

    rect: Rect  # nm coordinates
    layer: int
    nets: Tuple[int, int]  # the pattern pair that requires this cut
    scenario: ScenarioType


def _between_region(a: Rect, b: Rect) -> Optional[Rect]:
    """The band strictly between two disjoint rectangles.

    A min-distance violation only distorts a feature when the feature sits
    *between* the two printed cuts; the band is the middle rectangle of
    the 3x3 tiling induced by the two rects. ``None`` when the rects are
    diagonal with no facing span (corner clusters — the printed cuts
    merge around the corner harmlessly).
    """
    # Facing in x: projections overlap in x, gap in y.
    x_overlap_lo, x_overlap_hi = max(a.xlo, b.xlo), min(a.xhi, b.xhi)
    y_overlap_lo, y_overlap_hi = max(a.ylo, b.ylo), min(a.yhi, b.yhi)
    gap_x = a.gap_x(b)
    gap_y = a.gap_y(b)
    if x_overlap_lo < x_overlap_hi and gap_y > 0:
        ylo = min(a.yhi, b.yhi)
        return Rect(x_overlap_lo, ylo, x_overlap_hi, ylo + gap_y)
    if y_overlap_lo < y_overlap_hi and gap_x > 0:
        xlo = min(a.xhi, b.xhi)
        return Rect(xlo, y_overlap_lo, xlo + gap_x, y_overlap_hi)
    return None


@dataclass(frozen=True)
class CutConflict:
    """Two critical cuts violating ``d_cut`` over a target pattern."""

    first: CriticalCut
    second: CriticalCut
    gap_nm: float
    over_net: int


class CutConflictChecker:
    """Synthesises critical cuts and finds type B min-distance conflicts."""

    def __init__(self, rules: DesignRules, num_layers: int) -> None:
        self.rules = rules
        self._cut_index: List[GridIndex[CriticalCut]] = [
            GridIndex(bucket_size=max(rules.pitch * 4, 1)) for _ in range(num_layers)
        ]
        self._wire_index: List[GridIndex[int]] = [
            GridIndex(bucket_size=max(rules.pitch * 4, 1)) for _ in range(num_layers)
        ]
        self._cuts_by_net: Dict[int, List[CriticalCut]] = {}
        self._wires_by_net: Dict[int, List[Tuple[int, Rect]]] = {}
        #: ``critical_cuts`` is pure in (scenario, colors) and both are
        #: frozen, so cut synthesis for a re-colored scenario is a memo
        #: lookup. Values keep a strong reference to the scenario so an
        #: ``id()`` can never be recycled under a live key.
        self._cut_memo: Dict[
            Tuple[int, Color, Color], Tuple[DetectedScenario, List[CriticalCut]]
        ] = {}

    # ------------------------------------------------------------------ #
    # Track -> nm lowering
    # ------------------------------------------------------------------ #

    def wire_rect_nm(self, cell_rect: Rect) -> Rect:
        """Physical wire rectangle of a grid-cell footprint."""
        pitch = self.rules.pitch
        half = self.rules.w_line // 2
        return Rect(
            cell_rect.xlo * pitch - half,
            cell_rect.ylo * pitch - half,
            (cell_rect.xhi - 1) * pitch + half,
            (cell_rect.yhi - 1) * pitch + half,
        )

    # ------------------------------------------------------------------ #
    # Critical cut synthesis
    # ------------------------------------------------------------------ #

    def critical_cuts(
        self, scenario: DetectedScenario, color_a: Color, color_b: Color
    ) -> List[CriticalCut]:
        """Cuts that the scenario requires under the given colors.

        Only scenarios whose chosen assignment defines a target boundary
        with the cut mask produce critical cuts; spacer-protected
        assignments produce none.
        """
        key = (id(scenario), color_a, color_b)
        hit = self._cut_memo.get(key)
        if hit is not None and hit[0] is scenario:
            return hit[1]
        pair = ColorPair.of(color_a, color_b)
        stype = scenario.scenario
        a_nm = self.wire_rect_nm(scenario.rect_a)
        b_nm = self.wire_rect_nm(scenario.rect_b)
        nets = (scenario.net_a, scenario.net_b)
        cuts: List[Rect] = []

        if stype is ScenarioType.T1B and pair.same:
            # Merge + cut: the cut separates the two merged tips.
            cuts.append(self._tip_gap_cut(a_nm, b_nm))
        elif stype is ScenarioType.T2B:
            # The middle of the two-track tip gap always needs a cut.
            cuts.append(self._tip_gap_cut(a_nm, b_nm))
        elif stype is ScenarioType.T2A and not pair.same:
            # Assist-core merge: the cut re-opens the core pattern's flank.
            core_rect = a_nm if pair.a is Color.CORE else b_nm
            other = b_nm if pair.a is Color.CORE else a_nm
            cuts.append(self._flank_cut(core_rect, other))
        elif stype is ScenarioType.T3A and pair is ColorPair.CC:
            cuts.append(self._corner_cut(a_nm, b_nm))
        elif stype is ScenarioType.T3B and pair is ColorPair.CC:
            cuts.append(self._corner_cut(a_nm, b_nm))
        elif stype is ScenarioType.T3B and pair is ColorPair.SC:
            cuts.append(self._corner_cut(a_nm, b_nm))
        elif stype is ScenarioType.T3C and pair is ColorPair.CS:
            cuts.append(self._corner_cut(a_nm, b_nm))
        elif stype is ScenarioType.T3D and not pair.same:
            cuts.append(self._corner_cut(a_nm, b_nm))

        result = [
            CriticalCut(rect=c, layer=scenario.layer, nets=nets, scenario=stype)
            for c in cuts
        ]
        self._cut_memo[key] = (scenario, result)
        return result

    def _tip_gap_cut(self, a_nm: Rect, b_nm: Rect) -> Rect:
        """Cut in the gap between two collinear tips, d_overlap into spacers."""
        rules = self.rules
        horizontal_gap = a_nm.gap_x(b_nm) > 0
        if horizontal_gap:
            lo = min(a_nm.xhi, b_nm.xhi)
            hi = max(a_nm.xlo, b_nm.xlo)
            mid_lo, mid_hi = self._cut_span(lo, hi)
            ylo = min(a_nm.ylo, b_nm.ylo) - rules.d_overlap
            yhi = max(a_nm.yhi, b_nm.yhi) + rules.d_overlap
            return Rect(mid_lo, ylo, mid_hi, yhi)
        lo = min(a_nm.yhi, b_nm.yhi)
        hi = max(a_nm.ylo, b_nm.ylo)
        mid_lo, mid_hi = self._cut_span(lo, hi)
        xlo = min(a_nm.xlo, b_nm.xlo) - rules.d_overlap
        xhi = max(a_nm.xhi, b_nm.xhi) + rules.d_overlap
        return Rect(xlo, mid_lo, xhi, mid_hi)

    def _cut_span(self, gap_lo: int, gap_hi: int) -> Tuple[int, int]:
        """Centre a >= w_cut cut in the [gap_lo, gap_hi) gap."""
        width = max(self.rules.w_cut, gap_hi - gap_lo - 2 * self.rules.w_spacer)
        width = max(width, self.rules.w_cut)
        center = (gap_lo + gap_hi) // 2
        return center - width // 2, center - width // 2 + width

    def _flank_cut(self, core_nm: Rect, second_nm: Rect) -> Rect:
        """Cut along the core pattern's side facing the second pattern."""
        rules = self.rules
        if core_nm.gap_y(second_nm) > 0:  # vertical separation, horizontal wires
            xlo = max(core_nm.xlo, second_nm.xlo)
            xhi = min(core_nm.xhi, second_nm.xhi)
            if xlo >= xhi:
                xlo, xhi = core_nm.xlo, core_nm.xhi
            if second_nm.ylo >= core_nm.yhi:  # second above core
                return Rect(xlo, core_nm.yhi - rules.d_overlap, xhi,
                            core_nm.yhi - rules.d_overlap + rules.w_cut)
            return Rect(xlo, core_nm.ylo + rules.d_overlap - rules.w_cut, xhi,
                        core_nm.ylo + rules.d_overlap)
        ylo = max(core_nm.ylo, second_nm.ylo)
        yhi = min(core_nm.yhi, second_nm.yhi)
        if ylo >= yhi:
            ylo, yhi = core_nm.ylo, core_nm.yhi
        if second_nm.xlo >= core_nm.xhi:  # second right of core
            return Rect(core_nm.xhi - rules.d_overlap, ylo,
                        core_nm.xhi - rules.d_overlap + rules.w_cut, yhi)
        return Rect(core_nm.xlo + rules.d_overlap - rules.w_cut, ylo,
                    core_nm.xlo + rules.d_overlap, yhi)

    def _corner_cut(self, a_nm: Rect, b_nm: Rect) -> Rect:
        """Cut covering the diagonal gap between two near corners."""
        size = self.rules.w_cut + 2 * self.rules.d_overlap
        # Corner of each rect nearest the other.
        cx_a = a_nm.xhi if b_nm.xlo >= a_nm.xhi else a_nm.xlo
        cy_a = a_nm.yhi if b_nm.ylo >= a_nm.yhi else a_nm.ylo
        cx_b = b_nm.xhi if a_nm.xlo >= b_nm.xhi else b_nm.xlo
        cy_b = b_nm.yhi if a_nm.ylo >= b_nm.yhi else b_nm.ylo
        cx = (cx_a + cx_b) // 2
        cy = (cy_a + cy_b) // 2
        return Rect(cx - size // 2, cy - size // 2,
                    cx - size // 2 + size, cy - size // 2 + size)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register_net(
        self,
        net_id: int,
        wire_rects: Iterable[Tuple[int, Rect]],
        cuts: Iterable[CriticalCut],
    ) -> None:
        """Commit a net's physical wires (nm) and its critical cuts."""
        wires = list(wire_rects)
        cut_list = list(cuts)
        for layer, rect in wires:
            self._wire_index[layer].insert(rect, net_id)
        for cut in cut_list:
            self._cut_index[cut.layer].insert(cut.rect, cut)
        self._wires_by_net.setdefault(net_id, []).extend(wires)
        self._cuts_by_net.setdefault(net_id, []).extend(cut_list)

    def remove_net(self, net_id: int) -> None:
        for layer, rect in self._wires_by_net.pop(net_id, []):
            self._wire_index[layer].remove(rect, net_id)
        for cut in self._cuts_by_net.pop(net_id, []):
            self._cut_index[cut.layer].remove(cut.rect, cut)

    def replace_net_cuts(self, net_id: int, cuts: Iterable[CriticalCut]) -> None:
        """Swap a net's registered cuts (after a color flip changed them)."""
        for cut in self._cuts_by_net.pop(net_id, []):
            self._cut_index[cut.layer].remove(cut.rect, cut)
        cut_list = list(cuts)
        for cut in cut_list:
            self._cut_index[cut.layer].insert(cut.rect, cut)
        if cut_list:
            self._cuts_by_net[net_id] = cut_list

    # ------------------------------------------------------------------ #
    # Conflict detection
    # ------------------------------------------------------------------ #

    def conflicts_with(self, candidate_cuts: Iterable[CriticalCut]) -> List[CutConflict]:
        """Type B conflicts between candidate cuts and all registered cuts.

        Two cuts conflict when their Euclidean gap is below ``d_cut`` and
        the region between them overlaps a target wire: that wire's two
        flanks would be defined by sub-``d_cut`` cut features, which print
        incorrectly (Fig. 5 logic, inverted: here the violation is over a
        pattern, so it counts).
        """
        conflicts: List[CutConflict] = []
        d_cut = self.rules.d_cut
        candidates = list(candidate_cuts)
        # The candidate-vs-candidate half is quadratic when a caller
        # (``_unique_conflicts``) passes every registered cut at once.
        # Bucket large batches in a throwaway GridIndex: ``neighbours``
        # applies the identical ``max(gap_x, gap_y) < d_cut`` predicate,
        # and the position filter + sort replays the original pair order,
        # so the conflict list is unchanged element for element.
        local: Optional[Dict[int, GridIndex[int]]] = None
        if len(candidates) > 8:
            local = {}
            for j, cand in enumerate(candidates):
                if cand.layer not in local:
                    local[cand.layer] = GridIndex()
                local[cand.layer].insert(cand.rect, j)
        for i, cut in enumerate(candidates):
            index = self._cut_index[cut.layer]
            others = [c for _, c in index.neighbours(cut.rect, d_cut)]
            if local is None:
                others.extend(
                    c for c in candidates[i + 1 :]
                    if c.layer == cut.layer
                    and max(c.rect.gap_x(cut.rect), c.rect.gap_y(cut.rect)) < d_cut
                )
            else:
                tail = sorted(
                    j
                    for _, j in local[cut.layer].neighbours(cut.rect, d_cut)
                    if j > i
                )
                others.extend(candidates[j] for j in tail)
            for other in others:
                conflict = self._pair_conflict(cut, other)
                if conflict is not None:
                    conflicts.append(conflict)
        return conflicts

    def _pair_conflict(
        self, cut: CriticalCut, other: CriticalCut
    ) -> Optional[CutConflict]:
        if set(other.nets) == set(cut.nets):
            # Cuts serving the same pattern pair sit in the same local
            # cluster and are drawn as one cut polygon; merged cuts are
            # legal over spacers.
            return None
        if cut.rect.overlaps(other.rect) or cut.rect.touches(other.rect):
            # Overlapping/abutting cuts merge into one drawn pattern;
            # merged cuts are legal (MRC spacing applies between disjoint
            # polygons only).
            return None
        gap_sq = cut.rect.euclidean_gap_sq(other.rect)
        if gap_sq >= self.rules.d_cut ** 2:
            return None
        region = _between_region(cut.rect, other.rect)
        if region is None:
            return None
        over = self._wire_hit(cut.layer, region, exclude=set())
        if over is None:
            return None  # violation over spacer only: ignorable
        return CutConflict(
            first=cut, second=other, gap_nm=gap_sq ** 0.5, over_net=over
        )

    def _wire_hit(self, layer: int, region: Rect, exclude: set) -> Optional[int]:
        """First net whose committed wire overlaps ``region``."""
        for _, net_id in self._wire_index[layer].query(region):
            if net_id not in exclude:
                return net_id
        return None

    def cuts_of(self, net_id: int) -> List[CriticalCut]:
        return list(self._cuts_by_net.get(net_id, ()))

    def all_cuts(self) -> List[CriticalCut]:
        out = []
        for cuts in self._cuts_by_net.values():
            out.extend(cuts)
        return out

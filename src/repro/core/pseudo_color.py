"""Greedy pseudo-coloring of a freshly routed net (Fig. 19, line 11).

After a net is routed its vertex joins the layer's constraint graph. The
net gets a provisional color immediately — the choice with "least hard
overlay violations and induced overlay" against the colors of already
routed nets. Color flipping later revisits the decision globally; pseudo
coloring only has to be locally sensible and O(degree).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..color import Color
from .constraint_graph import OverlayConstraintGraph
from .scenarios import HARD


def pseudo_color(
    graph: OverlayConstraintGraph,
    net_id: int,
    coloring: Dict[int, Color],
) -> Color:
    """Pick the cheaper color for ``net_id`` given its neighbours' colors.

    Uses the DP cost (physical overlay + cut-conflict veto); hard overlays
    count as infinite. Ties break toward CORE, which keeps isolated nets on
    the core mask — the assignment with no assist-core overhead.

    The chosen color is also written into ``coloring``.
    """
    totals = getattr(graph, "incident_dp_totals", None)
    if totals is not None:
        # SoA backend: both color totals in one vector pass. The scalar
        # loop below picks CORE first and replaces it only on a strictly
        # cheaper SECOND, so the tie-break is `<` on the SECOND total.
        # (The scalar loop's early break at HARD cannot change totals:
        # costs are non-negative, so a total that reached inf stays inf.)
        core_total, second_total = totals(net_id, coloring)
        best = Color.SECOND if second_total < core_total else Color.CORE
        coloring[net_id] = best
        return best

    best_color: Optional[Color] = None
    best_cost = HARD
    for color in (Color.CORE, Color.SECOND):
        total = 0.0
        for edge in graph.edges_of(net_id):
            if edge.u == net_id and edge.v == net_id:
                continue  # self-loops cannot occur, but stay safe
            if edge.u == net_id:
                other_color = coloring.get(edge.v, Color.CORE)
                cost = edge.dp_cost(color, other_color)
            else:
                other_color = coloring.get(edge.u, Color.CORE)
                cost = edge.dp_cost(other_color, color)
            total += cost
            if total >= HARD:
                break
        if best_color is None or total < best_cost:
            best_color = color
            best_cost = total
    assert best_color is not None
    coloring[net_id] = best_color
    return best_color

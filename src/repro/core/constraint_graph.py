"""The overlay constraint graph (Section III-B).

One graph per routing layer. Vertices are routed nets (per-layer color
freedom: "a net can be assigned to different colors in different routing
layers"); edges are scenario instances. The graph maintains a parity
union-find over its hard edges so that inserting a net's edges detects
hard odd cycles immediately, and it prices any color assignment (side
overlay units + type A cut risks) for the flipping machinery.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs
from ..color import Color
from .edges import ConstraintEdge, EdgeKind
from .odd_cycle import ParityUnionFind
from .scenarios import HARD


@dataclass(frozen=True)
class Evaluation:
    """Price of a color assignment on one layer's graph."""

    overlay_units: float
    hard_violations: int
    cut_risks: int

    @property
    def feasible(self) -> bool:
        return self.hard_violations == 0


class OverlayConstraintGraph:
    """Multigraph of constraint edges with incremental hard-cycle checking."""

    def __init__(self) -> None:
        self._edges: List[ConstraintEdge] = []
        #: The hard subset of ``_edges`` in insertion order — the rebuild
        #: below replays exactly these, so keeping them separate turns a
        #: full-edge-list scan (with an enum-membership test per edge)
        #: into a direct walk.
        self._hard_edges: List[ConstraintEdge] = []
        self._incident: Dict[int, List[ConstraintEdge]] = defaultdict(list)
        self._hard_uf = ParityUnionFind()
        #: True when removals invalidated ``_hard_uf``; the rebuild is
        #: deferred to the next hard-edge union or parity query so a
        #: multi-net rip-up pays for one rebuild, not one per net.
        self._uf_dirty = False
        self._vertices: Set[int] = set()
        # Mutation stamps: every structural change bumps the graph stamp
        # and marks the touched nets with it, so a connected component's
        # version (max member stamp) is cheap to compute and changes iff
        # anything inside the component changed. flip_colors keys its
        # per-component result cache on this.
        self._stamp = 0
        self._net_stamp: Dict[int, int] = {}
        #: flip_colors result cache: (min(component), refine) ->
        #: (version, members, colors). Owned by the graph so it lives and
        #: dies with the structure it mirrors; ``flip_cache_enabled``
        #: turns it off for A/B equivalence tests.
        self.flip_cache: Dict[
            Tuple[int, bool], Tuple[int, frozenset, Dict[int, Color]]
        ] = {}
        self.flip_cache_enabled = True
        # Union-find op accounting across rebuilds (retired = ops made by
        # union-finds that were since thrown away; published = what the
        # metrics registry has already been told).
        self._uf_retired_finds = 0
        self._uf_retired_unions = 0
        self._uf_published_finds = 0
        self._uf_published_unions = 0

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def vertices(self) -> Set[int]:
        return set(self._vertices)

    @property
    def edges(self) -> List[ConstraintEdge]:
        return list(self._edges)

    def num_edges(self) -> int:
        return len(self._edges)

    def edges_of(self, net_id: int) -> List[ConstraintEdge]:
        return list(self._incident.get(net_id, ()))

    def add_vertex(self, net_id: int) -> None:
        """Register a net even if it has no scenario yet (isolated vertex)."""
        if net_id not in self._vertices:
            self._vertices.add(net_id)
            self._touch((net_id,))

    def _touch(self, nets: Iterable[int]) -> None:
        self._stamp += 1
        stamp = self._stamp
        for net in nets:
            self._net_stamp[net] = stamp

    def component_version(self, nets: Iterable[int]) -> int:
        """Monotone version of a component: max mutation stamp over it."""
        get = self._net_stamp.get
        return max((get(net, 0) for net in nets), default=0)

    def add_edges(self, edges: Iterable[ConstraintEdge]) -> List[ConstraintEdge]:
        """Insert scenario edges; returns the hard edges that closed odd
        cycles (empty list = consistent).

        On failure the inserted edges *remain* in the graph — the router
        rips up the offending net, which calls :meth:`remove_net` and
        restores consistency. This mirrors the paper's flow (Fig. 19,
        lines 4-9): update, check, rip-up on violation.
        """
        offenders: List[ConstraintEdge] = []
        if self._uf_dirty:
            self._rebuild_hard_uf()
        ob = obs.get_active()
        touched: Set[int] = set()
        for edge in edges:
            self._edges.append(edge)
            self._incident[edge.u].append(edge)
            self._incident[edge.v].append(edge)
            self._vertices.add(edge.u)
            self._vertices.add(edge.v)
            touched.add(edge.u)
            touched.add(edge.v)
            if ob is not None:
                ob.registry.counter(
                    "ocg_edges_added_total", kind=edge.kind.value
                ).inc()
            if edge.kind.is_hard:
                self._hard_edges.append(edge)
                if not self._hard_uf.union(edge.u, edge.v, edge.parity):
                    offenders.append(edge)
                    if ob is not None:
                        ob.registry.counter("ocg_odd_cycle_hits_total").inc()
        if touched:
            self._touch(touched)
        if ob is not None:
            self._flush_uf_stats(ob)
        return offenders

    def remove_net(self, net_id: int) -> int:
        """Remove a net and its incident edges; returns edges removed.

        The parity union-find does not support deletion, so it is rebuilt
        from the surviving hard edges (linear in the number of hard edges,
        which rip-up frequency keeps negligible).
        """
        incident = self._incident.pop(net_id, [])
        self._net_stamp.pop(net_id, None)
        if not incident:
            self._vertices.discard(net_id)
            return 0
        doomed = set(map(id, incident))
        self._edges = [e for e in self._edges if id(e) not in doomed]
        neighbours = set()
        for edge in incident:
            other = edge.other(net_id)
            neighbours.add(other)
            self._incident[other] = [
                e for e in self._incident[other] if id(e) not in doomed
            ]
        self._vertices.discard(net_id)
        self._touch(neighbours)
        if any(e.kind.is_hard for e in incident):
            # Only hard edges live in the union-find; dropping a net with
            # none leaves it valid as-is.
            self._hard_edges = [e for e in self._hard_edges if id(e) not in doomed]
            self._uf_dirty = True
        return len(incident)

    def _rebuild_hard_uf(self) -> None:
        self._uf_dirty = False
        self._uf_retired_finds += self._hard_uf.find_ops
        self._uf_retired_unions += self._hard_uf.union_ops
        self._hard_uf = ParityUnionFind()
        for edge in self._hard_edges:
            self._hard_uf.union(edge.u, edge.v, edge.parity)
        ob = obs.get_active()
        if ob is not None:
            ob.registry.counter("ocg_uf_rebuilds_total").inc()
            self._flush_uf_stats(ob)

    def _flush_uf_stats(self, ob) -> None:
        """Publish union-find op deltas since the last flush."""
        finds = self._uf_retired_finds + self._hard_uf.find_ops
        unions = self._uf_retired_unions + self._hard_uf.union_ops
        if finds > self._uf_published_finds:
            ob.registry.counter("uf_find_ops_total").inc(
                finds - self._uf_published_finds
            )
            self._uf_published_finds = finds
        if unions > self._uf_published_unions:
            ob.registry.counter("uf_union_ops_total").inc(
                unions - self._uf_published_unions
            )
            self._uf_published_unions = unions

    # ------------------------------------------------------------------ #
    # Hard-constraint queries
    # ------------------------------------------------------------------ #

    def has_hard_odd_cycle(self) -> bool:
        """Full recheck: is the current hard-edge set two-color satisfiable?"""
        uf = ParityUnionFind()
        return not all(
            uf.union(e.u, e.v, e.parity) for e in self._edges if e.kind.is_hard
        )

    def hard_component_of(self, net_id: int):
        """(root, parity) of a net in the hard-edge union-find."""
        if self._uf_dirty:
            self._rebuild_hard_uf()
        return self._hard_uf.find(net_id)

    def would_violate(self, edges: Iterable[ConstraintEdge]) -> bool:
        """Would inserting ``edges`` close a hard odd cycle? (no mutation)

        Used by the router to price candidate paths. Builds a scratch
        overlay on top of the committed union-find by cloning only the
        roots involved — cheap because candidate paths touch few nets.
        """
        if self._uf_dirty:
            self._rebuild_hard_uf()
        scratch = ParityUnionFind()
        roots_seen: Dict = {}
        ok = True
        for edge in edges:
            if not edge.kind.is_hard:
                continue
            for node in (edge.u, edge.v):
                if node not in roots_seen:
                    root, parity = self._hard_uf.find(node)
                    roots_seen[node] = True
                    scratch.union(node, ("root", root), parity)
            ok &= scratch.union(edge.u, edge.v, edge.parity)
            if not ok:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def evaluate(self, coloring: Dict[int, Color]) -> Evaluation:
        """Price a full assignment. Vertices missing from ``coloring``
        default to CORE (the pseudo-coloring default)."""
        overlay = 0.0
        hard = 0
        risks = 0
        for edge in self._edges:
            cu = coloring.get(edge.u, Color.CORE)
            cv = coloring.get(edge.v, Color.CORE)
            cost = edge.pair_cost(cu, cv)
            if cost == HARD:
                hard += 1
            else:
                overlay += cost
            if edge.has_cut_risk(cu, cv):
                risks += 1
        return Evaluation(overlay_units=overlay, hard_violations=hard, cut_risks=risks)

    def net_cost(self, net_id: int, coloring: Dict[int, Color]) -> float:
        """Side-overlay units on edges incident to one net (HARD -> inf)."""
        total = 0.0
        for edge in self._incident.get(net_id, ()):
            cu = coloring.get(edge.u, Color.CORE)
            cv = coloring.get(edge.v, Color.CORE)
            total += edge.pair_cost(cu, cv)
        return total

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #

    def components(self) -> List[Set[int]]:
        """Connected components over *all* edges (hard and soft)."""
        seen: Set[int] = set()
        out: List[Set[int]] = []
        for start in sorted(self._vertices):
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for edge in self._incident.get(node, ()):
                    other = edge.other(node)
                    if other not in comp:
                        comp.add(other)
                        stack.append(other)
            seen |= comp
            out.append(comp)
        return out

    def component_of(self, net_id: int) -> Set[int]:
        comp = {net_id}
        stack = [net_id]
        while stack:
            node = stack.pop()
            for edge in self._incident.get(node, ()):
                other = edge.other(node)
                if other not in comp:
                    comp.add(other)
                    stack.append(other)
        return comp

    def edges_within(self, nets: Set[int]) -> List[ConstraintEdge]:
        """All edges whose endpoints both lie in ``nets`` (each once)."""
        out = []
        seen = set()
        for node in nets:
            for edge in self._incident.get(node, ()):
                if id(edge) in seen:
                    continue
                if edge.u in nets and edge.v in nets:
                    seen.add(id(edge))
                    out.append(edge)
        return out

    def contract_component(self, comp: Set[int]):
        """Super-vertex contraction of one component (see color_flip).

        Returns the contracted unit graph, or ``None`` when the
        component's hard edges are inconsistent. The SoA backend
        overrides this with a vectorized equivalent; flip_colors calls
        through this hook so both backends share the downstream
        spanning-forest + DP machinery.
        """
        from .color_flip import _contract

        return _contract(self.edges_within(comp), comp)

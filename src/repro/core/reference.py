"""Slow, obviously-correct reference implementations.

Cross-check oracles for the optimised algorithms — used by the property
tests and available to future maintainers chasing a miscompare:

* :func:`reference_dependent_pairs` — O(n²) scenario detection;
* :func:`reference_hard_feasible` — hard-edge satisfiability via
  networkx bipartiteness on the dummy-vertex expansion (the paper's
  Fig. 11(b) encoding, literally);
* :func:`reference_optimal_coloring` — exhaustive 2^n enumeration with
  the same DP costs the flipping machinery uses.

None of these are performance-relevant; they trade every optimisation for
transparency.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..color import Color
from ..geometry import Segment
from .constraint_graph import OverlayConstraintGraph
from .edges import ConstraintEdge
from .relation import classify_relation
from .scenario_detect import DetectedScenario
from .scenarios import SCENARIO_RULES, ScenarioType, scenario_for_relation


def reference_dependent_pairs(
    nets: Dict[int, Sequence[Segment]], include_trivial: bool = False
) -> List[Tuple[int, int, ScenarioType]]:
    """All scenario instances among the given nets, O(n²) brute force.

    Returns unordered-pair records ``(net_a, net_b, scenario)`` — one per
    fragment pair, with ``net_a < net_b`` — against which the incremental
    detector's output can be compared as a multiset.
    """
    flat = [
        (net_id, seg.to_rect(), seg.horizontal)
        for net_id, segs in nets.items()
        for seg in segs
        if seg.layer == 0  # reference is single-layer by construction
    ]
    out: List[Tuple[int, int, ScenarioType]] = []
    for (na, ra, ha), (nb, rb, hb) in combinations(flat, 2):
        if na == nb:
            continue
        rel = classify_relation(ra, ha, rb, hb)
        if rel is None:
            continue
        stype = scenario_for_relation(rel)
        if stype is None:
            continue
        if not include_trivial and SCENARIO_RULES[stype].is_trivial:
            continue
        lo, hi = min(na, nb), max(na, nb)
        out.append((lo, hi, stype))
    return out


def reference_hard_feasible(edges: Iterable[ConstraintEdge]) -> bool:
    """Two-colorability of the hard edges via networkx bipartiteness.

    Expands every hard-same edge into a dummy vertex with two
    hard-different edges — the literal Fig. 11(b) construction — and asks
    networkx whether the resulting graph is bipartite.
    """
    import networkx as nx

    g = nx.Graph()
    for i, edge in enumerate(edges):
        if not edge.kind.is_hard:
            continue
        g.add_node(edge.u)
        g.add_node(edge.v)
        if edge.parity == 1:
            g.add_edge(edge.u, edge.v)
        else:
            dummy = ("dummy", i)
            g.add_edge(edge.u, dummy)
            g.add_edge(dummy, edge.v)
    if g.number_of_nodes() == 0:
        return True
    return nx.is_bipartite(g)


def reference_optimal_coloring(
    graph: OverlayConstraintGraph, nets: Optional[Sequence[int]] = None
) -> Tuple[Dict[int, Color], float]:
    """Exhaustive optimum over all assignments (<= ~20 nets).

    Identical semantics to
    :func:`repro.core.color_flip.brute_force_coloring`, re-exported here
    so the oracle suite lives in one module.
    """
    from .color_flip import brute_force_coloring

    if nets is None:
        nets = sorted(graph.vertices)
    return brute_force_coloring(graph, list(nets))


def reference_overlay_cost(
    graph: OverlayConstraintGraph, coloring: Dict[int, Color]
) -> float:
    """Total physical side-overlay units of an assignment (inf on hard)."""
    total = 0.0
    for edge in graph.edges:
        total += edge.pair_cost(
            coloring.get(edge.u, Color.CORE), coloring.get(edge.v, Color.CORE)
        )
    return total

"""Minimal SVG writer for layouts and mask sets (no dependencies).

Renders nm-coordinate rectangles into standalone ``.svg`` files — used by
the Fig. 21/22 benches and the decomposition-gallery example to produce
inspectable images of core masks, spacers, cuts and printed features.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..color import Color
from ..geometry import Rect

#: Default layer styling: fill color and opacity.
MASK_STYLES: Dict[str, Tuple[str, float]] = {
    "target": ("#222222", 0.25),
    "core": ("#1f77b4", 0.85),
    "assist": ("#9edae5", 0.85),
    "spacer": ("#bbbbbb", 0.6),
    "cut": ("#d62728", 0.75),
    "second": ("#2ca02c", 0.85),
    "overlay": ("#ff00ff", 0.9),
}


class SvgCanvas:
    """Accumulates rectangles and writes an SVG (y flipped to point up)."""

    def __init__(self, viewbox: Rect, scale: float = 0.5) -> None:
        self.viewbox = viewbox
        self.scale = scale
        self._shapes: List[str] = []

    def add_rect(
        self,
        rect: Rect,
        fill: str,
        opacity: float = 1.0,
        stroke: Optional[str] = None,
        title: Optional[str] = None,
    ) -> None:
        s = self.scale
        x = (rect.xlo - self.viewbox.xlo) * s
        # Flip y so larger y draws higher, as in the paper's figures.
        y = (self.viewbox.yhi - rect.yhi) * s
        w, h = rect.width * s, rect.height * s
        stroke_attr = f' stroke="{stroke}" stroke-width="0.5"' if stroke else ""
        body = f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" fill="{fill}" fill-opacity="{opacity}"{stroke_attr}'
        if title:
            self._shapes.append(f"{body}><title>{title}</title></rect>")
        else:
            self._shapes.append(body + "/>")

    def add_layer(
        self, rects: Iterable[Rect], style: str, title: Optional[str] = None
    ) -> None:
        fill, opacity = MASK_STYLES.get(style, ("#000000", 1.0))
        for rect in rects:
            self.add_rect(rect, fill, opacity, title=title or style)

    def to_string(self) -> str:
        w = self.viewbox.width * self.scale
        h = self.viewbox.height * self.scale
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
            f'height="{h:.0f}" viewBox="0 0 {w:.0f} {h:.0f}">',
            f'<rect width="{w:.0f}" height="{h:.0f}" fill="white"/>',
        ]
        parts.extend(self._shapes)
        parts.append("</svg>")
        return "\n".join(parts)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_string())
        return path


def _bitmap_rects(bitmap, value=True) -> List[Rect]:
    """Convert a Bitmap into row-run rectangles (compact, exact)."""
    import numpy as np

    res = bitmap.resolution
    window = bitmap.window
    rects: List[Rect] = []
    data = bitmap.data
    for iy in range(data.shape[1]):
        col = data[:, iy]
        if not col.any():
            continue
        padded = np.concatenate(([False], col, [False]))
        diff = np.diff(padded.astype(np.int8))
        starts = np.flatnonzero(diff == 1)
        ends = np.flatnonzero(diff == -1)
        y0 = window.ylo + iy * res
        for s, e in zip(starts, ends):
            rects.append(
                Rect(window.xlo + int(s) * res, y0, window.xlo + int(e) * res, y0 + res)
            )
    return rects


def render_masks_svg(masks, path: Union[str, Path], scale: float = 0.5) -> Path:
    """Render a cut-process MaskSet: core, assist, spacer, cut, targets."""
    canvas = SvgCanvas(masks.window, scale=scale)
    canvas.add_layer(_bitmap_rects(masks.spacer), "spacer")
    canvas.add_layer(_bitmap_rects(masks.core_targets), "core")
    canvas.add_layer(_bitmap_rects(masks.assist), "assist")
    canvas.add_layer(_bitmap_rects(masks.merged_bridges()), "overlay", title="merge bridge")
    canvas.add_layer(_bitmap_rects(masks.cut_mask), "cut")
    for pattern in masks.targets:
        style = "core" if pattern.color is Color.CORE else "second"
        for rect in pattern.rects:
            canvas.add_rect(rect, "none", 0.0, stroke="#000000", title=f"net {pattern.net_id} ({style})")
    return canvas.write(path)


def render_stack_svg(
    grid,
    colorings: Dict[int, Dict[int, Color]],
    path: Union[str, Path],
    scale: float = 0.25,
    gap_nm: int = 200,
) -> Path:
    """Render every routed layer side by side in one SVG.

    Layers are laid out left to right with ``gap_nm`` of whitespace, each
    column labelled by the stack. Handy for eyeballing how a net hops
    between layers without opening several files.
    """
    from ..geometry import Point

    pitch = grid.rules.pitch
    half = grid.rules.w_line // 2
    panel_w = grid.width * pitch + 2 * pitch
    total_w = grid.num_layers * panel_w + (grid.num_layers - 1) * gap_nm
    window = Rect(-pitch, -pitch, total_w - pitch, grid.height * pitch + pitch)
    canvas = SvgCanvas(window, scale=scale)
    for layer in range(grid.num_layers):
        x_off = layer * (panel_w + gap_nm)
        coloring = colorings.get(layer, {})
        for x in range(grid.width):
            for y in range(grid.height):
                owner = grid.owner(layer, Point(x, y))
                if owner < 0:
                    continue
                rect = Rect(
                    x * pitch - half + x_off,
                    y * pitch - half,
                    x * pitch + half + x_off,
                    y * pitch + half,
                )
                style = "core" if coloring.get(owner) is Color.CORE else "second"
                canvas.add_layer([rect], style, title=f"M{layer + 1} net {owner}")
    return canvas.write(path)


def render_routing_svg(
    grid,
    colorings: Dict[int, Dict[int, Color]],
    path: Union[str, Path],
    layer: int = 0,
    scale: float = 0.25,
) -> Path:
    """Render one routed layer with per-net colors in nm space."""
    import numpy as np

    from ..geometry import Point

    pitch = grid.rules.pitch
    half = grid.rules.w_line // 2
    window = Rect(-pitch, -pitch, grid.width * pitch + pitch, grid.height * pitch + pitch)
    canvas = SvgCanvas(window, scale=scale)
    coloring = colorings.get(layer, {})
    for x in range(grid.width):
        for y in range(grid.height):
            owner = grid.owner(layer, Point(x, y))
            if owner < 0:
                continue
            rect = Rect(
                x * pitch - half, y * pitch - half, x * pitch + half, y * pitch + half
            )
            style = "core" if coloring.get(owner) is Color.CORE else "second"
            canvas.add_layer([rect], style, title=f"net {owner}")
    return canvas.write(path)

"""Dependency-free visualisation: ASCII layout dumps and SVG rendering."""

from .ascii_art import render_layer, render_coloring
from .svg import SvgCanvas, render_masks_svg, render_routing_svg, render_stack_svg

__all__ = [
    "render_layer",
    "render_coloring",
    "SvgCanvas",
    "render_masks_svg",
    "render_routing_svg",
    "render_stack_svg",
]

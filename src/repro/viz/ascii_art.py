"""ASCII rendering of routed grids (Figs. 21-22 style, in a terminal)."""

from __future__ import annotations

from typing import Dict, Optional

from ..color import Color
from ..grid import CellState, RoutingGrid

#: Glyph cycle for nets when no coloring is supplied.
_NET_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_layer(
    grid: RoutingGrid,
    layer: int,
    coloring: Optional[Dict[int, Color]] = None,
) -> str:
    """Render one layer's occupancy.

    Without a coloring, each net shows as a cycling glyph; with one, CORE
    nets print ``C``, SECOND nets ``s``, uncolored nets ``?``. Blockages
    are ``#`` and free cells ``.``; y grows upward, as in the figures.
    """
    from ..geometry import Point

    rows = []
    for y in range(grid.height - 1, -1, -1):
        row = []
        for x in range(grid.width):
            owner = grid.owner(layer, Point(x, y))
            if owner == int(CellState.FREE):
                row.append(".")
            elif owner == int(CellState.BLOCKED):
                row.append("#")
            elif coloring is None:
                row.append(_NET_GLYPHS[owner % len(_NET_GLYPHS)])
            else:
                color = coloring.get(owner)
                if color is Color.CORE:
                    row.append("C")
                elif color is Color.SECOND:
                    row.append("s")
                else:
                    row.append("?")
        rows.append("".join(row))
    return "\n".join(rows)


def render_coloring(
    grid: RoutingGrid, colorings: Dict[int, Dict[int, Color]]
) -> str:
    """Render every layer, stacked, with per-layer colorings."""
    blocks = []
    for layer in range(grid.num_layers):
        name = grid.layers[layer].name
        direction = grid.layers[layer].direction.value
        blocks.append(f"--- {name} ({direction}) ---")
        blocks.append(render_layer(grid, layer, colorings.get(layer)))
    return "\n".join(blocks)

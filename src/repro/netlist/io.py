"""Plain-text netlist serialisation.

Format (one net per line, ``#`` comments, blank lines ignored)::

    <name> L<layer> <x1>,<y1>[;<x2>,<y2>...] -> L<layer> <x1>,<y1>[;...] [-> ...]

A pin with several ``;``-separated coordinates is a multi-candidate pin;
pins beyond the second are taps of a multi-pin net. Net ids are assigned
in file order.

Blockage directives (macros, pre-routes) may be interleaved::

    BLOCK L<layer> <xlo>,<ylo>,<xhi>,<yhi>      # half-open track rect
    BLOCK * <xlo>,<ylo>,<xhi>,<yhi>             # on every layer

Example::

    # two fixed-pin nets, a multi-candidate one, and a 3-pin net
    BLOCK * 10,4,26,15
    n0 L0 1,2 -> L0 9,2
    n1 L0 4,4 -> L0 4,11
    n2 L0 0,0;0,1 -> L0 7,7;8,7;9,7
    n3 L0 1,1 -> L0 9,1 -> L0 5,8
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from ..errors import NetlistError
from ..geometry import Point
from .net import Net, Pin
from .netlist import Netlist


def _parse_pin(text: str) -> Pin:
    text = text.strip()
    if not text.startswith("L"):
        raise NetlistError(f"pin must start with layer tag 'L<n>': {text!r}")
    try:
        layer_part, coords_part = text.split(None, 1)
    except ValueError:
        raise NetlistError(f"malformed pin: {text!r}") from None
    try:
        layer = int(layer_part[1:])
    except ValueError:
        raise NetlistError(f"bad layer tag {layer_part!r}") from None
    points: List[Point] = []
    for chunk in coords_part.split(";"):
        try:
            x_str, y_str = chunk.split(",")
            points.append(Point(int(x_str), int(y_str)))
        except ValueError:
            raise NetlistError(f"bad coordinate {chunk!r} in pin {text!r}") from None
    return Pin(candidates=tuple(points), layer=layer)


def _format_pin(pin: Pin) -> str:
    coords = ";".join(f"{p.x},{p.y}" for p in pin.candidates)
    return f"L{pin.layer} {coords}"


def parse_design(text: str):
    """Parse a design file into ``(blockages, netlist)``.

    ``blockages`` is a list of ``(layer, Rect)`` with layer ``-1`` meaning
    "every layer" (the ``BLOCK *`` form).
    """
    from ..geometry import Rect

    netlist = Netlist()
    blockages = []
    net_id = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.split(None, 1)[0].upper() == "BLOCK":
            try:
                _, layer_tag, coords = line.split(None, 2)
                layer = -1 if layer_tag == "*" else int(layer_tag[1:])
                xlo, ylo, xhi, yhi = (int(v) for v in coords.split(","))
                blockages.append((layer, Rect(xlo, ylo, xhi, yhi)))
            except (ValueError, IndexError):
                raise NetlistError(
                    f"line {lineno}: malformed BLOCK directive {raw!r}"
                ) from None
            continue
        try:
            name, rest = line.split(None, 1)
            pin_texts = rest.split("->")
            if len(pin_texts) < 2:
                raise ValueError
        except ValueError:
            raise NetlistError(f"line {lineno}: malformed net line {raw!r}") from None
        pins = [_parse_pin(text) for text in pin_texts]
        netlist.add(
            Net(
                net_id=net_id,
                name=name,
                source=pins[0],
                target=pins[1],
                taps=tuple(pins[2:]),
            )
        )
        net_id += 1
    return blockages, netlist


def parse_netlist(text: str) -> Netlist:
    """Parse netlist text into a :class:`Netlist` (BLOCK lines ignored)."""
    _, netlist = parse_design(text)
    return netlist


def read_design_text(path: Union[str, Path]) -> str:
    """Read a design file's raw text with actionable errors.

    Missing or unreadable files raise a :class:`NetlistError` naming the
    path instead of surfacing a raw ``OSError`` traceback; parse errors
    raised downstream already carry the offending line number.
    """
    path = Path(path)
    try:
        return path.read_text()
    except FileNotFoundError:
        raise NetlistError(f"netlist file not found: {path}") from None
    except IsADirectoryError:
        raise NetlistError(f"netlist path is a directory, not a file: {path}") from None
    except OSError as exc:
        reason = exc.strerror or exc
        raise NetlistError(f"cannot read netlist file {path}: {reason}") from None


def read_design(path: Union[str, Path]):
    """Read a design file: returns ``(blockages, netlist)``.

    File-system problems and malformed content both raise a clean
    :class:`NetlistError` carrying the path (and, for parse errors, the
    line number) — never a raw traceback.
    """
    text = read_design_text(path)
    try:
        return parse_design(text)
    except NetlistError as exc:
        raise NetlistError(f"{path}: {exc}") from None


def read_netlist(path: Union[str, Path]) -> Netlist:
    """Read a netlist file (same error contract as :func:`read_design`)."""
    _, netlist = read_design(path)
    return netlist


def netlist_to_text(netlist: Netlist) -> str:
    """Serialise a netlist to the text format (round-trips with
    :func:`parse_netlist`; net ids are re-assigned in order on re-read)."""
    lines = []
    for net in netlist:
        pins = [net.source, net.target, *net.taps]
        lines.append(f"{net.name} " + " -> ".join(_format_pin(p) for p in pins))
    return "\n".join(lines) + "\n"


def write_netlist(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a netlist in the text format (round-trips with read_netlist)."""
    Path(path).write_text(netlist_to_text(netlist))

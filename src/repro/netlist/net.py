"""Pins and two-pin nets.

The paper's benchmarks are sets of two-pin nets on a grid. Two benchmark
families exist (Section IV):

* **fixed-pin** — each pin has exactly one legal location (the setting of
  Gao-Pan [11] and the cut-process router [16]);
* **multiple pin candidate locations** — each pin offers several candidate
  grid points and the router picks one (the setting of Du et al. [10]).

:class:`Pin` covers both: it is a non-empty tuple of candidate locations,
singleton in the fixed case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import NetlistError
from ..geometry import Point


@dataclass(frozen=True)
class Pin:
    """A pin with one or more candidate grid locations on a layer."""

    candidates: Tuple[Point, ...]
    layer: int = 0

    def __post_init__(self) -> None:
        if not self.candidates:
            raise NetlistError("pin must have at least one candidate location")
        if len(set(self.candidates)) != len(self.candidates):
            raise NetlistError(f"duplicate pin candidates: {self.candidates}")
        if self.layer < 0:
            raise NetlistError(f"pin layer must be >= 0, got {self.layer}")

    @classmethod
    def at(cls, x: int, y: int, layer: int = 0) -> "Pin":
        """A fixed pin at a single grid point."""
        return cls(candidates=(Point(x, y),), layer=layer)

    @classmethod
    def multi(cls, points: Tuple[Point, ...], layer: int = 0) -> "Pin":
        """A pin with multiple candidate locations."""
        return cls(candidates=tuple(points), layer=layer)

    @property
    def is_fixed(self) -> bool:
        return len(self.candidates) == 1

    @property
    def primary(self) -> Point:
        """The first (preferred) candidate."""
        return self.candidates[0]


@dataclass(frozen=True)
class Net:
    """A net to be routed and colored.

    The paper's benchmarks use two-pin nets (``source`` -> ``target``);
    additional terminals may be supplied via ``taps`` — the router
    connects the source-target trunk first and then each tap to the
    growing tree (a sequential Steiner extension beyond the paper).
    """

    net_id: int
    name: str
    source: Pin
    target: Pin
    taps: Tuple[Pin, ...] = ()

    def __post_init__(self) -> None:
        if self.net_id < 0:
            raise NetlistError(f"net id must be >= 0, got {self.net_id}")
        if not self.name:
            raise NetlistError("net must have a non-empty name")

    @property
    def half_perimeter(self) -> int:
        """HPWL lower bound over the primary pin candidates.

        Used for net ordering (short nets first) and as the admissible A*
        heuristic's baseline.
        """
        points = [self.source.primary, self.target.primary]
        points.extend(pin.primary for pin in self.taps)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    @property
    def is_multi_candidate(self) -> bool:
        pins = (self.source, self.target) + self.taps
        return not all(pin.is_fixed for pin in pins)

    @property
    def pin_count(self) -> int:
        return 2 + len(self.taps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.net_id}:{self.name})"

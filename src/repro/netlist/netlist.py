"""Netlist container with validation and ordering helpers."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import NetlistError
from .net import Net


class Netlist:
    """An ordered collection of uniquely-named, uniquely-numbered nets."""

    def __init__(self, nets: Iterable[Net] = ()) -> None:
        self._nets: List[Net] = []
        self._by_id: Dict[int, Net] = {}
        self._by_name: Dict[str, Net] = {}
        for net in nets:
            self.add(net)

    def add(self, net: Net) -> None:
        if net.net_id in self._by_id:
            raise NetlistError(f"duplicate net id {net.net_id}")
        if net.name in self._by_name:
            raise NetlistError(f"duplicate net name {net.name!r}")
        self._nets.append(net)
        self._by_id[net.net_id] = net
        self._by_name[net.name] = net

    def __len__(self) -> int:
        return len(self._nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self._nets)

    def __contains__(self, net_id: int) -> bool:
        return net_id in self._by_id

    def by_id(self, net_id: int) -> Net:
        try:
            return self._by_id[net_id]
        except KeyError:
            raise NetlistError(f"no net with id {net_id}") from None

    def by_name(self, name: str) -> Net:
        try:
            return self._by_name[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def ordered_for_routing(self, strategy: str = "hpwl", seed: int = 0) -> List[Net]:
        """Nets in routing order.

        Strategies:

        * ``"hpwl"`` (default) — shortest half-perimeter first, id ties.
          Short nets have the fewest detour alternatives, so routing them
          first is the standard sequential heuristic; rip-up & reroute
          recovers the cases where the order was wrong.
        * ``"hpwl_desc"`` — longest first (the classic counter-heuristic,
          useful for ordering-sensitivity studies).
        * ``"id"`` — netlist order.
        * ``"random"`` — seeded shuffle.
        """
        if strategy == "hpwl":
            return sorted(self._nets, key=lambda n: (n.half_perimeter, n.net_id))
        if strategy == "hpwl_desc":
            return sorted(self._nets, key=lambda n: (-n.half_perimeter, n.net_id))
        if strategy == "id":
            return sorted(self._nets, key=lambda n: n.net_id)
        if strategy == "random":
            import random

            nets = sorted(self._nets, key=lambda n: n.net_id)
            random.Random(seed).shuffle(nets)
            return nets
        raise NetlistError(f"unknown routing-order strategy {strategy!r}")

    def total_half_perimeter(self) -> int:
        return sum(n.half_perimeter for n in self._nets)

    def multi_candidate_count(self) -> int:
        return sum(1 for n in self._nets if n.is_multi_candidate)

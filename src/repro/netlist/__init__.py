"""Netlist model: pins (fixed or multi-candidate), two-pin nets, and I/O."""

from .net import Net, Pin
from .netlist import Netlist
from .io import (
    netlist_to_text,
    read_design,
    read_design_text,
    read_netlist,
    write_netlist,
)

__all__ = [
    "Pin",
    "Net",
    "Netlist",
    "netlist_to_text",
    "read_design",
    "read_design_text",
    "read_netlist",
    "write_netlist",
]

"""Netlist model: pins (fixed or multi-candidate), two-pin nets, and I/O."""

from .net import Net, Pin
from .netlist import Netlist
from .io import read_design, read_netlist, write_netlist

__all__ = ["Pin", "Net", "Netlist", "read_design", "read_netlist", "write_netlist"]

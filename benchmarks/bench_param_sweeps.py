"""Parameter sweeps — auditing the paper's Eq. (5) constants.

The paper fixes gamma = 1.5 and f_threshold = 10 without showing the
sensitivity; these benches sweep each knob over the scaled Test1 family
(seed-averaged) and record the resulting overlay/routability trade
curves in `results/sweep_*.txt`.
"""

from __future__ import annotations

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, sweep_parameter, sweep_to_table

SPEC = FIXED_PIN_BENCHMARKS[0]
SCALE = 0.15


def test_sweep_gamma(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: sweep_parameter(SPEC, "gamma", (0.0, 0.75, 1.5, 3.0), scale=SCALE),
        rounds=1,
        iterations=1,
    )
    table = sweep_to_table(points)
    print()
    print(table)
    (results_dir / "sweep_gamma.txt").write_text(
        "Sweep — type 2-b penalty weight gamma (paper: 1.5)\n" + table + "\n"
    )
    # Every setting preserves the guarantees (overlay varies, never the
    # conflict freedom — that is structural).
    assert all(p.routability_pct > 70 for p in points)


def test_sweep_flip_threshold(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: sweep_parameter(
            SPEC, "flip_threshold", (2.0, 10.0, 40.0), scale=SCALE
        ),
        rounds=1,
        iterations=1,
    )
    table = sweep_to_table(points)
    print()
    print(table)
    (results_dir / "sweep_flip_threshold.txt").write_text(
        "Sweep — flipping threshold f_threshold (paper: 10)\n" + table + "\n"
    )
    # A very lazy threshold must not beat the default on overlay by much:
    # the final full-layout pass catches most of it either way.
    default = next(p for p in points if p.value == 10.0)
    lazy = next(p for p in points if p.value == 40.0)
    assert lazy.overlay_nm >= default.overlay_nm * 0.5


def test_sweep_delta_tip(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: sweep_parameter(SPEC, "delta_tip", (0.0, 0.5, 2.0), scale=SCALE),
        rounds=1,
        iterations=1,
    )
    table = sweep_to_table(points)
    print()
    print(table)
    (results_dir / "sweep_delta_tip.txt").write_text(
        "Sweep — tip-abutment penalty delta_tip (ours: 0.5)\n" + table + "\n"
    )
    assert len(points) == 3

"""Table IV — multi-pin-candidate benchmarks: ours vs Du et al. [10].

Regenerates the paper's Table IV rows on scaled Test6-Test10 instances.
[10]'s exhaustive candidate-pair search with full-layout re-evaluation is
orders of magnitude slower; the paper aborts it beyond 10^5 s on
Test9/Test10 ("NA" rows) — we reproduce that with a proportional wall
clock budget.
"""

from __future__ import annotations

import pytest

from repro.baselines import DuTrimRouter
from repro.bench import MULTI_PIN_BENCHMARKS, run_baseline, run_proposed, rows_to_table
from repro.bench.runner import BenchRow, append_rows_json, comparison_summary

from conftest import circuit_enabled, scale_for

CIRCUITS = [s for s in MULTI_PIN_BENCHMARKS if circuit_enabled(s.name)]

#: Wall-clock budget for [10] per circuit, scaled down from the paper's
#: 10^5 s cap in proportion to our instance sizes.
DU_BUDGET_S = 120.0


@pytest.fixture(scope="module")
def table4_file(results_dir):
    out = results_dir / "table4.txt"
    out.write_text(
        "Table IV reproduction — multiple pin candidate locations\n"
        "ours vs Du et al. [10] (trim, exhaustive candidate search)\n\n"
    )
    json_twin = out.with_suffix(".json")
    if json_twin.exists():
        json_twin.unlink()  # fresh accumulation per regeneration
    return out


@pytest.mark.parametrize("spec", CIRCUITS, ids=lambda s: s.name)
def test_table4_circuit(benchmark, table4_file, spec):
    scale = scale_for(spec.name)
    ours = benchmark.pedantic(
        lambda: run_proposed(spec, scale=scale), rounds=1, iterations=1
    )
    du = run_baseline(
        DuTrimRouter, "du[10]", spec, scale=scale, time_budget_s=DU_BUDGET_S
    )

    table = rows_to_table([ours, du], caption=f"Table IV (scaled {scale:.2f}) — {spec.name}")
    print()
    print(table)
    print(comparison_summary([ours], [du]))
    with table4_file.open("a") as fh:
        fh.write(table + "\n")
        fh.write(comparison_summary([ours], [du]) + "\n\n")
    append_rows_json(table4_file.with_suffix(".json"), [ours, du], scale=scale)

    assert ours.conflicts == 0
    # [10] either lost routability to its frozen-color model, burnt far
    # more CPU, or timed out entirely (the paper's NA rows).
    timed_out = du.routability_pct < 50.0
    if not timed_out:
        assert du.cpu_s > ours.cpu_s * 0.9
        assert ours.overlay_nm < du.overlay_nm
    assert ours.routability_pct >= du.routability_pct or timed_out

"""Fig. 20 — router runtime as a function of the number of nets.

The paper plots CPU time against net count and reports an empirical
complexity of about n^1.42 (least-squares in log-log). We sweep instance
sizes at fixed density and reproduce the fit; Python absolute times
differ, the exponent must land in a sub-quadratic band.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, fit_power_law, generate_benchmark
from repro.router import SadpRouter

from conftest import scale_for

#: Sweep points: multipliers on the Test3 default scale. Kept large
#: enough that per-run time dwarfs interpreter noise (sub-100 ms points
#: wreck the log-log fit).
SWEEP = (1.0, 1.6, 2.4, 3.4)


def run_sweep():
    base = scale_for("Test3")
    xs, ys = [], []
    for factor in SWEEP:
        # Fixed net-span profile: the sweep must vary the *number* of
        # nets, not their length distribution, or congestion growth
        # contaminates the complexity fit.
        grid, nets = generate_benchmark(
            FIXED_PIN_BENCHMARKS[2], scale=base * factor, max_span_tracks=10
        )
        t0 = time.perf_counter()
        SadpRouter(grid, nets).route_all()
        elapsed = time.perf_counter() - t0
        xs.append(len(nets))
        ys.append(elapsed)
    return xs, ys


def test_fig20_scaling(benchmark, results_dir):
    xs, ys = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    fit = fit_power_law(xs, ys)

    lines = [
        "Fig. 20 reproduction — running time vs number of nets",
        f"{'#nets':>8s} {'CPU(s)':>10s}",
    ]
    for x, y in zip(xs, ys):
        lines.append(f"{x:8d} {y:10.2f}")
    lines.append(
        f"least-squares power law: time ~ n^{fit.exponent:.2f} "
        f"(coefficient {fit.coefficient:.2e}, R^2 {fit.r_squared:.3f}); "
        "paper reports n^1.42"
    )
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "fig20.txt").write_text(text + "\n")

    # Shape assertions: strongly sub-cubic growth with a solid fit.
    assert 0.8 <= fit.exponent <= 2.6, f"exponent {fit.exponent} out of band"
    assert fit.r_squared >= 0.80

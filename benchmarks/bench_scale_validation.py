"""Scale validation — the paper's claims on a mid-size instance.

The table benches run heavily scaled circuits for speed; this bench
routes one mid-size instance (several hundred nets) and asserts the
paper's headline guarantees hold beyond toy scale: zero cut conflicts,
zero hard overlays, routability in the published band.
"""

from __future__ import annotations

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, generate_benchmark
from repro.router import SadpRouter


def run_midsize():
    grid, nets = generate_benchmark(
        FIXED_PIN_BENCHMARKS[2], scale=0.3, max_span_tracks=10
    )
    router = SadpRouter(grid, nets)
    return grid, nets, router.route_all()


def test_midsize_guarantees(benchmark, results_dir):
    grid, nets, result = benchmark.pedantic(run_midsize, rounds=1, iterations=1)

    text = (
        "Scale validation — Test3 @ 0.3 "
        f"({len(nets)} nets, {grid.width}x{grid.height} tracks, 3 layers)\n"
        f"  {result.summary()}\n"
    )
    print()
    print(text)
    (results_dir / "scale_validation.txt").write_text(text)

    assert result.cut_conflicts == 0
    assert result.hard_overlays == 0
    # The paper's routability band is 94.0-98.4 %.
    assert result.routability >= 0.93
    assert len(result.routes) >= 400

"""Table II — the scenario color-rule table, regenerated from physics.

The library's scenario table (``repro.core.scenarios``) encodes the
paper's Table II / Figs. 23-34. This benchmark re-derives every
(scenario, color pair) cell with the bitmap decomposition engine —
synthesise the two-pattern clip, decompose, measure — and prints the
physical table next to the coded one, flagging the cells where physics
disagrees with the paper's accounting (see EXPERIMENTS.md, "model vs
physics", for the analysis of those cells).
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.color import ALL_PAIRS, Color, ColorPair
from repro.core import HARD, SCENARIO_RULES, ScenarioType
from repro.core.scenarios import table2_rows
from repro.decompose import scenario_clip, synthesize_masks, verify_decomposition
from repro.rules import DesignRules

RULES = DesignRules()


def physical_cell(stype: ScenarioType, pair: ColorPair) -> Tuple[float, bool]:
    """(side overlay units, manufacturable?) measured by the bitmap engine."""
    clip = scenario_clip(stype, pair, RULES)
    report = verify_decomposition(synthesize_masks(clip, RULES))
    units = report.overlay.side_overlay_nm / RULES.w_line
    ok = report.prints_correctly and report.overlay.hard_overlay_count == 0
    return units, ok


def physical_table() -> Dict[ScenarioType, Dict[ColorPair, Tuple[float, bool]]]:
    return {
        stype: {pair: physical_cell(stype, pair) for pair in ALL_PAIRS}
        for stype in ScenarioType
    }


def render(table) -> str:
    lines = [
        "Table II — color rules per potential overlay scenario",
        "(coded = paper's accounting in scenario units; physical = bitmap",
        " engine side-overlay units, '!' = hard/undecomposable)",
        "",
        f"{'type':5s} {'pair':4s} {'coded':>7s} {'physical':>9s}",
        "-" * 30,
    ]
    for stype in ScenarioType:
        rule = SCENARIO_RULES[stype]
        for pair in ALL_PAIRS:
            coded = rule.cost[pair]
            coded_text = "hard" if coded == HARD else f"{coded:.0f}"
            units, ok = table[stype][pair]
            phys_text = f"{units:.1f}" + ("" if ok else "!")
            lines.append(
                f"{stype.value:5s} {pair.name:4s} {coded_text:>7s} {phys_text:>9s}"
            )
    lines.append("")
    lines.append("Coded color-rule summary (the paper's Table II columns):")
    lines.append(f"{'type':5s} {'rule':>8s} {'minSO':>6s} {'maxSO':>6s}")
    for row in table2_rows():
        lines.append(f"{row[0]:5s} {row[1]:>8s} {row[2]:>6s} {row[3]:>6s}")
    return "\n".join(lines)


def test_table2_regeneration(benchmark, results_dir):
    table = benchmark.pedantic(physical_table, rounds=1, iterations=1)
    text = render(table)
    (results_dir / "table2.txt").write_text(text + "\n")
    print()
    print(text)

    # Agreement checks on the load-bearing cells. (Cells where the paper's
    # accounting and physics are known to differ — 2-b's floor, 2-c's
    # merged tip-to-flank — are printed above and analysed in
    # EXPERIMENTS.md, not asserted.)
    def cell(stype, pair):
        return table[stype][pair]

    # Hard scenarios: the forbidden assignments really are catastrophic...
    for pair in (ColorPair.CC, ColorPair.SS):
        units, ok = cell(ScenarioType.T1A, pair)
        assert units > 1 or not ok
    # ...and the color rules really rescue them.
    for pair in (ColorPair.CS, ColorPair.SC):
        units, ok = cell(ScenarioType.T1A, pair)
        assert ok and units == 0
    # The merge technique: same-colored abutting tips are free (the
    # paper's headline flexibility win), mixed colors are worse.
    for pair in (ColorPair.CC, ColorPair.SS):
        units, ok = cell(ScenarioType.T1B, pair)
        assert ok and units == 0
    assert cell(ScenarioType.T1B, ColorPair.CS)[0] > 0
    # 2-a: same colors free; assist-merge combos heavily penalised.
    assert cell(ScenarioType.T2A, ColorPair.CC) == (0, True)
    assert cell(ScenarioType.T2A, ColorPair.SS)[0] == 0
    assert cell(ScenarioType.T2A, ColorPair.CS)[0] > 2
    # 3-a: the corner merge costs ~one unit under CC, nothing otherwise.
    assert cell(ScenarioType.T3A, ColorPair.CC)[0] > 0
    assert cell(ScenarioType.T3A, ColorPair.CS)[0] == 0
    # 3-e is physically trivial, as coded.
    for pair in ALL_PAIRS:
        assert cell(ScenarioType.T3E, pair) == (0, True)

"""Shared configuration for the benchmark harness.

Every paper artifact (table/figure) has one ``bench_*.py`` file. The
benchmarks run on *scaled* instances by default so a laptop regenerates
everything in minutes:

* ``REPRO_BENCH_SCALE`` — multiplier on the per-circuit default scales
  (1.0 = defaults, ~5.5 = paper-scale for Test1; expect long runtimes);
* ``REPRO_BENCH_CIRCUITS`` — comma-separated TestN names to restrict to.

Regenerated tables/figures are written under ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

#: Per-circuit default scales: larger circuits shrink more aggressively so
#: the default harness covers every row of Tables III/IV in minutes.
DEFAULT_SCALES = {
    "Test1": 0.18,
    "Test2": 0.15,
    "Test3": 0.11,
    "Test4": 0.08,
    "Test5": 0.06,
    "Test6": 0.18,
    "Test7": 0.15,
    "Test8": 0.11,
    "Test9": 0.08,
    "Test10": 0.06,
}

RESULTS_DIR = Path(__file__).parent / "results"


def scale_for(circuit: str) -> float:
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return min(DEFAULT_SCALES[circuit] * multiplier, 1.0)


def circuit_enabled(name: str) -> bool:
    raw = os.environ.get("REPRO_BENCH_CIRCUITS", "")
    chosen = {c.strip().lower() for c in raw.split(",") if c.strip()}
    return not chosen or name.lower() in chosen


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

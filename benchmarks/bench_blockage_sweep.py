"""Blockage-density sweep — the obstacle-aware extension, measured.

Sweeps macro-blockage density on the scaled Test1 family and records the
routability/overlay curve. Not a paper artifact (the paper's benchmarks
have no blockages) but the experiment an adopter with real floorplans
asks for first — and a stress test that the zero-conflict guarantee is
density-independent.
"""

from __future__ import annotations

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, generate_benchmark
from repro.router import SadpRouter

DENSITIES = (0.0, 0.08, 0.16, 0.24)
SEEDS = (2014, 7)


def run_sweep():
    rows = []
    for density in DENSITIES:
        rout = overlay = conflicts = 0.0
        for seed in SEEDS:
            grid, nets = generate_benchmark(
                FIXED_PIN_BENCHMARKS[0],
                scale=0.15,
                seed=seed,
                blockage_density=density,
            )
            result = SadpRouter(grid, nets).route_all()
            rout += result.routability * 100
            overlay += result.overlay_nm
            conflicts += result.cut_conflicts
        rows.append(
            (density, rout / len(SEEDS), overlay / len(SEEDS), conflicts)
        )
    return rows


def test_blockage_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "Blockage-density sweep — scaled Test1, mean of 2 seeds",
        f"{'density':>8s} {'rout.%':>8s} {'overlay(nm)':>12s} {'#C':>4s}",
        "-" * 36,
    ]
    for density, rout, overlay, conflicts in rows:
        lines.append(f"{density:8.2f} {rout:8.1f} {overlay:12.0f} {conflicts:4.0f}")
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "blockage_sweep.txt").write_text(text + "\n")

    # Guarantees hold at every density; routability decays gracefully.
    assert all(conflicts == 0 for _, _, _, conflicts in rows)
    assert rows[0][1] >= rows[-1][1] - 1.0  # no miraculous gains from macros
    assert rows[-1][1] > 60.0  # still routes most nets at 24% blockage

"""Fig. 22 — partial routing result of the baseline [16] on the same clip.

The paper's Fig. 22 shows [16]'s result where the merger of core patterns
and assistant core patterns induces severe side overlays. We run the
Fig. 21 clip through the [16] baseline and compare: it must either fail
the abutting net (no merge technique) or commit measurably more overlay
than the proposed router.
"""

from __future__ import annotations

import pytest

from repro.baselines import CutNoMergeRouter
from repro.grid import RoutingGrid
from repro.netlist import Netlist
from repro.router import SadpRouter
from repro.viz import render_layer

from bench_fig21 import odd_cycle_netlist


def run_pair():
    ours_grid = RoutingGrid(26, 26)
    ours = SadpRouter(ours_grid, odd_cycle_netlist()).route_all()
    their_grid = RoutingGrid(26, 26)
    theirs = CutNoMergeRouter(their_grid, odd_cycle_netlist()).route_all()
    return ours, theirs, their_grid


def test_fig22_baseline_struggles(benchmark, results_dir):
    ours, theirs, their_grid = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    assert ours.routability == 1.0
    assert ours.cut_conflicts == 0

    # [16] cannot merge the abutting pair: net C detours, fails, or the
    # committed result carries conflicts/overlay the complete model sees.
    degraded = (
        theirs.routability < 1.0
        or theirs.cut_conflicts > 0
        or theirs.total_wirelength > ours.total_wirelength
        or theirs.overlay_nm > ours.overlay_nm
    )
    assert degraded, "[16] should visibly struggle on the odd-cycle clip"

    art = render_layer(their_grid, 0, theirs.colorings.get(0, {}))
    (results_dir / "fig22.txt").write_text(
        "Fig. 22 reproduction — [16] (no merge technique) on the odd-cycle clip\n"
        f"routability {theirs.routability * 100:.0f}%, overlay {theirs.overlay_nm:.0f} nm, "
        f"conflicts {theirs.cut_conflicts}, wirelength {theirs.total_wirelength} "
        f"(ours: 100%, {ours.overlay_nm:.0f} nm, 0, {ours.total_wirelength})\n\n"
        + art
        + "\n"
    )
    print()
    print((results_dir / "fig22.txt").read_text())

"""Fig. 21 — partial routing result of the proposed router.

The paper's Fig. 21 shows a routed clip in which an odd cycle of layout
patterns is decomposed by the merge-and-cut technique, with side overlays
no longer than one unit. We craft the same situation — three mutually
dependent wires whose constraint cycle is odd — route it, decompose the
layer physically, and render an SVG of the masks.
"""

from __future__ import annotations

import pytest

from repro.color import Color
from repro.decompose import routing_to_targets, synthesize_masks, verify_decomposition
from repro.grid import RoutingGrid
from repro.netlist import Net, Netlist, Pin
from repro.router import SadpRouter
from repro.viz import render_layer, render_masks_svg


def odd_cycle_netlist() -> Netlist:
    """Two parallel adjacent wires plus a collinear abutting one.

    Constraint cycle: 1-a (A, B), 1-a (B, C detour) ... the crafted set
    reliably produces a 1-a/1-a/1-b odd cycle on layer 0, the exact case
    the trim process cannot decompose and the cut process can.
    """
    return Netlist(
        [
            Net(0, "A", Pin.at(2, 10), Pin.at(12, 10)),
            Net(1, "B", Pin.at(2, 11), Pin.at(12, 11)),
            Net(2, "C", Pin.at(13, 10), Pin.at(22, 10)),
        ]
    )


def run_clip():
    grid = RoutingGrid(26, 26)
    router = SadpRouter(grid, odd_cycle_netlist())
    result = router.route_all()
    return grid, router, result


def test_fig21_odd_cycle_decomposition(benchmark, results_dir):
    grid, router, result = benchmark.pedantic(run_clip, rounds=1, iterations=1)

    assert result.routability == 1.0
    assert result.cut_conflicts == 0
    assert result.hard_overlays == 0

    colors = result.colorings[0]
    # The odd cycle is decomposed via the merge: A and C share a color
    # (1-b pair, merged and separated by a cut), B differs from A.
    assert colors[0] != colors[1]
    assert colors[0] == colors[2]

    # Physical check: the layer decomposes with overlays <= 1 unit each.
    targets = routing_to_targets(grid, result, 0)
    masks = synthesize_masks(targets, grid.rules)
    report = verify_decomposition(masks)
    assert report.prints_correctly
    assert report.overlay.hard_overlay_count == 0
    for edge in report.overlay.edges:
        if edge.is_side:
            assert edge.max_run_nm <= grid.rules.w_line

    svg_path = render_masks_svg(masks, results_dir / "fig21.svg")
    ascii_art = render_layer(grid, 0, colors)
    (results_dir / "fig21.txt").write_text(
        "Fig. 21 reproduction — odd cycle decomposed by merge + cut\n"
        f"colors: {{net: color}} = "
        f"{ {n: c.value for n, c in sorted(colors.items())} }\n\n"
        + ascii_art
        + "\n\nSVG of the synthesised masks: fig21.svg\n"
        f"side overlay: {report.overlay.side_overlay_nm} nm, "
        f"tip overlay: {report.overlay.tip_overlay_nm} nm, "
        f"cut conflicts: {len(report.cut_conflicts)}\n"
    )
    print()
    print((results_dir / "fig21.txt").read_text())
    assert svg_path.exists()

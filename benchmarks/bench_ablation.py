"""Ablations — the design choices DESIGN.md calls out, measured.

Not a paper artifact, but the evaluation the paper implies: what do the
color-flipping pass (contribution 4), the merge technique (contribution
1), and the type 2-b routing penalty (Eq. 5's gamma term) buy? Each
ablation routes the same instances with one mechanism disabled,
averaged over three seeds (single instances are noisy).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, generate_benchmark
from repro.router import CostParams, SadpRouter

from conftest import scale_for

SEEDS = (2014, 7, 99)


def run_variants(**kwargs) -> Dict[str, float]:
    """Mean metrics of the Test2 instance family under one configuration."""
    scale = scale_for("Test2")
    overlay = routability = wirelength = ripups = conflicts = 0.0
    for seed in SEEDS:
        grid, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[1], scale=scale, seed=seed)
        result = SadpRouter(grid, nets, **kwargs).route_all()
        overlay += result.overlay_nm
        routability += result.routability * 100
        wirelength += result.total_wirelength
        ripups += result.total_ripups
        conflicts += result.cut_conflicts
    n = len(SEEDS)
    return {
        "overlay": overlay / n,
        "rout": routability / n,
        "wl": wirelength / n,
        "ripups": ripups / n,
        "conflicts": conflicts,
    }


def _report(results_dir, name: str, title: str, rows: List[str]) -> None:
    text = title + "\n" + "\n".join(rows) + "\n"
    print()
    print(text)
    (results_dir / name).write_text(text)


def test_ablation_color_flipping(benchmark, results_dir):
    full = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    no_flip = run_variants(enable_flipping=False)
    _report(
        results_dir,
        "ablation_flipping.txt",
        f"Ablation — color flipping (contribution 4), mean of {len(SEEDS)} seeds",
        [
            f"  with flipping   : overlay {full['overlay']:8.0f} nm, rout {full['rout']:5.1f}%",
            f"  without flipping: overlay {no_flip['overlay']:8.0f} nm, rout {no_flip['rout']:5.1f}%",
        ],
    )
    assert full["conflicts"] == 0 and no_flip["conflicts"] == 0
    # Flipping must reduce mean overlay.
    assert full["overlay"] < no_flip["overlay"]


def test_ablation_merge_technique(benchmark, results_dir):
    """Contribution 1: what the merge-and-cut odd-cycle trick buys."""
    full = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    no_merge = run_variants(enable_merge=False)
    _report(
        results_dir,
        "ablation_merge.txt",
        f"Ablation — merge technique (contribution 1), mean of {len(SEEDS)} seeds",
        [
            f"  with merge    : rout {full['rout']:5.1f}%, wl {full['wl']:.0f}, ripups {full['ripups']:.1f}",
            f"  without merge : rout {no_merge['rout']:5.1f}%, wl {no_merge['wl']:.0f}, ripups {no_merge['ripups']:.1f}",
        ],
    )
    assert no_merge["conflicts"] == 0
    # Without the merge technique, abutting tips force extra rip-up work
    # and/or routability loss.
    assert (
        no_merge["rout"] < full["rout"] or no_merge["ripups"] > full["ripups"]
    )


def test_ablation_t2b_penalty(benchmark, results_dir):
    full = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    no_t2b = run_variants(enable_t2b_penalty=False)
    _report(
        results_dir,
        "ablation_t2b.txt",
        f"Ablation — type 2-b penalty (Eq. 5 gamma), mean of {len(SEEDS)} seeds",
        [
            f"  with penalty    : overlay {full['overlay']:8.0f} nm, wl {full['wl']:.0f}",
            f"  without penalty : overlay {no_t2b['overlay']:8.0f} nm, wl {no_t2b['wl']:.0f}",
        ],
    )
    # Reproduction finding (see EXPERIMENTS.md): on our synthetic
    # workloads the gamma term is roughly overlay-neutral — the detours
    # it buys cost as much in other scenarios as the 2-b floors it
    # avoids. We keep the paper's default for fidelity and only assert
    # the guarantees and that the effect stays small either way.
    assert no_t2b["conflicts"] == 0
    assert abs(no_t2b["overlay"] - full["overlay"]) <= 0.5 * full["overlay"]

"""Physical audit — the bitmap engine judges a routed benchmark.

Routes a scaled Test1 instance, lowers every layer to nm, runs the full
SADP decomposition, and records what the *physics* says about the result:
printability, measured side/tip overlay, physical hard-overlay residuals
and cut conflicts per layer. This is the paper's implicit end-to-end
claim ("routing results are guaranteed to be conflict-free and thus
decomposable") checked by an independent model, kept as an artifact.
"""

from __future__ import annotations

import pytest

from repro.bench import FIXED_PIN_BENCHMARKS, generate_benchmark
from repro.decompose import routing_to_targets, synthesize_masks, verify_decomposition
from repro.router import SadpRouter


def run_audit():
    grid, nets = generate_benchmark(FIXED_PIN_BENCHMARKS[0], scale=0.2)
    router = SadpRouter(grid, nets)
    result = router.route_all()
    layer_reports = []
    for layer in range(grid.num_layers):
        targets = routing_to_targets(grid, result, layer)
        if not targets:
            layer_reports.append(None)
            continue
        masks = synthesize_masks(targets, grid.rules)
        layer_reports.append(verify_decomposition(masks))
    return grid, result, layer_reports


def test_physical_audit(benchmark, results_dir):
    grid, result, reports = benchmark.pedantic(run_audit, rounds=1, iterations=1)

    lines = [
        "Physical audit — scaled Test1 routed, decomposed, measured",
        f"router: {result.summary()}",
        "",
        f"{'layer':>6s} {'prints':>7s} {'side(nm)':>9s} {'tip(nm)':>8s} "
        f"{'hard':>5s} {'cuts':>5s}",
    ]
    total_hard = 0
    total_cuts = 0
    for layer, report in enumerate(reports):
        if report is None:
            lines.append(f"{layer:6d}    (no wires)")
            continue
        lines.append(
            f"{layer:6d} {str(report.prints_correctly):>7s} "
            f"{report.overlay.side_overlay_nm:9d} "
            f"{report.overlay.tip_overlay_nm:8d} "
            f"{report.overlay.hard_overlay_count:5d} "
            f"{len(report.cut_conflicts):5d}"
        )
        total_hard += report.overlay.hard_overlay_count
        total_cuts += len(report.cut_conflicts)
        assert report.prints_correctly
    routed = result.routed_count
    lines.append("")
    lines.append(
        f"abstract model: {result.overlay_nm:.0f} nm overlay, "
        f"{result.hard_overlays} hard, {result.cut_conflicts} conflicts; "
        f"physical residuals: {total_hard} hard runs, {total_cuts} cut "
        f"conflicts over {routed} routed nets (see EXPERIMENTS.md, "
        "'model vs physics')"
    )
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "physical_audit.txt").write_text(text + "\n")

    # The abstract guarantees are absolute. The physical residuals are
    # bounded but not zero — the paper's scenario model under-counts at
    # dense tip clusters (quantified in EXPERIMENTS.md, 'model vs
    # physics'): hard runs stay below one per two routed nets, physical
    # cut adjacencies below one per routed net.
    assert result.cut_conflicts == 0
    assert result.hard_overlays == 0
    assert total_hard <= routed // 2 + 3
    assert total_cuts <= routed + 5

    # The *total* side-overlay measurement, however, must agree with the
    # abstract accounting within a factor of two — the models disagree on
    # classification (hard vs soft), not on magnitude.
    physical_nm = sum(
        r.overlay.side_overlay_nm for r in reports if r is not None
    )
    assert physical_nm <= 2 * result.overlay_nm + 500
    assert physical_nm >= result.overlay_nm / 3 - 500

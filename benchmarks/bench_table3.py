"""Table III — fixed-pin benchmarks: ours vs Gao-Pan [11] vs [16].

Regenerates the paper's Table III rows (routability %, overlay length,
number of cut/trim conflicts, CPU seconds) on scaled Test1-Test5
instances. Absolute values differ from the paper (synthetic instances,
Python runtime); the *shape* must hold: ours has zero conflicts, the
smallest overlay by a large factor, and routability at least on par.
"""

from __future__ import annotations

import pytest

from repro.baselines import CutNoMergeRouter, GaoPanTrimRouter
from repro.bench import FIXED_PIN_BENCHMARKS, run_baseline, run_proposed, rows_to_table
from repro.bench.runner import append_rows_json, comparison_summary

from conftest import circuit_enabled, scale_for

CIRCUITS = [s for s in FIXED_PIN_BENCHMARKS if circuit_enabled(s.name)]


@pytest.fixture(scope="module")
def table3_file(results_dir):
    out = results_dir / "table3.txt"
    out.write_text(
        "Table III reproduction — fixed-pin benchmarks\n"
        "ours vs Gao-Pan [11] (trim) vs [16] (cut, no merge)\n\n"
    )
    json_twin = results_dir / "table3.json"
    if json_twin.exists():
        json_twin.unlink()  # fresh accumulation per regeneration
    return out


@pytest.mark.parametrize("spec", CIRCUITS, ids=lambda s: s.name)
def test_table3_circuit(benchmark, table3_file, spec):
    scale = scale_for(spec.name)
    ours = benchmark.pedantic(
        lambda: run_proposed(spec, scale=scale), rounds=1, iterations=1
    )
    gao_pan = run_baseline(GaoPanTrimRouter, "gao-pan[11]", spec, scale=scale)
    cut16 = run_baseline(CutNoMergeRouter, "cut[16]", spec, scale=scale)

    rows = [ours, gao_pan, cut16]
    table = rows_to_table(rows, caption=f"Table III (scaled {scale:.2f}) — {spec.name}")
    print()
    print(table)
    print(comparison_summary([ours], [gao_pan]))
    print(comparison_summary([ours], [cut16]))

    with table3_file.open("a") as fh:
        fh.write(table + "\n")
        fh.write(comparison_summary([ours], [gao_pan]) + "\n")
        fh.write(comparison_summary([ours], [cut16]) + "\n\n")
    append_rows_json(table3_file.with_suffix(".json"), rows, scale=scale)

    # The paper's claims, as shape assertions:
    assert ours.conflicts == 0, "ours must be conflict-free"
    assert gao_pan.conflicts > 0 or cut16.conflicts > 0
    assert ours.overlay_nm < gao_pan.overlay_nm
    # [16] fails many nets (no merge technique), which deflates its
    # absolute overlay; compare per routed net.
    ours_per_net = ours.overlay_nm / max(ours.routability_pct, 1)
    cut16_per_net = cut16.overlay_nm / max(cut16.routability_pct, 1)
    assert ours_per_net <= cut16_per_net * 1.05
    assert ours.routability_pct >= cut16.routability_pct

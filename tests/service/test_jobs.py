"""JobRegistry / JobState unit tests (no HTTP, no workers)."""

import pytest

from repro.errors import ReproError
from repro.service import JobRegistry, ServiceError
from repro.service.jobs import job_event


@pytest.fixture
def registry(tmp_path):
    return JobRegistry(tmp_path / "spool")


class TestSpool:
    def test_identical_texts_share_one_file(self, registry):
        a = registry.spool_design("n0 L0 1,2 -> L0 9,2\n")
        b = registry.spool_design("n0 L0 1,2 -> L0 9,2\n")
        assert a == b
        assert a.read_text() == "n0 L0 1,2 -> L0 9,2\n"
        assert len(list(registry.spool_dir.glob("*.nets"))) == 1

    def test_distinct_texts_get_distinct_files(self, registry):
        a = registry.spool_design("n0 L0 1,2 -> L0 9,2\n")
        b = registry.spool_design("n0 L0 1,2 -> L0 8,2\n")
        assert a != b


class TestRegistry:
    def test_create_and_get(self, registry):
        job = registry.create("acme", "Test1@0.1")
        assert job.status == "queued"
        assert registry.get(job.job_id) is job
        assert registry.events(job.job_id)[0]["event"] == "job_queued"

    def test_unknown_job_is_404(self, registry):
        with pytest.raises(ServiceError) as err:
            registry.get("nope")
        assert err.value.status == 404
        assert isinstance(err.value, ReproError)

    def test_list_filters_by_tenant(self, registry):
        registry.create("a", "d1")
        registry.create("b", "d2")
        registry.create("a", "d3")
        assert len(registry.list()) == 3
        assert [j.design for j in registry.list(tenant="a")] == ["d1", "d3"]

    def test_events_since_offset(self, registry):
        job = registry.create("t", "d")
        registry.apply_event(job_event("job_started", job.job_id))
        assert len(registry.events(job.job_id)) == 2
        assert registry.events(job.job_id, since=1)[0]["event"] == "job_started"


class TestEventFolding:
    def test_lifecycle_transitions(self, registry):
        job = registry.create("t", "d")
        assert registry.apply_event(job_event("job_started", job.job_id)) is None
        assert job.status == "running" and job.started_unix > 0

        registry.apply_event(
            job_event(
                "stage_end",
                job.job_id,
                stage="route",
                status="run",
                seconds=1.5,
                bytes=10,
                hashes={"routing": "abc"},
            )
        )
        assert job.stages == [
            {"stage": "route", "status": "run", "seconds": 1.5, "bytes": 10}
        ]
        assert job.artifact_hashes == {"routing": "abc"}

        terminal = registry.apply_event(
            job_event(
                "job_done",
                job.job_id,
                executed=1,
                cached=5,
                run_id="r1",
                counters={"x_total": 2.0},
            )
        )
        assert terminal is job  # returned exactly when it *became* terminal
        assert job.status == "done" and job.terminal
        assert (job.executed, job.cached, job.run_id) == (1, 5, "r1")

    def test_terminal_transition_reported_once(self, registry):
        job = registry.create("t", "d")
        assert registry.apply_event(job_event("job_done", job.job_id)) is job
        assert registry.apply_event(job_event("job_done", job.job_id)) is None

    def test_event_for_unknown_job_ignored(self, registry):
        assert registry.apply_event(job_event("job_done", "ghost")) is None


class TestCancellation:
    def test_cancel_queued_fails_fast(self, registry):
        job = registry.create("t", "d")
        registry.cancel(job.job_id)
        assert job.status == "cancelled"
        assert registry.is_cancelled(job.job_id)  # sentinel for the worker

    def test_cancel_running_only_drops_sentinel(self, registry):
        job = registry.create("t", "d")
        registry.apply_event(job_event("job_started", job.job_id))
        registry.cancel(job.job_id)
        assert job.status == "running"  # worker confirms via job_cancelled
        assert registry.cancel_path(job.job_id).is_file()

    def test_cancel_terminal_is_noop(self, registry):
        job = registry.create("t", "d")
        registry.apply_event(job_event("job_done", job.job_id))
        registry.cancel(job.job_id)
        assert job.status == "done"
        assert not registry.cancel_path(job.job_id).is_file()


class TestServiceError:
    def test_default_status(self):
        assert ServiceError("bad").status == 400
        assert ServiceError("gone", status=404).status == 404

"""End-to-end acceptance smoke — what the CI ``service-smoke`` job runs.

Two tenants submit the identical ``Test1`` workload against a
multi-process service; the contract under test:

* the first job routes (exactly one ``stage:route`` execution);
* the second does **zero** route/decompose work — every stage arrives
  from the shared store (``hit``/``coalesced``), confirmed by the event
  stream, the per-job span count, and the service stage counters;
* both jobs resolve to byte-identical artifacts;
* ``GET /metrics`` passes the Prometheus exposition validator;
* both runs land in the run ledger.
"""

import pytest

from repro.obs.ledger import Ledger
from repro.obs.prom import validate_prometheus_text
from repro.service import RoutingService, ServiceClient


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service_smoke")
    svc = RoutingService(
        port=0,
        workers=2,
        cache_dir=str(tmp / "cache"),
        ledger=True,
        ledger_dir=str(tmp / "runs"),
    ).start_background()
    first = ServiceClient(svc.url, tenant="alice")
    second = ServiceClient(svc.url, tenant="bob")
    payload = {"circuit": "Test1", "scale": 0.1, "seed": 2014}

    job1 = first.submit(dict(payload))
    snap1 = first.wait(job1["job_id"], timeout_s=300)
    job2 = second.submit(dict(payload))
    snap2 = second.wait(job2["job_id"], timeout_s=300)
    yield {
        "service": svc,
        "ledger_dir": str(tmp / "runs"),
        "clients": (first, second),
        "snaps": (snap1, snap2),
        "events": (
            first.events(job1["job_id"]),
            second.events(job2["job_id"]),
        ),
    }
    svc.stop()


def _route_runs(events):
    return [
        e
        for e in events
        if e["event"] == "stage_end"
        and e["stage"] == "route"
        and e["status"] == "run"
    ]


class TestSmoke:
    def test_both_jobs_succeed(self, smoke):
        snap1, snap2 = smoke["snaps"]
        assert snap1["status"] == "done"
        assert snap2["status"] == "done"

    def test_first_routes_second_is_fully_cached(self, smoke):
        snap1, snap2 = smoke["snaps"]
        ev1, ev2 = smoke["events"]
        assert len(_route_runs(ev1)) == 1
        assert _route_runs(ev2) == []  # zero route executions
        assert snap2["executed"] == 0
        assert snap2["cached"] == 6
        assert all(
            s["status"] in ("hit", "coalesced") for s in snap2["stages"]
        )
        # the worker's per-job span count agrees with the event stream
        done1 = next(e for e in ev1 if e["event"] == "job_done")
        done2 = next(e for e in ev2 if e["event"] == "job_done")
        assert done1["route_spans"] == 1
        assert done2["route_spans"] == 0

    def test_artifacts_byte_identical_across_tenants(self, smoke):
        snap1, snap2 = smoke["snaps"]
        first, second = smoke["clients"]
        assert snap1["artifact_hashes"] == snap2["artifact_hashes"]
        for kind in ("routing", "masks", "report"):
            if kind not in snap1["artifact_hashes"]:
                continue
            assert first.artifact_bytes(
                snap1["job_id"], kind
            ) == second.artifact_bytes(snap2["job_id"], kind)

    def test_metrics_exposition_valid(self, smoke):
        first, _ = smoke["clients"]
        text = first.metrics()
        assert validate_prometheus_text(text) == []
        assert "service_jobs_completed_total" in text
        # the service-level counters see one run + cached stages
        assert "service_stage_runs_total" in text
        assert "service_stage_cache_hits_total" in text

    def test_both_runs_in_ledger(self, smoke):
        snap1, snap2 = smoke["snaps"]
        assert snap1["run_id"] and snap2["run_id"]
        with Ledger(smoke["ledger_dir"]) as ledger:
            runs = {r.run_id for r in ledger.history(limit=50)}
        assert {snap1["run_id"], snap2["run_id"]} <= runs

"""Tests for the routing job service (``repro.service``)."""

"""Shared fixtures: an embedded service on a free port."""

import pytest

from repro.service import RoutingService, ServiceClient


@pytest.fixture
def service(tmp_path):
    """An inline-worker service (no fork — deterministic and fast);
    multi-process serving is covered by the smoke test."""
    svc = RoutingService(
        port=0,
        workers=0,
        cache_dir=str(tmp_path / "cache"),
        ledger=False,
    ).start_background()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)

"""HTTP API behaviour against an embedded inline-worker service."""

import pytest

from repro.obs.prom import validate_prometheus_text
from repro.service import RoutingService, ServiceClient, ServiceError

DESIGN = "n0 L0 1,2 -> L0 9,2\nn1 L0 4,4 -> L0 4,11\n"


class TestValidation:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._json("GET", "/nope")
        assert err.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("jmissing")
        assert err.value.status == 404

    def test_submission_needs_a_source(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({})
        assert err.value.status == 400

    def test_design_text_needs_dimensions(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"design_text": DESIGN})
        assert err.value.status == 400
        assert "width" in str(err.value)

    def test_unknown_targets_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit(
                {"circuit": "Test1", "scale": 0.1, "targets": ["teleport"]}
            )
        assert err.value.status == 400

    def test_bad_json_body_rejected(self, client):
        status, raw = client._request("POST", "/jobs")
        # empty body parses as {} → missing source, still a clean 400
        assert status == 400
        assert b"error" in raw

    def test_method_not_allowed(self, client):
        status, _ = client._request("DELETE", "/jobs")
        assert status == 405


class TestJobFlow:
    def test_submit_wait_fetch(self, client):
        job = client.submit(
            {"design_text": DESIGN, "width": 16, "height": 16, "tenant": "acme"}
        )
        assert job["status"] == "queued"
        assert job["design"].startswith("design:")
        snap = client.wait(job["job_id"], timeout_s=120)
        assert snap["status"] == "done"
        assert snap["executed"] + snap["cached"] == 6
        assert [s["stage"] for s in snap["stages"]][:2] == [
            "load_design",
            "build_grid",
        ]
        assert set(snap["artifact_hashes"]) >= {"design", "routing", "report"}

        art = client.artifact(job["job_id"], "report")
        assert art["hash"] == snap["artifact_hashes"]["report"]
        assert art["kind"] == "report"

    def test_jobs_list_filters_by_tenant(self, client):
        a = client.submit(
            {"design_text": DESIGN, "width": 16, "height": 16, "tenant": "a"}
        )
        client.wait(a["job_id"], timeout_s=120)
        assert {j["tenant"] for j in client.jobs()} >= {"a"}
        assert all(j["tenant"] == "a" for j in client.jobs(tenant="a"))
        assert client.jobs(tenant="nobody") == []

    def test_tenant_header_labels_job(self, service):
        client = ServiceClient(service.url, tenant="hdr-tenant")
        job = client.submit({"design_text": DESIGN, "width": 16, "height": 16})
        assert job["tenant"] == "hdr-tenant"
        client.wait(job["job_id"], timeout_s=120)

    def test_unknown_artifact_kind_404_after_done(self, client):
        job = client.submit({"design_text": DESIGN, "width": 16, "height": 16})
        client.wait(job["job_id"], timeout_s=120)
        with pytest.raises(ServiceError) as err:
            client.artifact(job["job_id"], "blueprint")
        assert err.value.status == 404

    def test_events_stream_ends_with_terminal_event(self, client):
        job = client.submit({"design_text": DESIGN, "width": 16, "height": 16})
        events = client.events(job["job_id"])  # streams until terminal
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job_queued"
        assert kinds[-1] in ("job_done", "job_failed")
        ends = [e for e in events if e["event"] == "stage_end"]
        assert {e["span"] for e in ends} == {
            f"stage:{e['stage']}" for e in ends
        }

    def test_events_nowait_returns_immediately(self, client):
        job = client.submit({"design_text": DESIGN, "width": 16, "height": 16})
        events = client.events(job["job_id"], wait=False)
        assert events and events[0]["event"] == "job_queued"
        client.wait(job["job_id"], timeout_s=120)


class TestQuota:
    def test_second_submission_hits_quota(self, tmp_path):
        """Pool never started → the first job stays queued and holds the
        tenant's only slot; admission must answer 429."""
        svc = RoutingService(
            port=0,
            workers=0,
            cache_dir=str(tmp_path / "cache"),
            max_active_per_tenant=1,
            ledger=False,
        )
        svc.submit({"circuit": "Test1", "scale": 0.1}, tenant="t")
        with pytest.raises(ServiceError) as err:
            svc.submit({"circuit": "Test1", "scale": 0.1}, tenant="t")
        assert err.value.status == 429
        # a different tenant is still admitted
        svc.submit({"circuit": "Test1", "scale": 0.1}, tenant="u")


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_labelled(self, client):
        job = client.submit(
            {"design_text": DESIGN, "width": 16, "height": 16, "tenant": "m"}
        )
        client.wait(job["job_id"], timeout_s=120)
        text = client.metrics()
        assert validate_prometheus_text(text) == []
        assert "service_jobs_submitted_total" in text
        assert 'tenant="m"' in text
        assert "service_http_requests_total" in text

    def test_healthz(self, client):
        assert client.healthz()["ok"] is True

"""Per-tenant admission control."""

from repro.obs.metrics import MetricsRegistry
from repro.service import TenantQuotas


def _values(registry: MetricsRegistry):
    return {
        e["metric"]: e["value"]
        for e in registry.snapshot()
        if e["kind"] in ("counter", "gauge")
    }


class TestAdmission:
    def test_limit_is_per_tenant(self):
        q = TenantQuotas(max_active=2)
        assert q.try_acquire("a") is None
        assert q.try_acquire("a") is None
        reason = q.try_acquire("a")
        assert reason is not None and "quota" in reason
        assert q.try_acquire("b") is None  # other tenants unaffected

    def test_release_frees_a_slot(self):
        q = TenantQuotas(max_active=1)
        assert q.try_acquire("a") is None
        assert q.try_acquire("a") is not None
        q.release("a", status="done", seconds=0.5)
        assert q.try_acquire("a") is None
        assert q.active("a") == 1

    def test_zero_disables_the_bound(self):
        q = TenantQuotas(max_active=0)
        for _ in range(64):
            assert q.try_acquire("a") is None

    def test_release_never_goes_negative(self):
        q = TenantQuotas(max_active=1)
        q.release("ghost", status="failed")
        assert q.active("ghost") == 0


class TestMetrics:
    def test_families_track_lifecycle(self):
        registry = MetricsRegistry()
        q = TenantQuotas(max_active=1, registry=registry)
        q.try_acquire("a")
        q.try_acquire("a")  # rejected
        q.release("a", status="done", seconds=1.0)
        values = _values(registry)
        assert values["service_jobs_submitted_total"] == 1
        assert values["service_jobs_rejected_total"] == 1
        assert values["service_jobs_completed_total"] == 1
        assert values["service_jobs_active"] == 0  # gauge back to idle

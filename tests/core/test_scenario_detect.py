"""Unit tests for incremental scenario detection."""

import pytest

from repro.core import ScenarioDetector, ScenarioType
from repro.geometry import Point, Segment


def hseg(layer, x0, x1, y):
    return Segment(layer, Point(x0, y), Point(x1, y))


def vseg(layer, y0, y1, x):
    return Segment(layer, Point(x, y0), Point(x, y1))


class TestDetection:
    def test_first_net_sees_nothing(self):
        det = ScenarioDetector(num_layers=1)
        assert det.add_net(0, [hseg(0, 0, 9, 5)]) == []

    def test_adjacent_parallel_wires_type_1a(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 5)])
        found = det.add_net(1, [hseg(0, 0, 9, 6)])
        assert len(found) == 1
        sc = found[0]
        assert sc.scenario is ScenarioType.T1A
        assert (sc.net_a, sc.net_b) == (1, 0)
        assert sc.overlap == 10

    def test_tip_to_tip_type_1b(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 4, 5)])
        found = det.add_net(1, [hseg(0, 5, 9, 5)])
        assert [sc.scenario for sc in found] == [ScenarioType.T1B]

    def test_trivial_scenarios_filtered_by_default(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 4, 5)])
        # Vertical wire whose flank faces the tip at track diff 1: type 2-c.
        found = det.add_net(1, [vseg(0, 2, 8, 5)])
        assert found == []

    def test_trivial_scenarios_included_on_request(self):
        det = ScenarioDetector(num_layers=1, include_trivial=True)
        det.add_net(0, [hseg(0, 0, 4, 5)])
        found = det.add_net(1, [vseg(0, 2, 8, 5)])
        assert [sc.scenario for sc in found] == [ScenarioType.T2C]

    def test_same_net_fragments_ignored(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 4, 5)])
        assert det.add_net(0, [hseg(0, 0, 4, 6)]) == []

    def test_layers_are_independent(self):
        det = ScenarioDetector(num_layers=2)
        det.add_net(0, [hseg(0, 0, 9, 5)])
        assert det.add_net(1, [hseg(1, 0, 9, 6)]) == []

    def test_far_wires_ignored(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 5)])
        assert det.add_net(1, [hseg(0, 0, 9, 9)]) == []

    def test_multiple_scenarios_from_one_net(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 4)])
        det.add_net(1, [hseg(0, 0, 9, 8)])
        found = det.add_net(2, [hseg(0, 0, 9, 6)])
        partners = sorted(sc.net_b for sc in found)
        assert partners == [0, 1]


class TestMutation:
    def test_remove_net(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 5)])
        assert det.remove_net(0) == 1
        assert det.add_net(1, [hseg(0, 0, 9, 6)]) == []

    def test_remove_unknown_net(self):
        det = ScenarioDetector(num_layers=1)
        assert det.remove_net(9) == 0

    def test_shapes_of(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 5), vseg(0, 6, 9, 2)])
        assert len(det.shapes_of(0)) == 2
        assert det.shapes_of(1) == []

    def test_probe_does_not_register(self):
        det = ScenarioDetector(num_layers=1)
        det.add_net(0, [hseg(0, 0, 9, 5)])
        probed = det.probe_segments(1, [hseg(0, 0, 9, 6)])
        assert len(probed) == 1
        # Probing must not have registered net 1's shapes.
        assert det.shapes_of(1) == []
        again = det.probe_segments(2, [hseg(0, 0, 9, 6)])
        partners = {sc.net_b for sc in again}
        assert partners == {0}
